//! The Binder IPC boundary between app processes and the Media DRM
//! Server.
//!
//! Calls are a typed enum ([`DrmCall`]) rather than raw parcels; what
//! matters for the study is the *process boundary*, which
//! [`ThreadedBinder`] makes real by running the server on a pool of
//! worker threads fed by one crossbeam MPMC channel (the simulator's
//! `mediadrmserver` thread pool). [`InProcessBinder`] offers the same
//! interface synchronously for cheap unit tests. Both implement the one
//! [`Transport`] trait, and both run every transaction through the same
//! [`transact_via`] seam — telemetry, panic isolation and fault
//! injection compose there once instead of per-transport.
//!
//! Both transports isolate panics per transaction: a handler that
//! unwinds yields [`DrmError::ServerPanic`] for that one call and the
//! server keeps serving — a poisoned call must not take the whole DRM
//! stack down with it.
//!
//! When a [`FaultInjector`] is attached (via
//! [`InProcessBinder::with_fault_injector`] or
//! [`BinderPoolBuilder::fault_injector`]), binder-plane fault rules are
//! consulted per transaction: dropped transactions surface as
//! [`DrmError::BinderDied`], injected panics as
//! [`DrmError::ServerPanic`], latency advances the shared virtual clock,
//! and clock skew forwards the CDM's logical clock (expiring licenses).

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use wideleak_bmff::types::{KeyId, Subsample};
use wideleak_cdm::oemcrypto::SampleCrypto;
use wideleak_faults::{corrupt_body, FaultInjector, FaultKind, Plane};
use wideleak_telemetry::{trace, CounterHandle, TraceContext};

use crate::{server::MediaDrmServer, DrmError};

/// One DRM framework transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmCall {
    /// `MediaDrm(UUID)` support probe.
    IsSchemeSupported {
        /// The DRM system UUID.
        uuid: [u8; 16],
    },
    /// Opens a CDM session.
    OpenSession {
        /// Session nonce.
        nonce: [u8; 16],
    },
    /// Closes a CDM session.
    CloseSession {
        /// The session to close.
        session_id: u32,
    },
    /// Whether the device holds a provisioned RSA key.
    IsProvisioned,
    /// Builds a provisioning request.
    GetProvisionRequest {
        /// Anti-replay nonce.
        nonce: [u8; 16],
    },
    /// Installs a provisioning response.
    ProvideProvisionResponse {
        /// The nonce the request carried.
        nonce: [u8; 16],
        /// The serialized response.
        response: Vec<u8>,
    },
    /// Builds a license (key) request for a session.
    GetKeyRequest {
        /// The session.
        session_id: u32,
        /// Content identifier.
        content_id: String,
        /// Requested key IDs.
        key_ids: Vec<KeyId>,
    },
    /// Loads a license response into a session.
    ProvideKeyResponse {
        /// The session.
        session_id: u32,
        /// The serialized response.
        response: Vec<u8>,
    },
    /// Decrypts one sample (MediaCodec secure path).
    DecryptSample {
        /// The session holding the key.
        session_id: u32,
        /// The content key ID.
        kid: KeyId,
        /// Scheme parameters.
        crypto: SampleCrypto,
        /// Encrypted sample bytes.
        data: Vec<u8>,
        /// Subsample map.
        subsamples: Vec<Subsample>,
    },
    /// Generic (non-DASH) encrypt.
    GenericEncrypt {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// CBC IV.
        iv: [u8; 16],
        /// Plaintext.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) decrypt.
    GenericDecrypt {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// CBC IV.
        iv: [u8; 16],
        /// Ciphertext.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) sign.
    GenericSign {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// Message.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) verify.
    GenericVerify {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// Message.
        data: Vec<u8>,
        /// Signature to check.
        signature: Vec<u8>,
    },
}

impl DrmCall {
    /// The transaction kind as a static label, used for telemetry
    /// span fields and per-kind request counters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DrmCall::IsSchemeSupported { .. } => "is_scheme_supported",
            DrmCall::OpenSession { .. } => "open_session",
            DrmCall::CloseSession { .. } => "close_session",
            DrmCall::IsProvisioned => "is_provisioned",
            DrmCall::GetProvisionRequest { .. } => "get_provision_request",
            DrmCall::ProvideProvisionResponse { .. } => "provide_provision_response",
            DrmCall::GetKeyRequest { .. } => "get_key_request",
            DrmCall::ProvideKeyResponse { .. } => "provide_key_response",
            DrmCall::DecryptSample { .. } => "decrypt_sample",
            DrmCall::GenericEncrypt { .. } => "generic_encrypt",
            DrmCall::GenericDecrypt { .. } => "generic_decrypt",
            DrmCall::GenericSign { .. } => "generic_sign",
            DrmCall::GenericVerify { .. } => "generic_verify",
        }
    }

    /// Index into the per-kind counter table (one slot per variant).
    fn kind_index(&self) -> usize {
        match self {
            DrmCall::IsSchemeSupported { .. } => 0,
            DrmCall::OpenSession { .. } => 1,
            DrmCall::CloseSession { .. } => 2,
            DrmCall::IsProvisioned => 3,
            DrmCall::GetProvisionRequest { .. } => 4,
            DrmCall::ProvideProvisionResponse { .. } => 5,
            DrmCall::GetKeyRequest { .. } => 6,
            DrmCall::ProvideKeyResponse { .. } => 7,
            DrmCall::DecryptSample { .. } => 8,
            DrmCall::GenericEncrypt { .. } => 9,
            DrmCall::GenericDecrypt { .. } => 10,
            DrmCall::GenericSign { .. } => 11,
            DrmCall::GenericVerify { .. } => 12,
        }
    }
}

/// Pre-registered counter handles for the transaction hot path: the
/// name lookup (and the `format!` it used to require) happens once per
/// process, after which every transaction is a relaxed atomic add.
static TRANSACT_TOTAL: CounterHandle = CounterHandle::new("binder.transact");
static TRANSACT_BY_KIND: [CounterHandle; 13] = [
    CounterHandle::new("binder.transact.is_scheme_supported"),
    CounterHandle::new("binder.transact.open_session"),
    CounterHandle::new("binder.transact.close_session"),
    CounterHandle::new("binder.transact.is_provisioned"),
    CounterHandle::new("binder.transact.get_provision_request"),
    CounterHandle::new("binder.transact.provide_provision_response"),
    CounterHandle::new("binder.transact.get_key_request"),
    CounterHandle::new("binder.transact.provide_key_response"),
    CounterHandle::new("binder.transact.decrypt_sample"),
    CounterHandle::new("binder.transact.generic_encrypt"),
    CounterHandle::new("binder.transact.generic_decrypt"),
    CounterHandle::new("binder.transact.generic_sign"),
    CounterHandle::new("binder.transact.generic_verify"),
];
static SERVER_PANICS: CounterHandle = CounterHandle::new("binder.server_panics");

/// Records the telemetry shared by both transports: per-kind request
/// counters and an error-class counter on failure. The success path
/// allocates nothing; errors are rare enough to pay a name lookup.
fn record_transaction(kind_index: usize, reply: &Result<DrmReply, DrmError>) {
    if !wideleak_telemetry::is_enabled() {
        return;
    }
    TRANSACT_TOTAL.incr();
    TRANSACT_BY_KIND[kind_index].incr();
    if let Err(e) = reply {
        wideleak_faults::record_error("binder.error", e);
    }
}

/// Runs one transaction with panic isolation: an unwinding handler is
/// contained to this call and reported as [`DrmError::ServerPanic`]
/// instead of poisoning the transport.
pub(crate) fn dispatch(server: &MediaDrmServer, call: DrmCall) -> Result<DrmReply, DrmError> {
    let mut trace_span = trace::span("server.dispatch");
    if trace_span.context().is_some() {
        trace_span.note("kind", call.kind());
    }
    let reply =
        std::panic::catch_unwind(AssertUnwindSafe(|| server.handle(call))).unwrap_or_else(|_| {
            SERVER_PANICS.incr();
            Err(DrmError::ServerPanic)
        });
    if let Err(e) = &reply {
        trace_span.note("error", e.class());
    }
    reply
}

/// How a transport realises corruption and drop faults.
///
/// In-memory transports have no frames, so corruption mangles the typed
/// byte payload centrally ([`FaultStyle::Payload`]); the TCP transport
/// has real frames on a real socket, so those fault kinds are handed to
/// the transport's `run` step, which damages the received frame bytes
/// (surfacing as CRC/decode errors) or severs a pooled connection
/// ([`FaultStyle::Frame`]). Either way the injector's `decide` runs
/// exactly once per transaction, so injection schedules line up across
/// transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultStyle {
    /// Corruption mutates the decoded reply payload; drops never reach
    /// the transport.
    Payload,
    /// Corruption and drops are realised on the wire by the transport.
    Frame,
}

/// The single transaction seam all transports run through: telemetry
/// span + per-kind counters + binder-plane fault injection around the
/// transport-specific `run` step. Having exactly one seam is what lets
/// faults compose identically over the in-process, threaded and TCP
/// paths. `run` receives the fault kind (if any) that the transport
/// itself must realise; it is always `None` under
/// [`FaultStyle::Payload`].
pub(crate) fn transact_via(
    span_name: &'static str,
    injector: Option<&FaultInjector>,
    server: Option<&MediaDrmServer>,
    style: FaultStyle,
    call: DrmCall,
    run: impl FnOnce(DrmCall, Option<&FaultKind>) -> Result<DrmReply, DrmError>,
) -> Result<DrmReply, DrmError> {
    let kind_index = call.kind_index();
    let _span = wideleak_telemetry::span!(span_name, kind = call.kind());
    // The trace root for this call: every in-process child span chains
    // under it through the thread-local stack, and the transports carry
    // its context across thread and process boundaries.
    let mut trace_span = trace::span("drm.call");
    if trace_span.context().is_some() {
        trace_span.note("kind", call.kind());
        trace_span.note("transport", span_name);
    }
    let reply = apply_binder_faults(injector, server, style, call, run);
    if let Err(e) = &reply {
        trace_span.note("error", e.class());
    }
    record_transaction(kind_index, &reply);
    reply
}

/// Evaluates binder-plane fault rules for one transaction and maps the
/// fault kinds onto transport-visible behaviour.
fn apply_binder_faults(
    injector: Option<&FaultInjector>,
    server: Option<&MediaDrmServer>,
    style: FaultStyle,
    call: DrmCall,
    run: impl FnOnce(DrmCall, Option<&FaultKind>) -> Result<DrmReply, DrmError>,
) -> Result<DrmReply, DrmError> {
    let Some(fault) = injector
        .filter(|inj| inj.is_active())
        .and_then(|inj| inj.decide(Plane::Binder, call.kind()).map(|kind| (inj, kind)))
    else {
        return run(call, None);
    };
    let (inj, kind) = fault;
    // Correlate the injected fault with the live trace: the annotation
    // lands on the innermost open span (the `drm.call` root).
    trace::annotate("fault", kind.label());
    match kind {
        // The handler blows up; the transports' panic containment
        // reports it without taking the server down.
        FaultKind::Panic | FaultKind::ErrorCode => {
            SERVER_PANICS.incr();
            Err(DrmError::ServerPanic)
        }
        // The call completes, but only after the virtual clock moved.
        FaultKind::Latency { ms } => {
            inj.clock().advance_ms(ms);
            run(call, None)
        }
        // The device clock jumps before the call lands, expiring any
        // loaded license whose duration the skew exceeds. A transport
        // with no handle onto its server (remote TCP) cannot realise
        // skew; the call proceeds unfaulted.
        FaultKind::ClockSkew { secs } => {
            if let Some(server) = server {
                server.advance_clocks(secs);
            }
            run(call, None)
        }
        // The channel drops mid-transaction: no reply ever arrives. The
        // frame style lets the transport sever a real connection first.
        FaultKind::Drop => match style {
            FaultStyle::Payload => Err(DrmError::BinderDied),
            FaultStyle::Frame => run(call, Some(&FaultKind::Drop)),
        },
        // Corruption: payload style mangles decoded byte replies here;
        // frame style hands the kind to the transport, which damages the
        // received frame bytes so the codec's CRC/decode checks trip.
        kind @ (FaultKind::TruncateBody { .. } | FaultKind::GarbleBody) => match style {
            FaultStyle::Payload => match run(call, None)? {
                DrmReply::Bytes(bytes) => Ok(DrmReply::Bytes(corrupt_body(&kind, bytes))),
                other => Ok(other),
            },
            FaultStyle::Frame => run(call, Some(&kind)),
        },
    }
}

/// A successful transaction reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmReply {
    /// No payload.
    Unit,
    /// A boolean answer.
    Bool(bool),
    /// A session id.
    SessionId(u32),
    /// An opaque byte payload (requests, responses, plaintext...).
    Bytes(Vec<u8>),
    /// A list of key IDs.
    KeyIds(Vec<KeyId>),
}

impl DrmReply {
    /// Extracts a byte payload.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_bytes(self) -> Result<Vec<u8>, DrmError> {
        match self {
            DrmReply::Bytes(b) => Ok(b),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a session id.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_session_id(self) -> Result<u32, DrmError> {
        match self {
            DrmReply::SessionId(id) => Ok(id),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a bool.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_bool(self) -> Result<bool, DrmError> {
        match self {
            DrmReply::Bool(b) => Ok(b),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a key-id list.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_key_ids(self) -> Result<Vec<KeyId>, DrmError> {
        match self {
            DrmReply::KeyIds(k) => Ok(k),
            _ => Err(DrmError::BadReply),
        }
    }
}

/// The unified IPC transport to the Media DRM Server — the one seam the
/// framework, apps, monitor and attack tooling all talk through.
pub trait Transport: Send + Sync {
    /// Performs one transaction.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError`] from the server or the transport itself.
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError>;
}

/// Which [`Transport`] implementation a component should boot with.
///
/// The three transports are behaviourally interchangeable — the
/// differential battery in `tests/tests/transport_differential.rs` pins
/// byte-identical study output across them — so this is purely a
/// performance/realism knob: [`InProcess`](TransportKind::InProcess) for
/// cheap unit tests, [`Threaded`](TransportKind::Threaded) for real
/// thread boundaries, [`Tcp`](TransportKind::Tcp) for real frames on a
/// loopback socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Synchronous same-thread dispatch ([`InProcessBinder`]).
    #[default]
    InProcess,
    /// Worker pool over crossbeam channels ([`ThreadedBinder`]).
    Threaded,
    /// Wire-framed loopback TCP ([`TcpBinder`](crate::netserver::TcpBinder)).
    Tcp,
}

impl TransportKind {
    /// A stable lowercase label for CLI flags and report lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::InProcess => "inprocess",
            TransportKind::Threaded => "threaded",
            TransportKind::Tcp => "tcp",
        }
    }

    /// All kinds, in boot-cost order — handy for differential sweeps.
    pub const ALL: [TransportKind; 3] =
        [TransportKind::InProcess, TransportKind::Threaded, TransportKind::Tcp];
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inprocess" | "in-process" => Ok(TransportKind::InProcess),
            "threaded" => Ok(TransportKind::Threaded),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (expected inprocess|threaded|tcp)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A synchronous, same-thread transport.
pub struct InProcessBinder {
    server: Arc<MediaDrmServer>,
    injector: Option<Arc<FaultInjector>>,
}

impl InProcessBinder {
    /// Wraps a server.
    pub fn new(server: MediaDrmServer) -> Self {
        InProcessBinder { server: Arc::new(server), injector: None }
    }

    /// Attaches a fault injector whose binder-plane rules apply to every
    /// transaction through this transport.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }
}

impl Transport for InProcessBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        transact_via(
            "binder.transact.in_process",
            self.injector.as_deref(),
            Some(&self.server),
            FaultStyle::Payload,
            call,
            |call, _| dispatch(&self.server, call),
        )
    }
}

/// A queued transaction: the call, the caller's trace context (so the
/// worker thread's spans stitch into the caller's trace across the
/// thread boundary), and the reply channel.
type Transaction =
    (DrmCall, Option<TraceContext>, crossbeam::channel::Sender<Result<DrmReply, DrmError>>);

/// A transport that runs the server on a pool of worker threads sharing
/// one MPMC request channel, crossing a real thread boundary per
/// transaction — the `mediadrmserver` process model. Transactions on
/// distinct sessions execute in parallel across the workers; the session
/// shards inside [`CdmCore`](wideleak_cdm::oemcrypto::CdmCore) make that
/// safe.
pub struct ThreadedBinder {
    tx: crossbeam::channel::Sender<Transaction>,
    /// Kept solely to observe queue depth; workers own their own clones.
    rx: crossbeam::channel::Receiver<Transaction>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// A handle onto the served instance, so the fault seam can reach the
    /// CDM clock (clock-skew faults) without a round trip.
    server: Arc<MediaDrmServer>,
    injector: Option<Arc<FaultInjector>>,
}

/// Worker-pool knobs for [`BinderPoolBuilder`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinderPoolConfig {
    /// Worker thread count; 0 means one per available core.
    pub workers: usize,
}

/// Builds a [`ThreadedBinder`] — the pool size and fault plane are
/// configured here instead of through positional constructor arguments.
pub struct BinderPoolBuilder {
    server: MediaDrmServer,
    config: BinderPoolConfig,
    injector: Option<Arc<FaultInjector>>,
}

impl BinderPoolBuilder {
    /// Replaces the whole config struct.
    #[must_use]
    pub fn config(mut self, config: BinderPoolConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker count (0 = one per available core).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Attaches a fault injector whose binder-plane rules apply to every
    /// transaction through the pool.
    #[must_use]
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Spawns the worker pool.
    #[must_use]
    pub fn spawn(self) -> ThreadedBinder {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.config.workers
        };
        let (tx, rx) = crossbeam::channel::unbounded::<Transaction>();
        let server = Arc::new(self.server);
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let server = Arc::clone(&server);
                std::thread::Builder::new()
                    .name(format!("mediadrmserver-{i}"))
                    .spawn(move || {
                        while let Ok((call, ctx, reply_tx)) = rx.recv() {
                            let reply = match ctx {
                                // Adopt the caller's context so the
                                // dispatch spans chain into its trace.
                                Some(ctx) => {
                                    let _g = trace::span_with_parent("server.handle", ctx);
                                    dispatch(&server, call)
                                }
                                None => dispatch(&server, call),
                            };
                            // A dropped reply receiver just means the
                            // client gave up.
                            let _ = reply_tx.send(reply);
                        }
                    })
                    .expect("spawning a mediadrmserver worker")
            })
            .collect();
        ThreadedBinder { tx, rx, handles, server, injector: self.injector }
    }
}

impl ThreadedBinder {
    /// Starts building a pool around a server.
    #[must_use]
    pub fn builder(server: MediaDrmServer) -> BinderPoolBuilder {
        BinderPoolBuilder { server, config: BinderPoolConfig::default(), injector: None }
    }

    /// Spawns the server on a pool sized to the machine (one worker per
    /// available core, minimum one).
    pub fn spawn(server: MediaDrmServer) -> Self {
        Self::builder(server).spawn()
    }

    /// How many worker threads serve this binder.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Transactions queued but not yet claimed by a worker.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.rx.len()
    }
}

impl Transport for ThreadedBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        transact_via(
            "binder.transact.threaded",
            self.injector.as_deref(),
            Some(&self.server),
            FaultStyle::Payload,
            call,
            |call, _| {
                let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
                let ctx = trace::current();
                let _roundtrip = trace::span("pool.roundtrip");
                self.tx.send((call, ctx, reply_tx)).map_err(|_| DrmError::BinderDied)?;
                if wideleak_telemetry::is_enabled() {
                    let depth = self.rx.len() as u64;
                    wideleak_telemetry::set_gauge("binder.queue.depth", depth);
                    wideleak_telemetry::max_gauge("binder.queue.depth.max", depth);
                }
                reply_rx.recv().map_err(|_| DrmError::BinderDied)?
            },
        )
    }
}

impl Drop for ThreadedBinder {
    fn drop(&mut self) {
        // Closing the channel stops the worker loops; join must not fail
        // the drop (C-DTOR-FAIL).
        let (tx, _) = crossbeam::channel::unbounded::<Transaction>();
        drop(std::mem::replace(&mut self.tx, tx));
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;

    fn server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"binder-test", &[1; 16])).boot(&device).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    fn exercise(binder: &dyn Transport) {
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        let sid = binder
            .transact(DrmCall::OpenSession { nonce: [1; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_ok());
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_err());
    }

    #[test]
    fn in_process_binder_round_trip() {
        exercise(&InProcessBinder::new(server()));
    }

    #[test]
    fn threaded_binder_round_trip() {
        let binder = ThreadedBinder::spawn(server());
        exercise(&binder);
    }

    #[test]
    fn threaded_binder_concurrent_clients() {
        let binder = Arc::new(ThreadedBinder::spawn(server()));
        let handles: Vec<_> = (0u8..8)
            .map(|i| {
                let b = binder.clone();
                std::thread::spawn(move || {
                    b.transact(DrmCall::OpenSession { nonce: [i; 16] })
                        .unwrap()
                        .into_session_id()
                        .unwrap()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client got a distinct session");
    }

    #[test]
    fn reply_shape_errors() {
        assert_eq!(DrmReply::Unit.into_bytes(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::Bool(true).into_session_id(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::SessionId(1).into_bool(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::Bytes(vec![]).into_key_ids(), Err(DrmError::BadReply));
    }

    #[test]
    fn drop_shuts_down_server_thread() {
        let binder = ThreadedBinder::spawn(server());
        drop(binder);
        // Nothing to assert beyond "no hang / no panic".
    }

    #[test]
    fn pool_size_is_configurable() {
        let binder = ThreadedBinder::builder(server()).workers(4).spawn();
        assert_eq!(binder.worker_count(), 4);
        exercise(&binder);
    }

    #[test]
    fn transport_kind_parses_labels() {
        for kind in TransportKind::ALL {
            assert_eq!(kind.label().parse::<TransportKind>(), Ok(kind));
        }
        assert_eq!("in-process".parse::<TransportKind>(), Ok(TransportKind::InProcess));
        assert!("quic".parse::<TransportKind>().is_err());
    }

    #[test]
    fn default_pool_matches_available_parallelism() {
        let binder = ThreadedBinder::spawn(server());
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(binder.worker_count(), cores);
    }

    /// An OEMCrypto backend with an internal bug: every session operation
    /// panics. Used to prove panic isolation in the transports.
    struct PanickingBackend;

    impl wideleak_cdm::oemcrypto::OemCrypto for PanickingBackend {
        fn security_level(&self) -> wideleak_device::catalog::SecurityLevel {
            wideleak_device::catalog::SecurityLevel::L3
        }
        fn cdm_version(&self) -> wideleak_device::catalog::CdmVersion {
            wideleak_device::catalog::CdmVersion::new(16, 0, 0)
        }
        fn advance_clock(&self, _: u64) -> Result<(), wideleak_cdm::CdmError> {
            Ok(())
        }
        fn install_keybox(&self, _: Keybox) -> Result<(), wideleak_cdm::CdmError> {
            Ok(())
        }
        fn device_id(&self) -> Result<Vec<u8>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn is_provisioned(&self) -> bool {
            false
        }
        fn provisioning_request(
            &self,
            _: [u8; 16],
        ) -> Result<wideleak_cdm::messages::ProvisioningRequest, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn install_rsa_key(
            &self,
            _: [u8; 16],
            _: &wideleak_cdm::messages::ProvisioningResponse,
        ) -> Result<(), wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn open_session(&self, _: [u8; 16]) -> Result<u32, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn close_session(&self, _: u32) -> Result<(), wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn license_request(
            &self,
            _: u32,
            _: &str,
            _: &[KeyId],
        ) -> Result<wideleak_cdm::messages::LicenseRequest, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn load_license(
            &self,
            _: u32,
            _: &wideleak_cdm::messages::LicenseResponse,
        ) -> Result<Vec<KeyId>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn decrypt_sample(
            &self,
            _: u32,
            _: &KeyId,
            _: &SampleCrypto,
            _: &[u8],
            _: &[Subsample],
        ) -> Result<Vec<u8>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn generic_encrypt(
            &self,
            _: u32,
            _: &KeyId,
            _: [u8; 16],
            _: &[u8],
        ) -> Result<Vec<u8>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn generic_decrypt(
            &self,
            _: u32,
            _: &KeyId,
            _: [u8; 16],
            _: &[u8],
        ) -> Result<Vec<u8>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn generic_sign(
            &self,
            _: u32,
            _: &KeyId,
            _: &[u8],
        ) -> Result<Vec<u8>, wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
        fn generic_verify(
            &self,
            _: u32,
            _: &KeyId,
            _: &[u8],
            _: &[u8],
        ) -> Result<(), wideleak_cdm::CdmError> {
            panic!("backend bug")
        }
    }

    fn panicking_server() -> MediaDrmServer {
        let cdm = Cdm::builder().backend(Arc::new(PanickingBackend)).build();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    /// Regression: a panic inside `MediaDrmServer::handle` used to kill
    /// the server thread for good — every later transact returned
    /// `BinderDied`. Now each panic is contained to its transaction.
    #[test]
    fn panic_in_handler_does_not_kill_the_pool() {
        for binder in [
            Box::new(InProcessBinder::new(panicking_server())) as Box<dyn Transport>,
            Box::new(ThreadedBinder::builder(panicking_server()).workers(2).spawn()),
        ] {
            for _ in 0..4 {
                assert_eq!(
                    binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
                    Err(DrmError::ServerPanic),
                    "panic maps to ServerPanic, not BinderDied"
                );
            }
            // Non-panicking calls still work afterwards.
            assert!(binder
                .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
                .unwrap()
                .into_bool()
                .unwrap());
        }
    }

    #[test]
    fn queue_depth_gauge_is_exported() {
        wideleak_telemetry::enable();
        let binder = ThreadedBinder::builder(server()).workers(2).spawn();
        for i in 0..4u8 {
            let sid = binder
                .transact(DrmCall::OpenSession { nonce: [i; 16] })
                .unwrap()
                .into_session_id()
                .unwrap();
            binder.transact(DrmCall::CloseSession { session_id: sid }).unwrap();
        }
        let snapshot = wideleak_telemetry::snapshot();
        assert!(
            snapshot.gauges.iter().any(|(name, _)| name == "binder.queue.depth"),
            "gauges: {:?}",
            snapshot.gauges
        );
    }

    use wideleak_faults::{FaultPlan, Schedule};

    #[test]
    fn dropped_transactions_surface_as_binder_died_on_both_transports() {
        let plan = FaultPlan::builder()
            .binder_fault("open_session", FaultKind::Drop, Schedule::Once { at: 0 })
            .build();
        for binder in [
            Box::new(
                InProcessBinder::new(server())
                    .with_fault_injector(Arc::new(FaultInjector::new(&plan, 9))),
            ) as Box<dyn Transport>,
            Box::new(
                ThreadedBinder::builder(server())
                    .workers(2)
                    .fault_injector(Arc::new(FaultInjector::new(&plan, 9)))
                    .spawn(),
            ),
        ] {
            assert_eq!(
                binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
                Err(DrmError::BinderDied)
            );
            // The rule fired once; the next call goes through.
            assert!(binder.transact(DrmCall::OpenSession { nonce: [2; 16] }).is_ok());
        }
    }

    #[test]
    fn injected_panic_is_contained_like_a_real_one() {
        let plan = FaultPlan::builder()
            .binder_fault("open_session", FaultKind::Panic, Schedule::FirstN { n: 2 })
            .build();
        let binder = InProcessBinder::new(server())
            .with_fault_injector(Arc::new(FaultInjector::new(&plan, 3)));
        for _ in 0..2 {
            assert_eq!(
                binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
                Err(DrmError::ServerPanic)
            );
        }
        assert!(binder.transact(DrmCall::OpenSession { nonce: [1; 16] }).is_ok());
    }

    #[test]
    fn latency_fault_advances_the_virtual_clock_only() {
        let plan = FaultPlan::builder()
            .binder_fault("is_provisioned", FaultKind::Latency { ms: 750 }, Schedule::Always)
            .build();
        let injector = Arc::new(FaultInjector::new(&plan, 5));
        let binder = InProcessBinder::new(server()).with_fault_injector(injector.clone());
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok(), "call still completes");
        assert_eq!(injector.clock().now_ms(), 750);
    }

    #[test]
    fn garbled_reply_mangles_byte_payloads() {
        let plan = FaultPlan::builder()
            .binder_fault("get_provision_request", FaultKind::GarbleBody, Schedule::Always)
            .build();
        let clean = InProcessBinder::new(server());
        let faulty = InProcessBinder::new(server())
            .with_fault_injector(Arc::new(FaultInjector::new(&plan, 5)));
        let good =
            clean.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] }).unwrap().into_bytes();
        let bad =
            faulty.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] }).unwrap().into_bytes();
        assert_ne!(good, bad, "payload scrambled in flight");
    }
}
