//! The Binder IPC boundary between app processes and the Media DRM
//! Server.
//!
//! Calls are a typed enum ([`DrmCall`]) rather than raw parcels; what
//! matters for the study is the *process boundary*, which
//! [`ThreadedBinder`] makes real by running the server on its own thread
//! connected through crossbeam channels (the simulator's
//! `mediadrmserver`). [`InProcessBinder`] offers the same interface
//! synchronously for cheap unit tests.

use wideleak_bmff::types::{KeyId, Subsample};
use wideleak_cdm::oemcrypto::SampleCrypto;

use crate::{server::MediaDrmServer, DrmError};

/// One DRM framework transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmCall {
    /// `MediaDrm(UUID)` support probe.
    IsSchemeSupported {
        /// The DRM system UUID.
        uuid: [u8; 16],
    },
    /// Opens a CDM session.
    OpenSession {
        /// Session nonce.
        nonce: [u8; 16],
    },
    /// Closes a CDM session.
    CloseSession {
        /// The session to close.
        session_id: u32,
    },
    /// Whether the device holds a provisioned RSA key.
    IsProvisioned,
    /// Builds a provisioning request.
    GetProvisionRequest {
        /// Anti-replay nonce.
        nonce: [u8; 16],
    },
    /// Installs a provisioning response.
    ProvideProvisionResponse {
        /// The nonce the request carried.
        nonce: [u8; 16],
        /// The serialized response.
        response: Vec<u8>,
    },
    /// Builds a license (key) request for a session.
    GetKeyRequest {
        /// The session.
        session_id: u32,
        /// Content identifier.
        content_id: String,
        /// Requested key IDs.
        key_ids: Vec<KeyId>,
    },
    /// Loads a license response into a session.
    ProvideKeyResponse {
        /// The session.
        session_id: u32,
        /// The serialized response.
        response: Vec<u8>,
    },
    /// Decrypts one sample (MediaCodec secure path).
    DecryptSample {
        /// The session holding the key.
        session_id: u32,
        /// The content key ID.
        kid: KeyId,
        /// Scheme parameters.
        crypto: SampleCrypto,
        /// Encrypted sample bytes.
        data: Vec<u8>,
        /// Subsample map.
        subsamples: Vec<Subsample>,
    },
    /// Generic (non-DASH) encrypt.
    GenericEncrypt {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// CBC IV.
        iv: [u8; 16],
        /// Plaintext.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) decrypt.
    GenericDecrypt {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// CBC IV.
        iv: [u8; 16],
        /// Ciphertext.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) sign.
    GenericSign {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// Message.
        data: Vec<u8>,
    },
    /// Generic (non-DASH) verify.
    GenericVerify {
        /// The session holding the key.
        session_id: u32,
        /// Key ID.
        kid: KeyId,
        /// Message.
        data: Vec<u8>,
        /// Signature to check.
        signature: Vec<u8>,
    },
}

impl DrmCall {
    /// The transaction kind as a static label, used for telemetry
    /// span fields and per-kind request counters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DrmCall::IsSchemeSupported { .. } => "is_scheme_supported",
            DrmCall::OpenSession { .. } => "open_session",
            DrmCall::CloseSession { .. } => "close_session",
            DrmCall::IsProvisioned => "is_provisioned",
            DrmCall::GetProvisionRequest { .. } => "get_provision_request",
            DrmCall::ProvideProvisionResponse { .. } => "provide_provision_response",
            DrmCall::GetKeyRequest { .. } => "get_key_request",
            DrmCall::ProvideKeyResponse { .. } => "provide_key_response",
            DrmCall::DecryptSample { .. } => "decrypt_sample",
            DrmCall::GenericEncrypt { .. } => "generic_encrypt",
            DrmCall::GenericDecrypt { .. } => "generic_decrypt",
            DrmCall::GenericSign { .. } => "generic_sign",
            DrmCall::GenericVerify { .. } => "generic_verify",
        }
    }
}

/// Records the telemetry shared by both transports: per-kind request
/// counters and an error-class counter on failure.
fn record_transaction(kind: &'static str, reply: &Result<DrmReply, DrmError>) {
    if !wideleak_telemetry::is_enabled() {
        return;
    }
    wideleak_telemetry::incr("binder.transact");
    wideleak_telemetry::incr(&format!("binder.transact.{kind}"));
    if let Err(e) = reply {
        wideleak_telemetry::incr(&format!("binder.error.{}", e.class()));
    }
}

/// A successful transaction reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmReply {
    /// No payload.
    Unit,
    /// A boolean answer.
    Bool(bool),
    /// A session id.
    SessionId(u32),
    /// An opaque byte payload (requests, responses, plaintext...).
    Bytes(Vec<u8>),
    /// A list of key IDs.
    KeyIds(Vec<KeyId>),
}

impl DrmReply {
    /// Extracts a byte payload.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_bytes(self) -> Result<Vec<u8>, DrmError> {
        match self {
            DrmReply::Bytes(b) => Ok(b),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a session id.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_session_id(self) -> Result<u32, DrmError> {
        match self {
            DrmReply::SessionId(id) => Ok(id),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a bool.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_bool(self) -> Result<bool, DrmError> {
        match self {
            DrmReply::Bool(b) => Ok(b),
            _ => Err(DrmError::BadReply),
        }
    }

    /// Extracts a key-id list.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::BadReply`] for other variants.
    pub fn into_key_ids(self) -> Result<Vec<KeyId>, DrmError> {
        match self {
            DrmReply::KeyIds(k) => Ok(k),
            _ => Err(DrmError::BadReply),
        }
    }
}

/// The IPC transport to the Media DRM Server.
pub trait Binder: Send + Sync {
    /// Performs one transaction.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError`] from the server or the transport itself.
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError>;
}

/// A synchronous, same-thread transport.
pub struct InProcessBinder {
    server: MediaDrmServer,
}

impl InProcessBinder {
    /// Wraps a server.
    pub fn new(server: MediaDrmServer) -> Self {
        InProcessBinder { server }
    }
}

impl Binder for InProcessBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        let kind = call.kind();
        let _span = wideleak_telemetry::span!("binder.transact.in_process", kind = kind);
        let reply = self.server.handle(call);
        record_transaction(kind, &reply);
        reply
    }
}

type Transaction = (DrmCall, crossbeam::channel::Sender<Result<DrmReply, DrmError>>);

/// A transport that runs the server on a dedicated thread, crossing a real
/// thread boundary per transaction — the `mediadrmserver` process model.
pub struct ThreadedBinder {
    tx: crossbeam::channel::Sender<Transaction>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ThreadedBinder {
    /// Spawns the server thread.
    pub fn spawn(server: MediaDrmServer) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded::<Transaction>();
        let handle = std::thread::Builder::new()
            .name("mediadrmserver".into())
            .spawn(move || {
                while let Ok((call, reply_tx)) = rx.recv() {
                    // A dropped reply receiver just means the client gave up.
                    let _ = reply_tx.send(server.handle(call));
                }
            })
            .expect("spawning the mediadrmserver thread");
        ThreadedBinder { tx, handle: Some(handle) }
    }
}

impl Binder for ThreadedBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        let kind = call.kind();
        let _span = wideleak_telemetry::span!("binder.transact.threaded", kind = kind);
        let reply = (|| {
            let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
            self.tx.send((call, reply_tx)).map_err(|_| DrmError::BinderDied)?;
            reply_rx.recv().map_err(|_| DrmError::BinderDied)?
        })();
        record_transaction(kind, &reply);
        reply
    }
}

impl Drop for ThreadedBinder {
    fn drop(&mut self) {
        // Closing the channel stops the server loop; join must not fail
        // the drop (C-DTOR-FAIL).
        let (tx, _) = crossbeam::channel::unbounded::<Transaction>();
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;

    fn server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm = Cdm::boot(&device, Keybox::issue(b"binder-test", &[1; 16])).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    fn exercise(binder: &dyn Binder) {
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        let sid = binder
            .transact(DrmCall::OpenSession { nonce: [1; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_ok());
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_err());
    }

    #[test]
    fn in_process_binder_round_trip() {
        exercise(&InProcessBinder::new(server()));
    }

    #[test]
    fn threaded_binder_round_trip() {
        let binder = ThreadedBinder::spawn(server());
        exercise(&binder);
    }

    #[test]
    fn threaded_binder_concurrent_clients() {
        let binder = Arc::new(ThreadedBinder::spawn(server()));
        let handles: Vec<_> = (0u8..8)
            .map(|i| {
                let b = binder.clone();
                std::thread::spawn(move || {
                    b.transact(DrmCall::OpenSession { nonce: [i; 16] })
                        .unwrap()
                        .into_session_id()
                        .unwrap()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client got a distinct session");
    }

    #[test]
    fn reply_shape_errors() {
        assert_eq!(DrmReply::Unit.into_bytes(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::Bool(true).into_session_id(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::SessionId(1).into_bool(), Err(DrmError::BadReply));
        assert_eq!(DrmReply::Bytes(vec![]).into_key_ids(), Err(DrmError::BadReply));
    }

    #[test]
    fn drop_shuts_down_server_thread() {
        let binder = ThreadedBinder::spawn(server());
        drop(binder);
        // Nothing to assert beyond "no hang / no panic".
    }
}
