//! The campaign control channel: the message family a coordinator uses
//! to drive `wideleak serve --worker` processes over the same wire-v3
//! codec the DRM plane speaks.
//!
//! A *campaign* re-derives the paper's Table-I compliance matrix across
//! a generated catalog of thousands of device models, sharded by
//! device-ID range across worker processes. This module holds the
//! protocol layer only — the message types ([`CampaignCall`],
//! [`CampaignReply`]), the typed failure taxonomy ([`CampaignError`]),
//! the per-shard result carrier ([`ShardReport`]) and its exact-merge
//! primitives ([`LatencyHistogram`], [`AppCells`]) — plus their wire
//! encodings, which ride in dedicated frame types alongside the DRM
//! call/reply frames. The semantics (how a shard is run, how cells are
//! classified, how reports render) live in `wideleak-monitor`.
//!
//! **Exactness is the design invariant.** A merged campaign report must
//! be a pure function of (spec, seed, catalog) — independent of shard
//! count, worker scheduling, and reply arrival order. Everything in a
//! [`ShardReport`] is therefore mergeable without approximation:
//! latency travels as fixed-width-bucket histograms whose bucket-wise
//! sum yields the same nearest-rank percentiles as the concatenation of
//! every shard's raw samples, and compliance cells merge by count-sum
//! plus minimum-device-id exemplars, both order-independent.

use crate::wire::{Reader, WireError, Writer};

/// Buckets in a [`LatencyHistogram`]. Each bucket is exactly one
/// millisecond wide (bucket `i` holds samples of `i` ms), which is what
/// makes histogram merge *exact*: a sample is its bucket index, so
/// percentiles over summed buckets equal percentiles over concatenated
/// samples. Samples at or above the cap land in the last bucket and are
/// reported as `HISTOGRAM_BUCKETS - 1` ms (campaign latency models stay
/// far below the cap, so the clamp never engages in practice).
pub const HISTOGRAM_BUCKETS: usize = 512;

/// Compliance cell kinds per (device, app) pair — the Table-I vocabulary
/// widened to the generated catalog. The protocol layer only fixes the
/// *count* and the index order; `wideleak-monitor` owns the semantics.
///
/// Index order: plays-HD, plays-SD, plays-via-embedded-DRM,
/// provisioning-refused, custom-DRM-always.
pub const CELL_KINDS: usize = 5;

/// A fixed-bucket latency histogram with exact merge semantics.
///
/// `record` clamps to the last bucket; `merge` is a bucket-wise sum plus
/// min/max/sum/count folds; `percentile` walks the cumulative counts
/// with the same nearest-rank formula the load generator uses over raw
/// samples (`rank = (count - 1) * num / den`, zero-based), so merged
/// percentiles are byte-for-byte those of the concatenated samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample, clamping at the last bucket.
    pub fn record(&mut self, ms: u64) {
        let clamped = ms.min(HISTOGRAM_BUCKETS as u64 - 1);
        self.buckets[usize::try_from(clamped).expect("bucket index fits usize")] += 1;
        self.count += 1;
        self.sum += clamped;
        self.min = self.min.min(clamped);
        self.max = self.max.max(clamped);
    }

    /// Folds another histogram in. Commutative and associative, so the
    /// merged result is independent of shard arrival order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded (clamped) samples, for exact integer means.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (floor), `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The nearest-rank `num/den` percentile, `None` when empty. Uses
    /// the zero-based rank `(count - 1) * num / den` — the same formula
    /// `wideleak-load` applies to sorted raw samples, which is what the
    /// merge-oracle property test pins.
    #[must_use]
    pub fn percentile(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (self.count - 1) * num / den;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return Some(idx as u64);
            }
        }
        // Unreachable while count equals the bucket sum; be total anyway.
        self.max()
    }

    fn encode(&self, w: &mut Writer) {
        w.u64(self.count).u64(self.sum).u64(self.min).u64(self.max);
        let nonzero = self.buckets.iter().filter(|&&n| n > 0).count();
        w.u32(u32::try_from(nonzero).expect("bucket count fits u32"));
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                w.u32(u32::try_from(idx).expect("bucket index fits u32")).u64(n);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut h = LatencyHistogram::new();
        h.count = r.u64("histogram count")?;
        h.sum = r.u64("histogram sum")?;
        h.min = r.u64("histogram min")?;
        h.max = r.u64("histogram max")?;
        let nonzero = r.u32("histogram nonzero buckets")?;
        let mut total = 0u64;
        let mut last: Option<u32> = None;
        for _ in 0..nonzero {
            let idx = r.u32("histogram bucket index")?;
            let n = r.u64("histogram bucket count")?;
            if idx as usize >= HISTOGRAM_BUCKETS || n == 0 {
                return Err(WireError::Malformed { what: "histogram bucket out of range" });
            }
            if last.is_some_and(|prev| idx <= prev) {
                return Err(WireError::Malformed { what: "histogram buckets out of order" });
            }
            last = Some(idx);
            h.buckets[idx as usize] = n;
            total = total
                .checked_add(n)
                .ok_or(WireError::Malformed { what: "histogram bucket count overflow" })?;
        }
        if total != h.count {
            return Err(WireError::Malformed { what: "histogram count does not match buckets" });
        }
        Ok(h)
    }
}

/// One app's compliance cells over the devices of a shard (or, after
/// merging, of the whole campaign): per-kind device counts plus the
/// lowest device id that landed in each cell, as a concrete exemplar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppCells {
    /// The app slug the cells describe.
    pub app: String,
    /// Devices per cell kind, indexed by the [`CELL_KINDS`] order.
    pub counts: [u64; CELL_KINDS],
    /// Lowest device id observed per cell kind, `None` when empty.
    pub exemplars: [Option<u64>; CELL_KINDS],
}

impl AppCells {
    /// Empty cells for an app.
    #[must_use]
    pub fn new(app: &str) -> Self {
        AppCells { app: app.to_owned(), counts: [0; CELL_KINDS], exemplars: [None; CELL_KINDS] }
    }

    /// Accounts one device landing in cell `kind`.
    pub fn record(&mut self, kind: usize, device_id: u64) {
        self.counts[kind] += 1;
        self.exemplars[kind] = Some(self.exemplars[kind].map_or(device_id, |e| e.min(device_id)));
    }

    /// Folds another shard's cells for the same app in: count sums and
    /// minimum-exemplar folds, both order-independent.
    pub fn merge(&mut self, other: &AppCells) {
        debug_assert_eq!(self.app, other.app, "merging cells across apps");
        for k in 0..CELL_KINDS {
            self.counts[k] += other.counts[k];
            self.exemplars[k] = match (self.exemplars[k], other.exemplars[k]) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }

    fn encode(&self, w: &mut Writer) {
        w.string(&self.app);
        for &n in &self.counts {
            w.u64(n);
        }
        for &e in &self.exemplars {
            match e {
                Some(id) => {
                    w.u8(1).u64(id);
                }
                None => {
                    w.u8(0);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let app = r.string("cell app slug")?;
        let mut cells = AppCells::new(&app);
        for k in 0..CELL_KINDS {
            cells.counts[k] = r.u64("cell count")?;
        }
        for k in 0..CELL_KINDS {
            cells.exemplars[k] = match r.u8("cell exemplar flag")? {
                0 => None,
                1 => Some(r.u64("cell exemplar id")?),
                _ => return Err(WireError::Malformed { what: "cell exemplar flag" }),
            };
        }
        Ok(cells)
    }
}

/// What to measure: the campaign's full parameterisation. Identical on
/// every worker — only the [`ShardAssignment`] differs per process —
/// and every report-visible value derives from these fields plus the
/// device catalog, never from the sharding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The campaign master seed. Per-shard worker seeds derive from it
    /// (`det_hash(seed, shard_id)`), but anything those seeds touch must
    /// stay out of the report.
    pub seed: u64,
    /// Catalog device ids `0..devices` are swept.
    pub devices: u64,
    /// App slugs to evaluate; empty means every evaluated app.
    pub apps: Vec<String>,
    /// Every `sample_every`-th catalog selection (seed-hashed, so the
    /// choice is shard-independent) runs a *real* end-to-end playback
    /// per app to validate the derived cell; 0 disables sampling.
    pub sample_every: u64,
    /// RSA modulus size for worker ecosystems (768 keeps campaigns
    /// fast; the cells do not depend on it).
    pub rsa_bits: u32,
    /// Test-only fault hook: a worker whose shard contains this device
    /// id exits mid-shard instead of reporting, so the coordinator's
    /// [`CampaignError::ShardLost`] path stays covered.
    pub kill_at_device: Option<u64>,
}

impl CampaignSpec {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seed).u64(self.devices);
        w.u32(u32::try_from(self.apps.len()).expect("app count fits u32"));
        for app in &self.apps {
            w.string(app);
        }
        w.u64(self.sample_every).u32(self.rsa_bits);
        match self.kill_at_device {
            Some(id) => {
                w.u8(1).u64(id);
            }
            None => {
                w.u8(0);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seed = r.u64("spec seed")?;
        let devices = r.u64("spec devices")?;
        let napps = r.u32("spec app count")?;
        let mut apps = Vec::new();
        for _ in 0..napps {
            apps.push(r.string("spec app slug")?);
        }
        let sample_every = r.u64("spec sample interval")?;
        let rsa_bits = r.u32("spec rsa bits")?;
        let kill_at_device = match r.u8("spec kill flag")? {
            0 => None,
            1 => Some(r.u64("spec kill device")?),
            _ => return Err(WireError::Malformed { what: "spec kill flag" }),
        };
        Ok(CampaignSpec { seed, devices, apps, sample_every, rsa_bits, kill_at_device })
    }
}

/// One worker's slice of the campaign: the half-open catalog range
/// `start..end` plus the shard's ordinal (which seeds the worker's own
/// ecosystem, and nothing report-visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Shard ordinal, `0..workers`.
    pub shard_id: u32,
    /// First catalog device id of the shard (inclusive).
    pub start: u64,
    /// One past the last catalog device id of the shard.
    pub end: u64,
}

/// A worker's results for one shard: everything the coordinator needs
/// for an exact merge, nothing it would have to approximate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Echo of the assignment's shard ordinal.
    pub shard_id: u32,
    /// Echo of the assignment's range start.
    pub start: u64,
    /// Echo of the assignment's range end.
    pub end: u64,
    /// Per-app compliance cells over the shard's devices, in the
    /// spec's app order.
    pub cells: Vec<AppCells>,
    /// Modeled license-path latency, one sample per (device, app).
    pub latency: LatencyHistogram,
    /// Real end-to-end playbacks this shard ran to validate cells.
    pub sampled_plays: u64,
    /// Sampled playbacks whose outcome disagreed with the derived cell
    /// (expected 0 — a nonzero count is a model/simulation divergence).
    pub sample_mismatches: u64,
    /// Shard-local counters, merged by name-wise sum. Only counters
    /// whose totals are shard-count-invariant belong here.
    pub counters: Vec<(String, u64)>,
}

impl ShardReport {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_id).u64(self.start).u64(self.end);
        w.u32(u32::try_from(self.cells.len()).expect("cell count fits u32"));
        for cells in &self.cells {
            cells.encode(w);
        }
        self.latency.encode(w);
        w.u64(self.sampled_plays).u64(self.sample_mismatches);
        w.u32(u32::try_from(self.counters.len()).expect("counter count fits u32"));
        for (name, value) in &self.counters {
            w.string(name).u64(*value);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_id = r.u32("report shard id")?;
        let start = r.u64("report range start")?;
        let end = r.u64("report range end")?;
        let ncells = r.u32("report cell count")?;
        let mut cells = Vec::new();
        for _ in 0..ncells {
            cells.push(AppCells::decode(r)?);
        }
        let latency = LatencyHistogram::decode(r)?;
        let sampled_plays = r.u64("report sampled plays")?;
        let sample_mismatches = r.u64("report sample mismatches")?;
        let ncounters = r.u32("report counter count")?;
        let mut counters = Vec::new();
        for _ in 0..ncounters {
            let name = r.string("report counter name")?;
            let value = r.u64("report counter value")?;
            counters.push((name, value));
        }
        Ok(ShardReport {
            shard_id,
            start,
            end,
            cells,
            latency,
            sampled_plays,
            sample_mismatches,
            counters,
        })
    }
}

/// A coordinator-to-worker transaction on the campaign control channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignCall {
    /// Handshake: is there a campaign-capable worker on this socket?
    Hello,
    /// Run one shard of the campaign and reply with its report.
    RunShard {
        /// The campaign's full parameterisation.
        spec: CampaignSpec,
        /// This worker's slice of it.
        shard: ShardAssignment,
    },
    /// Ask the worker process to exit once the reply is flushed.
    Shutdown,
}

/// A worker-to-coordinator outcome on the campaign control channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignReply {
    /// Handshake answer.
    HelloAck {
        /// The worker's OS process id, for coordinator diagnostics.
        pid: u32,
        /// The wire revision the worker speaks.
        wire_version: u8,
    },
    /// The shard's results.
    ShardDone(ShardReport),
    /// Shutdown acknowledged; the process exits after flushing this.
    ShuttingDown,
}

/// Everything that can go wrong with a campaign, as a typed taxonomy.
/// Coordinator-side variants (`ShardLost`, `Spawn`) never cross the
/// wire in practice but encode anyway, so the taxonomy is uniform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A worker's control channel died before its shard report arrived
    /// (process crash, kill, or connection loss).
    ShardLost {
        /// The shard whose worker was lost.
        shard_id: u32,
    },
    /// Spawning or handshaking a worker process failed.
    Spawn {
        /// What failed.
        what: String,
    },
    /// The peer violated the control protocol (unexpected frame kind,
    /// reply out of step with the call).
    Protocol {
        /// The violation.
        what: String,
    },
    /// The worker failed while running its shard.
    Worker {
        /// The failure.
        what: String,
    },
    /// A control-channel frame failed to decode.
    Wire(WireError),
}

impl CampaignError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            CampaignError::ShardLost { .. } => "shard_lost",
            CampaignError::Spawn { .. } => "spawn",
            CampaignError::Protocol { .. } => "protocol",
            CampaignError::Worker { .. } => "worker",
            CampaignError::Wire(_) => "wire",
        }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::ShardLost { shard_id } => {
                write!(f, "shard {shard_id} lost: worker died before reporting")
            }
            CampaignError::Spawn { what } => write!(f, "spawning worker failed: {what}"),
            CampaignError::Protocol { what } => write!(f, "campaign protocol violation: {what}"),
            CampaignError::Worker { what } => write!(f, "worker failed: {what}"),
            CampaignError::Wire(e) => write!(f, "campaign control frame error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<WireError> for CampaignError {
    fn from(e: WireError) -> Self {
        CampaignError::Wire(e)
    }
}

impl wideleak_faults::ErrorClass for CampaignError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

/// What a server does with campaign calls. `wideleak serve --worker`
/// registers one; a plain `wideleak serve` has none, and campaign
/// frames sent at it get a typed [`CampaignError::Protocol`] refusal.
pub trait CampaignHandler: Send + Sync {
    /// Handles one campaign transaction. `RunShard` may take seconds —
    /// it runs on a dispatch worker, so the reactor's IO loops keep
    /// breathing underneath it.
    fn handle(&self, call: CampaignCall) -> Result<CampaignReply, CampaignError>;
}

// ---------------------------------------------------------------------
// Wire encoding (frame payloads; framing itself lives in `wire`)
// ---------------------------------------------------------------------

const CALL_HELLO: u8 = 0;
const CALL_RUN_SHARD: u8 = 1;
const CALL_SHUTDOWN: u8 = 2;

const REPLY_HELLO_ACK: u8 = 0;
const REPLY_SHARD_DONE: u8 = 1;
const REPLY_SHUTTING_DOWN: u8 = 2;

const ERR_SHARD_LOST: u8 = 0;
const ERR_SPAWN: u8 = 1;
const ERR_PROTOCOL: u8 = 2;
const ERR_WORKER: u8 = 3;
const ERR_WIRE: u8 = 4;

pub(crate) fn encode_campaign_call(call: &CampaignCall) -> Vec<u8> {
    let mut w = Writer::new();
    match call {
        CampaignCall::Hello => {
            w.u8(CALL_HELLO);
        }
        CampaignCall::RunShard { spec, shard } => {
            w.u8(CALL_RUN_SHARD);
            spec.encode(&mut w);
            w.u32(shard.shard_id).u64(shard.start).u64(shard.end);
        }
        CampaignCall::Shutdown => {
            w.u8(CALL_SHUTDOWN);
        }
    }
    w.into_inner()
}

pub(crate) fn decode_campaign_call(r: &mut Reader<'_>) -> Result<CampaignCall, WireError> {
    match r.u8("campaign call tag")? {
        CALL_HELLO => Ok(CampaignCall::Hello),
        CALL_RUN_SHARD => {
            let spec = CampaignSpec::decode(r)?;
            let shard = ShardAssignment {
                shard_id: r.u32("shard id")?,
                start: r.u64("shard start")?,
                end: r.u64("shard end")?,
            };
            Ok(CampaignCall::RunShard { spec, shard })
        }
        CALL_SHUTDOWN => Ok(CampaignCall::Shutdown),
        _ => Err(WireError::Malformed { what: "unknown campaign call tag" }),
    }
}

pub(crate) fn encode_campaign_reply(reply: &Result<CampaignReply, CampaignError>) -> Vec<u8> {
    let mut w = Writer::new();
    match reply {
        Ok(ok) => {
            w.u8(1);
            match ok {
                CampaignReply::HelloAck { pid, wire_version } => {
                    w.u8(REPLY_HELLO_ACK).u32(*pid).u8(*wire_version);
                }
                CampaignReply::ShardDone(report) => {
                    w.u8(REPLY_SHARD_DONE);
                    report.encode(&mut w);
                }
                CampaignReply::ShuttingDown => {
                    w.u8(REPLY_SHUTTING_DOWN);
                }
            }
        }
        Err(err) => {
            w.u8(0);
            encode_campaign_error(&mut w, err);
        }
    }
    w.into_inner()
}

pub(crate) fn decode_campaign_reply(
    r: &mut Reader<'_>,
) -> Result<Result<CampaignReply, CampaignError>, WireError> {
    match r.u8("campaign reply ok flag")? {
        1 => match r.u8("campaign reply tag")? {
            REPLY_HELLO_ACK => Ok(Ok(CampaignReply::HelloAck {
                pid: r.u32("hello ack pid")?,
                wire_version: r.u8("hello ack wire version")?,
            })),
            REPLY_SHARD_DONE => Ok(Ok(CampaignReply::ShardDone(ShardReport::decode(r)?))),
            REPLY_SHUTTING_DOWN => Ok(Ok(CampaignReply::ShuttingDown)),
            _ => Err(WireError::Malformed { what: "unknown campaign reply tag" }),
        },
        0 => Ok(Err(decode_campaign_error(r)?)),
        _ => Err(WireError::Malformed { what: "campaign reply ok flag" }),
    }
}

fn encode_campaign_error(w: &mut Writer, err: &CampaignError) {
    match err {
        CampaignError::ShardLost { shard_id } => {
            w.u8(ERR_SHARD_LOST).u32(*shard_id);
        }
        CampaignError::Spawn { what } => {
            w.u8(ERR_SPAWN).string(what);
        }
        CampaignError::Protocol { what } => {
            w.u8(ERR_PROTOCOL).string(what);
        }
        CampaignError::Worker { what } => {
            w.u8(ERR_WORKER).string(what);
        }
        CampaignError::Wire(e) => {
            w.u8(ERR_WIRE);
            encode_wire_error(w, e);
        }
    }
}

fn decode_campaign_error(r: &mut Reader<'_>) -> Result<CampaignError, WireError> {
    match r.u8("campaign error tag")? {
        ERR_SHARD_LOST => Ok(CampaignError::ShardLost { shard_id: r.u32("lost shard id")? }),
        ERR_SPAWN => Ok(CampaignError::Spawn { what: r.string("spawn error")? }),
        ERR_PROTOCOL => Ok(CampaignError::Protocol { what: r.string("protocol error")? }),
        ERR_WORKER => Ok(CampaignError::Worker { what: r.string("worker error")? }),
        ERR_WIRE => Ok(CampaignError::Wire(decode_wire_error(r)?)),
        _ => Err(WireError::Malformed { what: "unknown campaign error tag" }),
    }
}

const WERR_TRUNCATED: u8 = 0;
const WERR_OVERSIZED: u8 = 1;
const WERR_BAD_MAGIC: u8 = 2;
const WERR_UNSUPPORTED_VERSION: u8 = 3;
const WERR_BAD_CRC: u8 = 4;
const WERR_MALFORMED: u8 = 5;

fn encode_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::Truncated { needed, got } => {
            w.u8(WERR_TRUNCATED).u64(*needed as u64).u64(*got as u64);
        }
        WireError::Oversized { len, max } => {
            w.u8(WERR_OVERSIZED).u64(*len as u64).u64(*max as u64);
        }
        WireError::BadMagic { found } => {
            w.u8(WERR_BAD_MAGIC).raw(found);
        }
        WireError::UnsupportedVersion { version } => {
            w.u8(WERR_UNSUPPORTED_VERSION).u8(*version);
        }
        WireError::BadCrc { expected, found } => {
            w.u8(WERR_BAD_CRC).u32(*expected).u32(*found);
        }
        WireError::Malformed { what } => {
            w.u8(WERR_MALFORMED).string(what);
        }
    }
}

fn decode_wire_error(r: &mut Reader<'_>) -> Result<WireError, WireError> {
    match r.u8("nested wire error tag")? {
        WERR_TRUNCATED => Ok(WireError::Truncated {
            needed: r.u64("truncated needed")? as usize,
            got: r.u64("truncated got")? as usize,
        }),
        WERR_OVERSIZED => Ok(WireError::Oversized {
            len: r.u64("oversized len")? as usize,
            max: r.u64("oversized max")? as usize,
        }),
        WERR_BAD_MAGIC => Ok(WireError::BadMagic { found: r.array("bad magic bytes")? }),
        WERR_UNSUPPORTED_VERSION => {
            Ok(WireError::UnsupportedVersion { version: r.u8("unsupported version")? })
        }
        WERR_BAD_CRC => Ok(WireError::BadCrc {
            expected: r.u32("bad crc expected")?,
            found: r.u32("bad crc found")?,
        }),
        WERR_MALFORMED => Ok(WireError::Malformed { what: r.static_str("malformed what")? }),
        _ => Err(WireError::Malformed { what: "unknown nested wire error tag" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, FrameBody};

    fn sample_spec() -> CampaignSpec {
        CampaignSpec {
            seed: 2022,
            devices: 4096,
            apps: vec!["netflix".into(), "disney".into()],
            sample_every: 512,
            rsa_bits: 768,
            kill_at_device: Some(17),
        }
    }

    fn sample_report() -> ShardReport {
        let mut latency = LatencyHistogram::new();
        for ms in [12, 12, 40, 511, 700] {
            latency.record(ms);
        }
        let mut cells = AppCells::new("netflix");
        cells.record(0, 42);
        cells.record(3, 7);
        cells.record(3, 3);
        ShardReport {
            shard_id: 1,
            start: 2048,
            end: 4096,
            cells: vec![cells],
            latency,
            sampled_plays: 4,
            sample_mismatches: 0,
            counters: vec![("campaign.devices".into(), 2048)],
        }
    }

    fn roundtrip_call(call: CampaignCall) {
        let frame = encode_frame(&FrameBody::CampaignCall(call.clone()));
        let (body, used) = decode_frame(&frame).expect("campaign call decodes");
        assert_eq!(used, frame.len());
        assert_eq!(body, FrameBody::CampaignCall(call));
    }

    fn roundtrip_reply(reply: Result<CampaignReply, CampaignError>) {
        let frame = encode_frame(&FrameBody::CampaignReply(reply.clone()));
        let (body, used) = decode_frame(&frame).expect("campaign reply decodes");
        assert_eq!(used, frame.len());
        assert_eq!(body, FrameBody::CampaignReply(reply));
    }

    #[test]
    fn campaign_calls_roundtrip() {
        roundtrip_call(CampaignCall::Hello);
        roundtrip_call(CampaignCall::RunShard {
            spec: sample_spec(),
            shard: ShardAssignment { shard_id: 3, start: 0, end: 1024 },
        });
        roundtrip_call(CampaignCall::Shutdown);
    }

    #[test]
    fn campaign_replies_roundtrip() {
        roundtrip_reply(Ok(CampaignReply::HelloAck { pid: 4242, wire_version: 3 }));
        roundtrip_reply(Ok(CampaignReply::ShardDone(sample_report())));
        roundtrip_reply(Ok(CampaignReply::ShuttingDown));
    }

    #[test]
    fn campaign_errors_roundtrip() {
        for err in [
            CampaignError::ShardLost { shard_id: 2 },
            CampaignError::Spawn { what: "no such binary".into() },
            CampaignError::Protocol { what: "reply out of step".into() },
            CampaignError::Worker { what: "unknown app slug".into() },
            CampaignError::Wire(WireError::BadCrc { expected: 1, found: 2 }),
            CampaignError::Wire(WireError::Malformed { what: "spec kill flag" }),
        ] {
            roundtrip_reply(Err(err));
        }
    }

    #[test]
    fn histogram_percentiles_match_sorted_samples() {
        let samples = [3u64, 9, 9, 14, 14, 14, 27, 101, 205, 301];
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let q = |num: u64, den: u64| samples[((samples.len() as u64 - 1) * num / den) as usize];
        assert_eq!(h.percentile(50, 100), Some(q(50, 100)));
        assert_eq!(h.percentile(95, 100), Some(q(95, 100)));
        assert_eq!(h.percentile(99, 100), Some(q(99, 100)));
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(301));
        assert_eq!(h.mean(), Some(samples.iter().sum::<u64>() / samples.len() as u64));
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &s in &[5u64, 8, 8, 60] {
            a.record(s);
            all.record(s);
        }
        for &s in &[1u64, 8, 200] {
            b.record(s);
            all.record(s);
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, all);
        // Merging an empty histogram is the identity.
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50, 100), None);
    }

    #[test]
    fn record_clamps_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(HISTOGRAM_BUCKETS as u64 - 1));
        assert_eq!(h.percentile(50, 100), Some(HISTOGRAM_BUCKETS as u64 - 1));
    }

    #[test]
    fn cell_merge_sums_counts_and_takes_min_exemplars() {
        let mut a = AppCells::new("netflix");
        a.record(0, 10);
        a.record(0, 4);
        let mut b = AppCells::new("netflix");
        b.record(0, 2);
        b.record(2, 99);
        a.merge(&b);
        assert_eq!(a.counts[0], 3);
        assert_eq!(a.exemplars[0], Some(2));
        assert_eq!(a.counts[2], 1);
        assert_eq!(a.exemplars[2], Some(99));
        assert_eq!(a.exemplars[1], None);
    }

    #[test]
    fn tampered_histogram_is_malformed() {
        let mut report = sample_report();
        report.latency = LatencyHistogram::new();
        report.latency.count = 5; // lies about the bucket sum
        let frame = encode_frame(&FrameBody::CampaignReply(Ok(CampaignReply::ShardDone(report))));
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::Malformed { what: "histogram count does not match buckets" })
        );
    }
}
