//! An ExoPlayer-style convenience layer over the DRM framework.
//!
//! The paper notes (§IV-C) that "many apps call DRM API through ExoPlayer
//! as recommended by Widevine. This playback library proposes some API
//! allowing developers to provide encrypted audio and video, but not
//! subtitles." This module reproduces exactly that surface:
//!
//! - one `DrmSessionManager`-like session covers the video *and* audio
//!   renditions of a source, with as many distinct content keys as the
//!   license carries (so the recommended multi-key policy is easy);
//! - subtitle tracks are accepted **only in the clear** — feeding an
//!   encrypted subtitle track is a type-level error, the API gap the
//!   paper identifies as one reason subtitles ship unprotected.

use std::sync::Arc;

use wideleak_bmff::fragment::InitSegment;
use wideleak_bmff::types::KeyId;

use crate::binder::Transport;
use crate::mediacodec::{Frame, MediaCodec};
use crate::mediacrypto::MediaCrypto;
use crate::mediadrm::MediaDrm;
use crate::playback::MediaBundle;
use crate::DrmError;

/// Errors specific to the ExoPlayer layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExoError {
    /// The source carried an encrypted subtitle track — the API has no
    /// way to decrypt those.
    EncryptedSubtitlesUnsupported,
    /// The source had no video rendition.
    NoVideoTrack,
    /// An underlying framework failure.
    Drm(DrmError),
}

impl std::fmt::Display for ExoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExoError::EncryptedSubtitlesUnsupported => {
                f.write_str("the playback API cannot handle encrypted subtitle tracks")
            }
            ExoError::NoVideoTrack => f.write_str("source has no video rendition"),
            ExoError::Drm(e) => write!(f, "framework error: {e}"),
        }
    }
}

impl std::error::Error for ExoError {}

impl From<DrmError> for ExoError {
    fn from(e: DrmError) -> Self {
        ExoError::Drm(e)
    }
}

/// A prepared media source: encrypted video/audio plus clear subtitles.
#[derive(Debug, Clone)]
pub struct ExoSource {
    video: MediaBundle,
    audio: Option<MediaBundle>,
    subtitles: Option<String>,
}

impl ExoSource {
    /// Starts a source from its video rendition.
    pub fn new(video: MediaBundle) -> Self {
        ExoSource { video, audio: None, subtitles: None }
    }

    /// Adds an audio rendition (clear or encrypted — both supported).
    pub fn with_audio(mut self, audio: MediaBundle) -> Self {
        self.audio = Some(audio);
        self
    }

    /// Adds a subtitle track. Only clear subtitles are accepted; the
    /// playback API has no decryption path for text tracks.
    ///
    /// # Errors
    ///
    /// Returns [`ExoError::EncryptedSubtitlesUnsupported`] for protected
    /// subtitle inits.
    pub fn with_subtitles(mut self, init: &InitSegment, text: String) -> Result<Self, ExoError> {
        if init.is_protected() {
            return Err(ExoError::EncryptedSubtitlesUnsupported);
        }
        self.subtitles = Some(text);
        Ok(self)
    }

    /// Every key ID this source needs licensed.
    pub fn required_key_ids(&self) -> Vec<KeyId> {
        let mut out = Vec::new();
        for bundle in std::iter::once(&self.video).chain(self.audio.iter()) {
            if let Some(tenc) = &bundle.init.tenc {
                let kid = KeyId(tenc.default_kid.0);
                if !out.contains(&kid) {
                    out.push(kid);
                }
            }
        }
        out
    }
}

/// The played-out result.
#[derive(Debug, Clone)]
pub struct ExoPlayback {
    /// Decrypted video frames.
    pub video_frames: Vec<Frame>,
    /// Decrypted (or clear) audio frames.
    pub audio_frames: Vec<Frame>,
    /// Subtitle text, passed through untouched.
    pub subtitles: Option<String>,
}

/// The player: a thin session manager over `MediaDrm`.
pub struct ExoPlayer {
    drm: MediaDrm,
}

impl std::fmt::Debug for ExoPlayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExoPlayer(widevine session manager)")
    }
}

impl ExoPlayer {
    /// Creates a player bound to a DRM scheme.
    ///
    /// # Errors
    ///
    /// Returns [`ExoError::Drm`] when the scheme is unsupported.
    pub fn new(binder: Arc<dyn Transport>, uuid: [u8; 16]) -> Result<Self, ExoError> {
        Ok(ExoPlayer { drm: MediaDrm::new(binder, uuid)? })
    }

    /// Licenses and plays a source: one session, one license request
    /// covering every key the source needs, then decrypt video and audio.
    ///
    /// # Errors
    ///
    /// Propagates framework and license failures.
    pub fn prepare_and_play(
        &self,
        content_id: &str,
        nonce: [u8; 16],
        source: &ExoSource,
        mut fetch_license: impl FnMut(&[u8]) -> Result<Vec<u8>, DrmError>,
    ) -> Result<ExoPlayback, ExoError> {
        let key_ids = source.required_key_ids();
        let session = self.drm.open_session(nonce)?;

        if !key_ids.is_empty() {
            let request = self.drm.get_key_request(session, content_id, &key_ids)?;
            let response = fetch_license(&request)?;
            let loaded = self.drm.provide_key_response(session, response)?;
            // ExoPlayer surfaces missing keys as a session error up front
            // rather than failing mid-decode.
            for kid in &key_ids {
                if !loaded.contains(kid) {
                    return Err(ExoError::Drm(DrmError::Cdm(wideleak_cdm::CdmError::KeyNotLoaded)));
                }
            }
        }

        let crypto = MediaCrypto::new(&self.drm, session);
        let codec = MediaCodec::configure(&crypto);
        let mut video_frames = Vec::new();
        for seg in &source.video.segments {
            video_frames.extend(codec.queue_secure_segment(&source.video.init, seg)?);
        }
        let mut audio_frames = Vec::new();
        if let Some(audio) = &source.audio {
            for seg in &audio.segments {
                audio_frames.extend(codec.queue_secure_segment(&audio.init, seg)?);
            }
        }
        self.drm.close_session(session)?;

        Ok(ExoPlayback { video_frames, audio_frames, subtitles: source.subtitles.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::fragment::TrackKind;
    use wideleak_bmff::types::Tenc;
    use wideleak_bmff::FourCc;

    fn clear_bundle(kind: TrackKind) -> MediaBundle {
        MediaBundle { init: InitSegment::clear(1, kind), segments: vec![] }
    }

    #[test]
    fn encrypted_subtitles_rejected_at_the_api() {
        let protected_sub_init = InitSegment::protected(
            3,
            TrackKind::Subtitle,
            FourCc(*b"cenc"),
            Tenc::cenc(KeyId([1; 16])),
            vec![],
        );
        let err = ExoSource::new(clear_bundle(TrackKind::Video))
            .with_subtitles(&protected_sub_init, "WEBVTT".into())
            .unwrap_err();
        assert_eq!(err, ExoError::EncryptedSubtitlesUnsupported);
    }

    #[test]
    fn clear_subtitles_accepted() {
        let source = ExoSource::new(clear_bundle(TrackKind::Video))
            .with_subtitles(&InitSegment::clear(3, TrackKind::Subtitle), "WEBVTT".into())
            .unwrap();
        assert_eq!(source.subtitles.as_deref(), Some("WEBVTT"));
    }

    #[test]
    fn required_key_ids_deduplicate_shared_keys() {
        let kid = KeyId([7; 16]);
        let video = MediaBundle {
            init: InitSegment::protected(
                1,
                TrackKind::Video,
                FourCc(*b"cenc"),
                Tenc::cenc(kid),
                vec![],
            ),
            segments: vec![],
        };
        let audio = MediaBundle {
            init: InitSegment::protected(
                2,
                TrackKind::Audio,
                FourCc(*b"cenc"),
                Tenc::cenc(kid),
                vec![],
            ),
            segments: vec![],
        };
        let source = ExoSource::new(video).with_audio(audio);
        assert_eq!(source.required_key_ids(), vec![kid], "shared key requested once");
    }

    #[test]
    fn clear_source_needs_no_keys() {
        let source = ExoSource::new(clear_bundle(TrackKind::Video))
            .with_audio(clear_bundle(TrackKind::Audio));
        assert!(source.required_key_ids().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(ExoError::EncryptedSubtitlesUnsupported.to_string().contains("subtitle"));
        assert!(ExoError::NoVideoTrack.to_string().contains("video"));
    }
}
