//! The Android Media DRM framework model.
//!
//! Reproduces the architecture of Figure 1 in the paper: OTT apps talk to
//! the Java-level [`MediaDrm`]/[`MediaCrypto`]/[`MediaCodec`] APIs, whose
//! calls cross a Binder boundary into the **Media DRM Server** process,
//! which routes them to the Widevine HAL plugin (`wideleak-cdm`).
//!
//! - [`binder`] — the IPC boundary, with a synchronous in-process
//!   transport and a threaded transport (crossbeam channels) that actually
//!   runs the server on its own thread like `mediadrmserver` does;
//! - [`server`] — the Media DRM Server: DRM-scheme registry + call router;
//! - [`mediadrm`] — license and provisioning session management
//!   (`openSession`, `getKeyRequest`, `provideKeyResponse`, …);
//! - [`mediacrypto`] / [`mediacodec`] — the decrypt path:
//!   `queueSecureInputBuffer` hands encrypted samples to the codec, which
//!   decrypts *inside the server process* so the app never sees keys or
//!   plaintext buffers (the property that defeated MovieStealer);
//! - [`playback`] — a driver that runs the complete Figure-1 sequence and
//!   records an ordered [`playback::PlaybackTrace`];
//! - [`exoplayer`] — the ExoPlayer-style convenience layer Widevine
//!   recommends to apps, including its subtitle API gap.
//!
//! [`MediaDrm`]: mediadrm::MediaDrm
//! [`MediaCrypto`]: mediacrypto::MediaCrypto
//! [`MediaCodec`]: mediacodec::MediaCodec

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binder;
pub mod campaign;
pub mod exoplayer;
pub mod mediacodec;
pub mod mediacrypto;
pub mod mediadrm;
pub mod netserver;
pub mod playback;
pub mod reactor;
pub mod server;
pub mod wire;

use std::fmt;

/// Errors surfaced by the Android DRM framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrmError {
    /// The requested DRM scheme UUID is not supported on this device.
    UnsupportedScheme {
        /// The requested UUID.
        uuid: [u8; 16],
    },
    /// The CDM rejected the operation.
    Cdm(wideleak_cdm::CdmError),
    /// The Binder transport failed (server thread gone).
    BinderDied,
    /// The server panicked while handling this transaction. The panic is
    /// contained to the one call; the server keeps serving.
    ServerPanic,
    /// The reply had an unexpected shape (framework bug guard).
    BadReply,
    /// A TCP frame failed to decode (corruption, truncation, protocol
    /// mismatch). Transient from the app's point of view: the connection
    /// is torn down and the retry policy gets a fresh one.
    Wire(wire::WireError),
    /// No reply arrived within the client's read deadline. Transient:
    /// the connection is abandoned and the retry policy gets a fresh
    /// one, instead of the caller hanging on a wedged server forever.
    Timeout {
        /// The deadline that expired, in milliseconds.
        ms: u64,
    },
}

impl DrmError {
    /// A stable lowercase label for telemetry error-class counters.
    ///
    /// Wire errors differentiate per [`wire::WireError`] variant
    /// (`wire.bad_crc`, `wire.truncated`, ...) so the metrics can
    /// distinguish bit rot from truncation from protocol mismatch —
    /// the distinction the paper's failure taxonomy turns on.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            DrmError::UnsupportedScheme { .. } => "unsupported_scheme",
            DrmError::Cdm(_) => "cdm",
            DrmError::BinderDied => "binder_died",
            DrmError::ServerPanic => "server_panic",
            DrmError::BadReply => "bad_reply",
            DrmError::Wire(w) => match w {
                wire::WireError::Truncated { .. } => "wire.truncated",
                wire::WireError::Oversized { .. } => "wire.oversized",
                wire::WireError::BadMagic { .. } => "wire.bad_magic",
                wire::WireError::UnsupportedVersion { .. } => "wire.unsupported_version",
                wire::WireError::BadCrc { .. } => "wire.bad_crc",
                wire::WireError::Malformed { .. } => "wire.malformed",
            },
            DrmError::Timeout { .. } => "timeout",
        }
    }
}

impl wideleak_faults::ErrorClass for DrmError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

impl fmt::Display for DrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrmError::UnsupportedScheme { uuid } => {
                write!(f, "unsupported DRM scheme {:02x?}", &uuid[..4])
            }
            DrmError::Cdm(e) => write!(f, "CDM error: {e}"),
            DrmError::BinderDied => f.write_str("binder transaction failed: server died"),
            DrmError::ServerPanic => f.write_str("media drm server panicked handling the call"),
            DrmError::BadReply => f.write_str("unexpected reply shape from media drm server"),
            DrmError::Wire(e) => write!(f, "wire frame error: {e}"),
            DrmError::Timeout { ms } => {
                write!(f, "binder read timed out after {ms} ms")
            }
        }
    }
}

impl std::error::Error for DrmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrmError::Cdm(e) => Some(e),
            DrmError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for DrmError {
    fn from(e: wire::WireError) -> Self {
        DrmError::Wire(e)
    }
}

impl From<wideleak_cdm::CdmError> for DrmError {
    fn from(e: wideleak_cdm::CdmError) -> Self {
        DrmError::Cdm(e)
    }
}
