//! The `MediaCodec` secure decode path.
//!
//! `queueSecureInputBuffer()` hands encrypted samples (with their CENC
//! metadata) to the codec. Decryption happens on the server side of the
//! Binder boundary, through the registered [`MediaCrypto`]; the app never
//! touches keys — this is why the MovieStealer attack (grabbing decrypted
//! buffers in the app process) no longer applies, as §II-B of the paper
//! notes.

use wideleak_bmff::fragment::{InitSegment, MediaSegment};
use wideleak_bmff::types::KeyId;
use wideleak_cdm::oemcrypto::SampleCrypto;
use wideleak_cenc::track::Scheme;

use crate::binder::DrmCall;
use crate::mediacrypto::MediaCrypto;
use crate::DrmError;

/// A decoded (decrypted) frame. The simulator stops at decryption; real
/// codecs would go on to decode the bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The decrypted sample bytes.
    pub data: Vec<u8>,
}

/// A secure decoder with a registered crypto object.
pub struct MediaCodec<'a> {
    crypto: &'a MediaCrypto,
}

impl std::fmt::Debug for MediaCodec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MediaCodec(session: {})", self.crypto.session_id())
    }
}

impl<'a> MediaCodec<'a> {
    /// `configure(..., crypto)` — registers the crypto object.
    pub fn configure(crypto: &'a MediaCrypto) -> Self {
        MediaCodec { crypto }
    }

    /// `queueSecureInputBuffer()` for a whole media segment: decrypts
    /// every sample using the segment's `senc` metadata and the init
    /// segment's `tenc` defaults.
    ///
    /// Clear segments pass through untouched.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError`] when metadata is inconsistent or the key is
    /// not loaded in the bound session.
    pub fn queue_secure_segment(
        &self,
        init: &InitSegment,
        segment: &MediaSegment,
    ) -> Result<Vec<Frame>, DrmError> {
        let samples = segment.samples().map_err(|_| DrmError::BadReply)?;
        let Some(senc) = &segment.senc else {
            return Ok(samples.into_iter().map(|s| Frame { data: s.to_vec() }).collect());
        };
        let tenc = init.tenc.as_ref().ok_or(DrmError::BadReply)?;
        let scheme = init.scheme.and_then(Scheme::from_fourcc).ok_or(DrmError::BadReply)?;
        if senc.entries.len() != samples.len() {
            return Err(DrmError::BadReply);
        }
        let kid = KeyId(tenc.default_kid.0);

        let mut frames = Vec::with_capacity(samples.len());
        for (sample, entry) in samples.iter().zip(&senc.entries) {
            let crypto = match scheme {
                Scheme::Cenc => {
                    let iv: [u8; 8] =
                        entry.iv.as_slice().try_into().map_err(|_| DrmError::BadReply)?;
                    SampleCrypto::Cenc { iv }
                }
                Scheme::Cbcs => {
                    let constant_iv = tenc.constant_iv.ok_or(DrmError::BadReply)?;
                    let pattern = tenc.pattern.ok_or(DrmError::BadReply)?;
                    SampleCrypto::Cbcs {
                        constant_iv,
                        crypt_blocks: pattern.crypt_blocks,
                        skip_blocks: pattern.skip_blocks,
                    }
                }
            };
            let data = self
                .crypto
                .binder()
                .transact(DrmCall::DecryptSample {
                    session_id: self.crypto.session_id(),
                    kid,
                    crypto,
                    data: sample.to_vec(),
                    subsamples: entry.subsamples.clone(),
                })?
                .into_bytes()?;
            frames.push(Frame { data });
        }
        Ok(frames)
    }
}
