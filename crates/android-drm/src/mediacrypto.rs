//! The `MediaCrypto` API: the decrypt-capable handle bound to an open
//! session.
//!
//! Apps construct a `MediaCrypto` from a `MediaDrm` session and register
//! it with a `MediaCodec`; they can never extract keys or plaintext from
//! it. The generic (non-DASH) operations are also exposed here, matching
//! how OTT apps reach them through the session.

use std::sync::Arc;

use wideleak_bmff::types::KeyId;

use crate::binder::{DrmCall, Transport};
use crate::mediadrm::MediaDrm;
use crate::DrmError;

/// A decrypt handle bound to one session.
pub struct MediaCrypto {
    binder: Arc<dyn Transport>,
    session_id: u32,
}

impl std::fmt::Debug for MediaCrypto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MediaCrypto(session: {})", self.session_id)
    }
}

impl MediaCrypto {
    /// Binds a crypto handle to an open session of a `MediaDrm`.
    pub fn new(drm: &MediaDrm, session_id: u32) -> Self {
        MediaCrypto { binder: drm.binder().clone(), session_id }
    }

    /// The bound session.
    pub fn session_id(&self) -> u32 {
        self.session_id
    }

    /// The shared binder (used by [`crate::mediacodec::MediaCodec`]).
    pub(crate) fn binder(&self) -> &Arc<dyn Transport> {
        &self.binder
    }

    /// Non-DASH generic encryption (the "secure channel" API).
    ///
    /// # Errors
    ///
    /// Propagates CDM failures (unloaded key in particular).
    pub fn generic_encrypt(
        &self,
        kid: KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, DrmError> {
        self.binder
            .transact(DrmCall::GenericEncrypt {
                session_id: self.session_id,
                kid,
                iv,
                data: data.to_vec(),
            })?
            .into_bytes()
    }

    /// Non-DASH generic decryption.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures.
    pub fn generic_decrypt(
        &self,
        kid: KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, DrmError> {
        self.binder
            .transact(DrmCall::GenericDecrypt {
                session_id: self.session_id,
                kid,
                iv,
                data: data.to_vec(),
            })?
            .into_bytes()
    }

    /// Non-DASH generic signing.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures.
    pub fn generic_sign(&self, kid: KeyId, data: &[u8]) -> Result<Vec<u8>, DrmError> {
        self.binder
            .transact(DrmCall::GenericSign {
                session_id: self.session_id,
                kid,
                data: data.to_vec(),
            })?
            .into_bytes()
    }

    /// Non-DASH generic verification.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; a failed verification returns
    /// `Ok(false)`.
    pub fn generic_verify(
        &self,
        kid: KeyId,
        data: &[u8],
        signature: &[u8],
    ) -> Result<bool, DrmError> {
        self.binder
            .transact(DrmCall::GenericVerify {
                session_id: self.session_id,
                kid,
                data: data.to_vec(),
                signature: signature.to_vec(),
            })?
            .into_bool()
    }
}
