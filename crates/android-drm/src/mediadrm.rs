//! The `MediaDrm` API: key and provisioning management for one DRM
//! scheme, as exposed to apps in Java/Kotlin.

use std::sync::Arc;

use wideleak_bmff::types::KeyId;

use crate::binder::{DrmCall, Transport};
use crate::DrmError;

/// An app-side `MediaDrm` instance bound to one scheme UUID.
pub struct MediaDrm {
    binder: Arc<dyn Transport>,
    uuid: [u8; 16],
}

impl std::fmt::Debug for MediaDrm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MediaDrm(uuid: {:02x?}...)", &self.uuid[..4])
    }
}

impl MediaDrm {
    /// `new MediaDrm(UUID)` — fails when the scheme is unsupported.
    ///
    /// # Errors
    ///
    /// Returns [`DrmError::UnsupportedScheme`].
    pub fn new(binder: Arc<dyn Transport>, uuid: [u8; 16]) -> Result<Self, DrmError> {
        let supported = binder.transact(DrmCall::IsSchemeSupported { uuid })?.into_bool()?;
        if !supported {
            return Err(DrmError::UnsupportedScheme { uuid });
        }
        Ok(MediaDrm { binder, uuid })
    }

    /// Static support probe without constructing an instance.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn is_crypto_scheme_supported(
        binder: &Arc<dyn Transport>,
        uuid: [u8; 16],
    ) -> Result<bool, DrmError> {
        binder.transact(DrmCall::IsSchemeSupported { uuid })?.into_bool()
    }

    /// The scheme UUID this instance serves.
    pub fn uuid(&self) -> [u8; 16] {
        self.uuid
    }

    /// The shared binder (used by [`crate::mediacrypto::MediaCrypto`]).
    pub fn binder(&self) -> &Arc<dyn Transport> {
        &self.binder
    }

    /// `openSession()`.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures.
    pub fn open_session(&self, nonce: [u8; 16]) -> Result<u32, DrmError> {
        self.binder.transact(DrmCall::OpenSession { nonce })?.into_session_id()
    }

    /// `closeSession()`.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures.
    pub fn close_session(&self, session_id: u32) -> Result<(), DrmError> {
        self.binder.transact(DrmCall::CloseSession { session_id })?;
        Ok(())
    }

    /// Whether the device is provisioned.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn is_provisioned(&self) -> Result<bool, DrmError> {
        self.binder.transact(DrmCall::IsProvisioned)?.into_bool()
    }

    /// `getProvisionRequest()` — an opaque blob for the provisioning
    /// server.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures.
    pub fn get_provision_request(&self, nonce: [u8; 16]) -> Result<Vec<u8>, DrmError> {
        self.binder.transact(DrmCall::GetProvisionRequest { nonce })?.into_bytes()
    }

    /// `provideProvisionResponse()`.
    ///
    /// # Errors
    ///
    /// Propagates CDM verification failures.
    pub fn provide_provision_response(
        &self,
        nonce: [u8; 16],
        response: Vec<u8>,
    ) -> Result<(), DrmError> {
        self.binder.transact(DrmCall::ProvideProvisionResponse { nonce, response })?;
        Ok(())
    }

    /// `getKeyRequest()` — the opaque license request for the License
    /// Server.
    ///
    /// # Errors
    ///
    /// Propagates CDM failures (unprovisioned devices in particular).
    pub fn get_key_request(
        &self,
        session_id: u32,
        content_id: &str,
        key_ids: &[KeyId],
    ) -> Result<Vec<u8>, DrmError> {
        self.binder
            .transact(DrmCall::GetKeyRequest {
                session_id,
                content_id: content_id.to_owned(),
                key_ids: key_ids.to_vec(),
            })?
            .into_bytes()
    }

    /// `provideKeyResponse()` — loads the license; returns the key IDs
    /// that became usable.
    ///
    /// # Errors
    ///
    /// Propagates CDM verification failures.
    pub fn provide_key_response(
        &self,
        session_id: u32,
        response: Vec<u8>,
    ) -> Result<Vec<KeyId>, DrmError> {
        self.binder.transact(DrmCall::ProvideKeyResponse { session_id, response })?.into_key_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::InProcessBinder;
    use crate::server::MediaDrmServer;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;

    fn binder() -> Arc<dyn Transport> {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"mediadrm-test", &[3; 16])).boot(&device).unwrap();
        let mut server = MediaDrmServer::new();
        server.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        Arc::new(InProcessBinder::new(server))
    }

    #[test]
    fn construction_checks_scheme() {
        let b = binder();
        assert!(MediaDrm::new(b.clone(), WIDEVINE_SYSTEM_ID).is_ok());
        assert!(matches!(
            MediaDrm::new(b.clone(), [9; 16]),
            Err(DrmError::UnsupportedScheme { .. })
        ));
        assert!(MediaDrm::is_crypto_scheme_supported(&b, WIDEVINE_SYSTEM_ID).unwrap());
        assert!(!MediaDrm::is_crypto_scheme_supported(&b, [9; 16]).unwrap());
    }

    #[test]
    fn session_management() {
        let drm = MediaDrm::new(binder(), WIDEVINE_SYSTEM_ID).unwrap();
        let sid = drm.open_session([1; 16]).unwrap();
        drm.close_session(sid).unwrap();
        assert!(drm.close_session(sid).is_err());
    }

    #[test]
    fn key_request_requires_provisioning() {
        let drm = MediaDrm::new(binder(), WIDEVINE_SYSTEM_ID).unwrap();
        assert!(!drm.is_provisioned().unwrap());
        let sid = drm.open_session([1; 16]).unwrap();
        assert!(matches!(
            drm.get_key_request(sid, "movie", &[]),
            Err(DrmError::Cdm(wideleak_cdm::CdmError::NotProvisioned))
        ));
    }

    #[test]
    fn provision_request_is_opaque_bytes() {
        let drm = MediaDrm::new(binder(), WIDEVINE_SYSTEM_ID).unwrap();
        let blob = drm.get_provision_request([7; 16]).unwrap();
        // The app treats this as opaque; it must at least parse as the
        // wire message the server expects.
        assert!(wideleak_cdm::messages::ProvisioningRequest::parse(&blob).is_ok());
    }
}
