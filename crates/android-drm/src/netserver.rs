//! The TCP client transport: a pooled (or pipelined) [`TcpBinder`]
//! speaking the [`wire`](crate::wire) frame format over real sockets to
//! a [`TcpDrmServer`] — the event-driven reactor server living in
//! [`reactor`](crate::reactor) and re-exported here.
//!
//! [`TcpBinder`] is routed through the same
//! [`transact_via`](crate::binder) seam as the in-memory transports so
//! telemetry and fault injection compose identically. It has two
//! modes:
//!
//! - **Pooled** (default, [`TcpBinderBuilder::pool_size`]): a bounded
//!   pool of connections, one in-flight call per checked-out socket,
//!   with a health-checked reconnect. The health check covers *both*
//!   stale-socket symptoms: a failed write, and a clean EOF before any
//!   reply byte (the write landed in a dead socket's buffer) — each
//!   worth exactly one reconnect-and-retry.
//! - **Pipelined** ([`TcpBinderBuilder::pipeline_depth`] ≥ 2): one
//!   shared connection carrying up to `depth` concurrent calls, each
//!   tagged with a wire-v3 request id; a reader thread routes the
//!   out-of-order replies back to their callers by id.
//!
//! Every read is bounded by a configurable deadline
//! ([`TcpBinderBuilder::read_timeout`]); a wedged server surfaces as
//! the transient, retryable [`DrmError::Timeout`] instead of hanging
//! the caller forever.
//!
//! Fault realisation differs from the in-memory transports by design:
//! they corrupt the typed reply payload, but here corruption faults
//! damage the *received frame bytes* before decoding, so they surface
//! as typed [`WireError`]s through [`DrmError::Wire`]. Drop faults
//! sever a live pooled connection (the reconnect machinery recovers);
//! in pipelined mode they fail only the targeted call, leaving the
//! shared connection — and every innocent in-flight call on it —
//! untouched, so app-visible outcomes stay identical across modes.
//! The differential battery pins that all transports still produce
//! byte-identical study reports.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use wideleak_faults::{corrupt_body, FaultInjector, FaultKind};
use wideleak_telemetry::{trace, CounterHandle};

use crate::binder::{transact_via, DrmCall, DrmReply, FaultStyle, Transport};
use crate::server::MediaDrmServer;
use crate::wire::{
    decode_frame, encode_frame_full, encode_frame_with, frame_len, peek_request_id, FrameBody,
    WireError, HEADER_LEN,
};
use crate::DrmError;

pub use crate::reactor::{ReactorConfig, TcpDrmServer};

static FRAMES_SENT: CounterHandle = CounterHandle::new("binder.tcp.frames.sent");
static FRAMES_RECEIVED: CounterHandle = CounterHandle::new("binder.tcp.frames.received");
static BYTES_SENT: CounterHandle = CounterHandle::new("binder.tcp.bytes.sent");
static BYTES_RECEIVED: CounterHandle = CounterHandle::new("binder.tcp.bytes.received");
static RECONNECTS: CounterHandle = CounterHandle::new("binder.tcp.reconnects");

/// How often blocked reads wake up to re-check their stop condition
/// (the deadline for pooled reads, the shutdown flag for the pipelined
/// reader thread).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Default read deadline: generous against real dispatch latency,
/// finite against a wedged server.
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Reads exactly `buf.len()` bytes, waking every [`POLL_INTERVAL`] to
/// check `shutdown`. Returns `Ok(false)` on a clean EOF *before any
/// byte arrived* (the peer closed between frames); EOF mid-frame is an
/// error. Partial reads across timeouts are tracked, so a slow peer
/// does not desync the stream.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "reader shutdown"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one whole frame (header + payload + trailer) into a buffer.
/// Returns `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Result<Vec<u8>, WireError>>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(stream, &mut header, shutdown)? {
        return Ok(None);
    }
    let total = match frame_len(&header) {
        Ok(total) => total,
        // A bad header means the frame boundary is unknowable; the
        // caller must sever, but gets the typed error first.
        Err(e) => return Ok(Some(Err(e))),
    };
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    if !read_full(stream, &mut frame[HEADER_LEN..], shutdown)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        ));
    }
    Ok(Some(Ok(frame)))
}

/// Outcome of a deadline-bounded frame read on a pooled socket.
enum FrameRead {
    /// A complete frame.
    Frame(Vec<u8>),
    /// The header was unparseable; the stream can no longer be trusted
    /// to be frame-aligned.
    Wire(WireError),
    /// Clean EOF before any reply byte — the stale-socket symptom the
    /// one-retry health check covers.
    CleanEof,
    /// The deadline expired with the frame incomplete.
    TimedOut,
}

enum FillStatus {
    Done,
    CleanEof,
    TimedOut,
}

/// Reads exactly `buf.len()` bytes or gives up when `deadline` (dated
/// from `started`) expires. Each blocking wait is capped at
/// [`POLL_INTERVAL`] so the remaining budget is re-checked often.
fn read_full_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started: Instant,
    deadline: Duration,
) -> std::io::Result<FillStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
            return Ok(FillStatus::TimedOut);
        };
        let slice = remaining.min(POLL_INTERVAL).max(Duration::from_millis(1));
        let _ = stream.set_read_timeout(Some(slice));
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FillStatus::CleanEof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FillStatus::Done)
}

/// Reads one whole frame with a deadline covering header and payload
/// together. A timeout mid-frame still reports [`FrameRead::TimedOut`]
/// — the caller severs the (now desynced) socket either way.
fn read_frame_deadline(stream: &mut TcpStream, deadline: Duration) -> std::io::Result<FrameRead> {
    let started = Instant::now();
    let mut header = [0u8; HEADER_LEN];
    match read_full_deadline(stream, &mut header, started, deadline)? {
        FillStatus::Done => {}
        FillStatus::CleanEof => return Ok(FrameRead::CleanEof),
        FillStatus::TimedOut => return Ok(FrameRead::TimedOut),
    }
    let total = match frame_len(&header) {
        Ok(total) => total,
        Err(e) => return Ok(FrameRead::Wire(e)),
    };
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    match read_full_deadline(stream, &mut frame[HEADER_LEN..], started, deadline)? {
        FillStatus::Done => Ok(FrameRead::Frame(frame)),
        FillStatus::CleanEof => {
            Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer closed mid-frame"))
        }
        FillStatus::TimedOut => Ok(FrameRead::TimedOut),
    }
}

/// A pooled connection slot: `Some` holds a live socket, `None` marks a
/// slot whose connection died (or was never opened) — checking out a
/// `None` slot triggers a reconnect, which is the health check.
type ConnSlot = Option<TcpStream>;

/// Builds a [`TcpBinder`] — pool size, pipelining depth, read deadline,
/// fault plane and target are configured here.
pub struct TcpBinderBuilder {
    target: Target,
    pool_size: usize,
    injector: Option<Arc<FaultInjector>>,
    read_timeout: Duration,
    pipeline_depth: usize,
}

enum Target {
    /// Connect to an external [`TcpDrmServer`] (or `wideleak serve`).
    Addr(SocketAddr),
    /// Own a loopback server for this binder's lifetime.
    Loopback(MediaDrmServer),
}

impl TcpBinderBuilder {
    /// Sets the connection-pool size (clamped to ≥ 1; default 4).
    /// Ignored in pipelined mode, which shares one connection.
    #[must_use]
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = pool_size.max(1);
        self
    }

    /// Attaches a fault injector whose binder-plane rules apply to every
    /// transaction; corruption and drops are realised on real frames.
    #[must_use]
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Sets the reply-read deadline (clamped to ≥ 1 ms; default 5 s).
    /// A deadline expiry surfaces as the transient
    /// [`DrmError::Timeout`].
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Sets how many calls may be in flight on one shared connection.
    /// Depth ≤ 1 (the default) keeps the pooled
    /// one-call-per-checked-out-socket mode; depth ≥ 2 switches to
    /// pipelined mode with request-id-correlated replies.
    #[must_use]
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Connects (lazily — sockets open on first use).
    ///
    /// # Errors
    ///
    /// Returns the bind error when a loopback target cannot listen.
    pub fn build(self) -> std::io::Result<TcpBinder> {
        let (addr, server, local) = match self.target {
            Target::Addr(addr) => (addr, None, None),
            Target::Loopback(server) => {
                let server = Arc::new(server);
                let local = TcpDrmServer::bind_shared("127.0.0.1:0", Arc::clone(&server))?;
                (local.local_addr(), Some(server), Some(local))
            }
        };
        let (slot_tx, slot_rx) = crossbeam::channel::bounded::<ConnSlot>(self.pool_size);
        for _ in 0..self.pool_size {
            slot_tx.send(None).expect("pre-filling the connection pool");
        }
        let pipeline = (self.pipeline_depth >= 2).then(|| {
            let (ticket_tx, ticket_rx) = crossbeam::channel::bounded::<()>(self.pipeline_depth);
            for _ in 0..self.pipeline_depth {
                ticket_tx.send(()).expect("pre-filling the in-flight window");
            }
            PipelineState {
                depth: self.pipeline_depth,
                conn: Mutex::new(None),
                ticket_tx,
                ticket_rx,
            }
        });
        Ok(TcpBinder {
            addr,
            pool_size: self.pool_size,
            read_timeout: self.read_timeout,
            slot_tx,
            slot_rx,
            pipeline,
            injector: self.injector,
            server,
            _local: local,
        })
    }
}

/// The channel a pipelined caller waits on for its raw reply frame.
type ReplyWaiter = mpsc::Sender<Result<Vec<u8>, DrmError>>;

/// One shared pipelined connection: a writer half callers serialize
/// on, a map of reply waiters keyed by request id, and a reader thread
/// (spawned in [`PipeConn::open`]) routing inbound frames to them.
struct PipeConn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, ReplyWaiter>>,
    next_id: AtomicU64,
    /// Set once the connection is known broken; callers holding a clone
    /// reconnect instead of piling more calls onto it.
    dead: AtomicBool,
    /// Tells the reader thread to exit on the next poll wake-up.
    shutdown: AtomicBool,
}

impl PipeConn {
    /// Connects and spawns the reader thread.
    fn open(addr: SocketAddr) -> std::io::Result<Arc<PipeConn>> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader_stream = stream.try_clone()?;
        let conn = Arc::new(PipeConn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let thread_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("tcpbinder-reader".into())
            .spawn(move || reader_loop(reader_stream, &thread_conn))
            .expect("spawning the pipelined reader");
        Ok(conn)
    }

    /// Marks the connection dead and unblocks the reader immediately
    /// (instead of after its next [`POLL_INTERVAL`] wake-up).
    fn begin_shutdown(&self) {
        self.dead.store(true, Ordering::Release);
        self.shutdown.store(true, Ordering::Release);
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Declares the connection broken and fails every waiter: their
    /// replies can no longer arrive.
    fn fail_all(&self, error: &DrmError) {
        self.dead.store(true, Ordering::Release);
        let waiters = match self.pending.lock() {
            Ok(mut pending) => pending.drain().collect::<Vec<_>>(),
            Err(_) => Vec::new(),
        };
        for (_, tx) in waiters {
            let _ = tx.send(Err(error.clone()));
        }
    }
}

/// The reader half of a pipelined connection: routes each inbound
/// reply frame to its waiter by request id. Any condition that breaks
/// the id↔reply correspondence (EOF, IO error, unparseable header, a
/// reply with no id) kills the connection and fails every waiter —
/// transiently, so the retry policy pays one reconnect.
fn reader_loop(mut stream: TcpStream, conn: &Arc<PipeConn>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match read_frame(&mut stream, &conn.shutdown) {
            Ok(Some(Ok(frame))) => {
                let Some(id) = peek_request_id(&frame) else {
                    conn.fail_all(&DrmError::BadReply);
                    return;
                };
                let waiter = match conn.pending.lock() {
                    Ok(mut pending) => pending.remove(&id),
                    Err(_) => None,
                };
                // No waiter: the caller timed out and abandoned the id.
                if let Some(tx) = waiter {
                    let _ = tx.send(Ok(frame));
                }
            }
            Ok(Some(Err(wire_err))) => {
                conn.fail_all(&DrmError::Wire(wire_err));
                return;
            }
            Ok(None) | Err(_) => {
                conn.fail_all(&DrmError::BinderDied);
                return;
            }
        }
    }
}

/// The pipelined half of a [`TcpBinder`]: the current shared
/// connection (replaced wholesale when it dies) and a ticket channel
/// bounding calls in flight.
struct PipelineState {
    depth: usize,
    conn: Mutex<Option<Arc<PipeConn>>>,
    ticket_tx: crossbeam::channel::Sender<()>,
    ticket_rx: crossbeam::channel::Receiver<()>,
}

impl Drop for PipelineState {
    fn drop(&mut self) {
        if let Ok(mut conn) = self.conn.lock() {
            if let Some(conn) = conn.take() {
                conn.begin_shutdown();
            }
        }
    }
}

/// Returns the in-flight ticket when the call finishes, however it
/// finishes.
struct TicketGuard<'a>(&'a crossbeam::channel::Sender<()>);

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        let _ = self.0.send(());
    }
}

/// The client half of the TCP transport: transactions multiplexed to a
/// [`TcpDrmServer`] over a bounded connection pool, or — in pipelined
/// mode — over one shared request-id-correlated connection.
///
/// Pool behaviour: a transaction checks a slot out of a bounded channel
/// (blocking when all are in flight, which bounds concurrent sockets),
/// reconnects if the slot is dead, and returns the slot — live on
/// success, dead after any IO or frame error, because a failed stream
/// cannot be trusted to be frame-aligned. Reconnects are counted on
/// `binder.tcp.reconnects`.
pub struct TcpBinder {
    addr: SocketAddr,
    pool_size: usize,
    read_timeout: Duration,
    // Client-side connection state is declared before `_local` so
    // pooled sockets and the pipelined reader shut down before the
    // owned server does.
    slot_tx: crossbeam::channel::Sender<ConnSlot>,
    slot_rx: crossbeam::channel::Receiver<ConnSlot>,
    pipeline: Option<PipelineState>,
    injector: Option<Arc<FaultInjector>>,
    /// Loopback handle onto the served instance so clock-skew faults can
    /// reach the CDM clock; `None` when connected to a remote server.
    server: Option<Arc<MediaDrmServer>>,
    _local: Option<TcpDrmServer>,
}

impl TcpBinder {
    /// Starts building a binder that owns its own loopback server.
    #[must_use]
    pub fn loopback(server: MediaDrmServer) -> TcpBinderBuilder {
        TcpBinderBuilder {
            target: Target::Loopback(server),
            pool_size: 4,
            injector: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            pipeline_depth: 1,
        }
    }

    /// Starts building a binder against an already-running server.
    #[must_use]
    pub fn connect(addr: SocketAddr) -> TcpBinderBuilder {
        TcpBinderBuilder {
            target: Target::Addr(addr),
            pool_size: 4,
            injector: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            pipeline_depth: 1,
        }
    }

    /// The server address transactions go to.
    #[must_use]
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pool capacity (concurrent connections ceiling in pooled mode).
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Calls allowed in flight at once: the pipeline depth, or 1 per
    /// pooled connection.
    #[must_use]
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline.as_ref().map_or(1, |p| p.depth)
    }

    /// Opens a fresh connection to the server.
    fn connect_fresh(&self) -> Result<TcpStream, DrmError> {
        match TcpStream::connect(self.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                Ok(stream)
            }
            Err(_) => Err(DrmError::BinderDied),
        }
    }

    /// Checks a slot out of the pool, reconnecting if it is dead.
    fn checkout(&self) -> Result<TcpStream, DrmError> {
        let slot = self.slot_rx.recv().map_err(|_| DrmError::BinderDied)?;
        match slot {
            Some(stream) => Ok(stream),
            None => {
                RECONNECTS.incr();
                match self.connect_fresh() {
                    Ok(stream) => Ok(stream),
                    Err(e) => {
                        // Return the dead slot so the pool keeps its
                        // capacity; the next checkout retries.
                        self.checkin(None);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Returns a slot to the pool (dead slots keep the capacity).
    fn checkin(&self, slot: ConnSlot) {
        let _ = self.slot_tx.send(slot);
    }

    /// One framed round trip over a pooled socket, with the transport's
    /// share of fault realisation: `Drop` severs the checked-out
    /// connection, and corruption kinds damage the received reply frame
    /// before decode.
    fn run_over_socket(
        &self,
        call: DrmCall,
        fault: Option<&FaultKind>,
    ) -> Result<DrmReply, DrmError> {
        // Capture the caller's trace context *before* opening phase
        // spans: the frame should carry the `drm.call` root so the
        // server stitches under it, not under a transient phase.
        let trace_ctx = trace::current();
        let mut stream = {
            // Queue-wait phase: time blocked on a free pool slot.
            let _checkout = trace::span("tcp.checkout");
            self.checkout()?
        };
        if matches!(fault, Some(FaultKind::Drop)) {
            // Sever: the socket closes, the slot is marked dead, and the
            // *next* transaction pays the reconnect.
            self.checkin(None);
            return Err(DrmError::BinderDied);
        }
        let request = {
            let _encode = trace::span("tcp.encode");
            encode_frame_with(&FrameBody::Call(call), trace_ctx.as_ref())
        };
        let started = Instant::now();
        let roundtrip = trace::span("tcp.roundtrip");
        // The stale-socket health check: at most one reconnect-and-retry
        // per transaction, whether the staleness shows as a failed write
        // or as a clean EOF before any reply byte.
        let mut retried = false;
        if stream.write_all(&request).is_err() {
            retried = true;
            RECONNECTS.incr();
            trace::annotate("reconnect", "stale_socket");
            stream = match self.connect_fresh() {
                Ok(fresh) => fresh,
                Err(e) => {
                    self.checkin(None);
                    return Err(e);
                }
            };
            if stream.write_all(&request).is_err() {
                self.checkin(None);
                return Err(DrmError::BinderDied);
            }
        }
        FRAMES_SENT.incr();
        BYTES_SENT.add(request.len() as u64);
        let mut frame = loop {
            match read_frame_deadline(&mut stream, self.read_timeout) {
                Ok(FrameRead::Frame(frame)) => break frame,
                Ok(FrameRead::Wire(wire_err)) => {
                    self.checkin(None);
                    return Err(DrmError::Wire(wire_err));
                }
                Ok(FrameRead::TimedOut) => {
                    // A wedged server. The stream may deliver the stale
                    // reply later, so the socket cannot be reused; the
                    // error is transient and the retry policy pays one
                    // reconnect.
                    self.checkin(None);
                    return Err(DrmError::Timeout {
                        ms: u64::try_from(self.read_timeout.as_millis()).unwrap_or(u64::MAX),
                    });
                }
                Ok(FrameRead::CleanEof) if !retried => {
                    // The write landed in a dead socket's buffer and the
                    // EOF is the first evidence. Same one-shot health
                    // check as a failed write.
                    retried = true;
                    RECONNECTS.incr();
                    trace::annotate("reconnect", "eof_before_reply");
                    stream = match self.connect_fresh() {
                        Ok(fresh) => fresh,
                        Err(e) => {
                            self.checkin(None);
                            return Err(e);
                        }
                    };
                    if stream.write_all(&request).is_err() {
                        self.checkin(None);
                        return Err(DrmError::BinderDied);
                    }
                    FRAMES_SENT.incr();
                    BYTES_SENT.add(request.len() as u64);
                }
                Ok(FrameRead::CleanEof) | Err(_) => {
                    self.checkin(None);
                    return Err(DrmError::BinderDied);
                }
            }
        };
        FRAMES_RECEIVED.incr();
        BYTES_RECEIVED.add(frame.len() as u64);
        drop(roundtrip);
        wideleak_telemetry::observe("binder.tcp.rtt", started.elapsed());
        if let Some(kind) = fault {
            // Frame-level corruption: the damage lands on real received
            // bytes, and the codec's own checks turn it into a typed
            // error — nothing is faked downstream of the socket.
            frame = corrupt_body(kind, frame);
        }
        let _decode = trace::span("tcp.decode");
        match decode_frame(&frame) {
            Ok((FrameBody::Reply(reply), _)) => {
                self.checkin(Some(stream));
                reply
            }
            Ok((
                FrameBody::Call(_) | FrameBody::CampaignCall(_) | FrameBody::CampaignReply(_),
                _,
            )) => {
                // Anything but a DRM reply on the DRM channel is a
                // protocol violation.
                self.checkin(None);
                Err(DrmError::BadReply)
            }
            Err(wire_err) => {
                // The stream may be desynced; sever and let the retry
                // policy pay one reconnect.
                self.checkin(None);
                Err(DrmError::Wire(wire_err))
            }
        }
    }

    /// The current shared pipelined connection, opened (or reopened)
    /// on demand.
    fn pipelined_conn(&self, pl: &PipelineState) -> Result<Arc<PipeConn>, DrmError> {
        let mut current = pl.conn.lock().map_err(|_| DrmError::BinderDied)?;
        if let Some(conn) = current.as_ref() {
            if !conn.dead.load(Ordering::Acquire) {
                return Ok(Arc::clone(conn));
            }
            conn.begin_shutdown();
            *current = None;
        }
        RECONNECTS.incr();
        match PipeConn::open(self.addr) {
            Ok(conn) => {
                *current = Some(Arc::clone(&conn));
                Ok(conn)
            }
            Err(_) => Err(DrmError::BinderDied),
        }
    }

    /// Takes a broken connection out of service (if it is still the
    /// current one) so the next caller reconnects.
    fn retire_pipelined_conn(&self, pl: &PipelineState, conn: &Arc<PipeConn>) {
        conn.dead.store(true, Ordering::Release);
        if let Ok(mut current) = pl.conn.lock() {
            if current.as_ref().is_some_and(|c| Arc::ptr_eq(c, conn)) {
                conn.begin_shutdown();
                *current = None;
            }
        }
    }

    /// One pipelined call: take an in-flight ticket, tag the frame with
    /// a fresh request id, and wait (deadline-bounded) for the reader
    /// thread to deliver the correlated reply.
    fn run_pipelined(
        &self,
        pl: &PipelineState,
        call: DrmCall,
        fault: Option<&FaultKind>,
    ) -> Result<DrmReply, DrmError> {
        let trace_ctx = trace::current();
        if matches!(fault, Some(FaultKind::Drop)) {
            // Pipelined drop realisation: this one call's frame never
            // arrives. The shared connection is not severed, so
            // innocent in-flight calls are untouched and the
            // app-visible outcome matches the pooled transport's.
            return Err(DrmError::BinderDied);
        }
        {
            // Queue-wait phase: time blocked on the in-flight window.
            let _checkout = trace::span("tcp.checkout");
            pl.ticket_rx.recv().map_err(|_| DrmError::BinderDied)?;
        }
        let _ticket = TicketGuard(&pl.ticket_tx);
        let body = FrameBody::Call(call);
        // The stale-socket health check, pipelined edition: one
        // reconnect-and-retry when the shared connection turns out to
        // be dead (failed write, or the reader declaring it broken
        // before this reply arrived).
        let mut retried = false;
        loop {
            let conn = self.pipelined_conn(pl)?;
            let id = conn.next_id.fetch_add(1, Ordering::Relaxed);
            let (reply_tx, reply_rx) = mpsc::channel();
            if let Ok(mut pending) = conn.pending.lock() {
                pending.insert(id, reply_tx);
            } else {
                return Err(DrmError::BinderDied);
            }
            let request = {
                let _encode = trace::span("tcp.encode");
                encode_frame_full(&body, trace_ctx.as_ref(), Some(id))
            };
            let started = Instant::now();
            let roundtrip = trace::span("tcp.roundtrip");
            let wrote = match conn.writer.lock() {
                Ok(mut writer) => writer.write_all(&request).is_ok(),
                Err(_) => false,
            };
            if !wrote {
                if let Ok(mut pending) = conn.pending.lock() {
                    pending.remove(&id);
                }
                self.retire_pipelined_conn(pl, &conn);
                if retried {
                    return Err(DrmError::BinderDied);
                }
                retried = true;
                RECONNECTS.incr();
                trace::annotate("reconnect", "stale_socket");
                continue;
            }
            FRAMES_SENT.incr();
            BYTES_SENT.add(request.len() as u64);
            match reply_rx.recv_timeout(self.read_timeout) {
                Ok(Ok(mut frame)) => {
                    FRAMES_RECEIVED.incr();
                    BYTES_RECEIVED.add(frame.len() as u64);
                    drop(roundtrip);
                    wideleak_telemetry::observe("binder.tcp.rtt", started.elapsed());
                    if let Some(kind) = fault {
                        frame = corrupt_body(kind, frame);
                    }
                    let _decode = trace::span("tcp.decode");
                    return match decode_frame(&frame) {
                        Ok((FrameBody::Reply(reply), _)) => reply,
                        Ok((
                            FrameBody::Call(_)
                            | FrameBody::CampaignCall(_)
                            | FrameBody::CampaignReply(_),
                            _,
                        )) => Err(DrmError::BadReply),
                        // Corruption damaged only this copy of the
                        // frame; the shared connection stays up.
                        Err(wire_err) => Err(DrmError::Wire(wire_err)),
                    };
                }
                Ok(Err(error)) => {
                    // The reader declared the connection broken before
                    // this reply arrived (EOF, IO error, desync).
                    self.retire_pipelined_conn(pl, &conn);
                    if retried {
                        return Err(error);
                    }
                    retried = true;
                    RECONNECTS.incr();
                    trace::annotate("reconnect", "eof_before_reply");
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Ok(mut pending) = conn.pending.lock() {
                        pending.remove(&id);
                    }
                    // A wedged server wedges every call on the shared
                    // connection; retire it so the next call
                    // reconnects instead of queueing behind it.
                    self.retire_pipelined_conn(pl, &conn);
                    return Err(DrmError::Timeout {
                        ms: u64::try_from(self.read_timeout.as_millis()).unwrap_or(u64::MAX),
                    });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.retire_pipelined_conn(pl, &conn);
                    return Err(DrmError::BinderDied);
                }
            }
        }
    }
}

impl Transport for TcpBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        transact_via(
            "binder.transact.tcp",
            self.injector.as_deref(),
            self.server.as_deref(),
            FaultStyle::Frame,
            call,
            |call, fault| match &self.pipeline {
                Some(pl) => self.run_pipelined(pl, call, fault),
                None => self.run_over_socket(call, fault),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;
    use wideleak_faults::{FaultPlan, Schedule};

    fn server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"net-test", &[1; 16])).boot(&device).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    #[test]
    fn loopback_round_trip() {
        let binder = TcpBinder::loopback(server()).build().unwrap();
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        let sid = binder
            .transact(DrmCall::OpenSession { nonce: [1; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_ok());
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_err());
    }

    #[test]
    fn connect_reaches_a_standalone_server() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let binder = TcpBinder::connect(srv.local_addr()).pool_size(2).build().unwrap();
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        assert_eq!(binder.pool_size(), 2);
    }

    #[test]
    fn concurrent_clients_share_the_pool() {
        let binder = Arc::new(TcpBinder::loopback(server()).pool_size(2).build().unwrap());
        let handles: Vec<_> = (0u8..8)
            .map(|i| {
                let b = Arc::clone(&binder);
                std::thread::spawn(move || {
                    b.transact(DrmCall::OpenSession { nonce: [i; 16] })
                        .unwrap()
                        .into_session_id()
                        .unwrap()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client got a distinct session");
    }

    #[test]
    fn pipelined_round_trip() {
        let binder = TcpBinder::loopback(server()).pipeline_depth(8).build().unwrap();
        assert_eq!(binder.pipeline_depth(), 8);
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        let sid = binder
            .transact(DrmCall::OpenSession { nonce: [1; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_ok());
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_err());
    }

    #[test]
    fn pipelined_concurrent_callers_share_one_connection() {
        let binder = Arc::new(TcpBinder::loopback(server()).pipeline_depth(4).build().unwrap());
        let handles: Vec<_> = (0u8..12)
            .map(|i| {
                let b = Arc::clone(&binder);
                std::thread::spawn(move || {
                    b.transact(DrmCall::OpenSession { nonce: [i; 16] })
                        .unwrap()
                        .into_session_id()
                        .unwrap()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12, "every caller got a distinct session");
    }

    #[test]
    fn pipelined_drop_fault_spares_the_shared_connection() {
        let plan = FaultPlan::builder()
            .binder_fault("open_session", FaultKind::Drop, Schedule::Once { at: 0 })
            .build();
        let binder = TcpBinder::loopback(server())
            .pipeline_depth(4)
            .fault_injector(Arc::new(FaultInjector::new(&plan, 9)))
            .build()
            .unwrap();
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok());
        assert_eq!(
            binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
            Err(DrmError::BinderDied)
        );
        // The shared connection survived the dropped call.
        assert!(binder.transact(DrmCall::OpenSession { nonce: [2; 16] }).is_ok());
    }

    #[test]
    fn pipelined_read_deadline_fires_on_a_stalled_server() {
        // A listener that accepts and then never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            // Hold the accepted connection open without ever replying;
            // a second accept never comes because the timeout path only
            // retires the dead connection — the *next* call reconnects.
            listener.accept().ok()
        });
        let binder = TcpBinder::connect(addr)
            .pipeline_depth(2)
            .read_timeout(Duration::from_millis(100))
            .build()
            .unwrap();
        let reply = binder.transact(DrmCall::IsProvisioned);
        assert_eq!(reply, Err(DrmError::Timeout { ms: 100 }));
        drop(binder);
        let _ = stall.join();
    }

    #[test]
    fn server_errors_round_trip_typed() {
        let binder = TcpBinder::loopback(server()).build().unwrap();
        let reply = binder.transact(DrmCall::CloseSession { session_id: 9999 });
        assert!(
            matches!(reply, Err(DrmError::Cdm(wideleak_cdm::CdmError::NoSuchSession { .. }))),
            "got {reply:?}"
        );
    }

    #[test]
    fn server_survives_client_churn() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        for _ in 0..3 {
            let binder = TcpBinder::connect(srv.local_addr()).pool_size(1).build().unwrap();
            assert!(binder
                .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
                .is_ok());
            drop(binder);
        }
    }

    #[test]
    fn drop_fault_severs_and_the_pool_reconnects() {
        let plan = FaultPlan::builder()
            .binder_fault("open_session", FaultKind::Drop, Schedule::Once { at: 0 })
            .build();
        let binder = TcpBinder::loopback(server())
            .pool_size(1)
            .fault_injector(Arc::new(FaultInjector::new(&plan, 9)))
            .build()
            .unwrap();
        // Prime the pool so the drop severs a *live* connection.
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok());
        assert_eq!(
            binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
            Err(DrmError::BinderDied)
        );
        // The rule fired once; the next call reconnects and succeeds.
        assert!(binder.transact(DrmCall::OpenSession { nonce: [2; 16] }).is_ok());
    }

    #[test]
    fn garble_fault_surfaces_as_a_typed_wire_error() {
        let plan = FaultPlan::builder()
            .binder_fault("get_provision_request", FaultKind::GarbleBody, Schedule::Once { at: 0 })
            .build();
        let binder = TcpBinder::loopback(server())
            .fault_injector(Arc::new(FaultInjector::new(&plan, 5)))
            .build()
            .unwrap();
        let reply = binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] });
        assert!(matches!(reply, Err(DrmError::Wire(_))), "got {reply:?}");
        // Recovery: the schedule is exhausted, the severed slot
        // reconnects, and the same call succeeds.
        assert!(binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] }).is_ok());
    }

    #[test]
    fn truncate_fault_maps_to_truncated_frames() {
        let plan = FaultPlan::builder()
            .binder_fault(
                "get_provision_request",
                FaultKind::TruncateBody { keep: 6 },
                Schedule::Once { at: 0 },
            )
            .build();
        let binder = TcpBinder::loopback(server())
            .fault_injector(Arc::new(FaultInjector::new(&plan, 5)))
            .build()
            .unwrap();
        let reply = binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] });
        assert!(matches!(reply, Err(DrmError::Wire(WireError::Truncated { .. }))), "got {reply:?}");
    }

    #[test]
    fn stale_pool_slot_heals_after_server_restart() {
        let first = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let addr = first.local_addr();
        let binder = TcpBinder::connect(addr).pool_size(1).build().unwrap();
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok());
        drop(first);
        // The pooled socket is now stale. Depending on timing the first
        // call may fail (reconnect has no listener yet) — but once a new
        // server listens on the same port, the pool must heal.
        let listener = TcpListener::bind(addr);
        let Ok(listener) = listener else {
            // The OS withheld the port; nothing left to assert.
            return;
        };
        drop(listener);
        let second_server = server();
        let Ok(_second) = TcpDrmServer::bind(&addr.to_string(), second_server) else {
            return;
        };
        let mut healed = false;
        for _ in 0..4 {
            if binder.transact(DrmCall::IsProvisioned).is_ok() {
                healed = true;
                break;
            }
        }
        assert!(healed, "pool reconnected to the restarted server");
    }

    #[test]
    fn error_on_one_call_does_not_kill_the_connection() {
        // A server with no plugins: IsSchemeSupported answers false,
        // a scheme-less OpenSession errors, and the connection keeps
        // serving afterwards.
        let binder = TcpBinder::loopback(MediaDrmServer::new()).build().unwrap();
        assert!(!binder
            .transact(DrmCall::IsSchemeSupported { uuid: [0; 16] })
            .unwrap()
            .into_bool()
            .unwrap());
        assert!(binder.transact(DrmCall::OpenSession { nonce: [1; 16] }).is_err());
        // The connection still serves after the error.
        assert!(binder.transact(DrmCall::IsSchemeSupported { uuid: [0; 16] }).is_ok());
    }

    #[test]
    fn tcp_telemetry_counts_frames_and_bytes() {
        wideleak_telemetry::enable();
        let binder = TcpBinder::loopback(server()).build().unwrap();
        binder.transact(DrmCall::IsProvisioned).unwrap().into_bool().unwrap();
        let snapshot = wideleak_telemetry::snapshot();
        for name in
            ["binder.tcp.frames.sent", "binder.tcp.frames.received", "binder.tcp.bytes.sent"]
        {
            assert!(
                snapshot.counters.iter().any(|(n, v)| n == name && *v > 0),
                "expected counter {name} in {:?}",
                snapshot.counters
            );
        }
        assert!(
            snapshot.histograms.iter().any(|(name, _)| name == "binder.tcp.rtt"),
            "rtt histogram exported"
        );
    }
}
