//! The TCP transport: a thread-per-connection Media DRM server and a
//! pooled client, speaking the [`wire`](crate::wire) frame format over
//! real sockets.
//!
//! [`TcpDrmServer`] is the `mediadrmserver` process model taken one step
//! further than [`ThreadedBinder`](crate::binder::ThreadedBinder): the
//! boundary is a loopback TCP connection, so every transaction is
//! serialized, framed, CRC-protected and parsed back — the paper's
//! interposition point made into an actual network seam. [`TcpBinder`]
//! is the client half: a bounded pool of connections with health-checked
//! reconnect, routed through the same
//! [`transact_via`](crate::binder) seam as the in-memory transports so
//! telemetry and fault injection compose identically.
//!
//! Fault realisation differs by design: in-memory transports corrupt
//! the typed reply payload, but here corruption faults damage the
//! *received frame bytes* before decoding, so they surface as typed
//! [`WireError`]s through [`DrmError::Wire`], and drop faults sever a
//! live pooled connection, so the reconnect machinery is what recovers.
//! The differential battery pins that all three transports still
//! produce byte-identical study reports.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wideleak_faults::{corrupt_body, FaultInjector, FaultKind};
use wideleak_telemetry::{trace, CounterHandle};

use crate::binder::{dispatch, transact_via, DrmCall, DrmReply, FaultStyle, Transport};
use crate::server::MediaDrmServer;
use crate::wire::{
    decode_frame, decode_frame_ext, encode_frame, encode_frame_with, frame_len, FrameBody,
    HEADER_LEN,
};
use crate::DrmError;

static FRAMES_SENT: CounterHandle = CounterHandle::new("binder.tcp.frames.sent");
static FRAMES_RECEIVED: CounterHandle = CounterHandle::new("binder.tcp.frames.received");
static BYTES_SENT: CounterHandle = CounterHandle::new("binder.tcp.bytes.sent");
static BYTES_RECEIVED: CounterHandle = CounterHandle::new("binder.tcp.bytes.received");
static RECONNECTS: CounterHandle = CounterHandle::new("binder.tcp.reconnects");
static SERVER_CONNECTIONS: CounterHandle = CounterHandle::new("netserver.connections");
static SERVER_FRAMES: CounterHandle = CounterHandle::new("netserver.frames");

/// How often blocked server reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Reads exactly `buf.len()` bytes, waking every [`POLL_INTERVAL`] to
/// check `shutdown`. Returns `Ok(false)` on a clean EOF *before any
/// byte arrived* (the peer closed between frames); EOF mid-frame is an
/// error. Partial reads across timeouts are tracked, so a slow peer
/// does not desync the stream.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "server shutdown"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one whole frame (header + payload + trailer) into a buffer.
/// Returns `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Result<Vec<u8>, crate::wire::WireError>>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(stream, &mut header, shutdown)? {
        return Ok(None);
    }
    let total = match frame_len(&header) {
        Ok(total) => total,
        // A bad header means the frame boundary is unknowable; the
        // caller must sever, but gets the typed error first.
        Err(e) => return Ok(Some(Err(e))),
    };
    let mut frame = vec![0u8; total];
    frame[..HEADER_LEN].copy_from_slice(&header);
    if !read_full(stream, &mut frame[HEADER_LEN..], shutdown)? {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        ));
    }
    Ok(Some(Ok(frame)))
}

/// A Media DRM server listening on a TCP socket, one handler thread per
/// connection. Binds on construction, serves until dropped.
pub struct TcpDrmServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    server: Arc<MediaDrmServer>,
}

impl TcpDrmServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(addr: &str, server: MediaDrmServer) -> std::io::Result<Self> {
        Self::bind_shared(addr, Arc::new(server))
    }

    /// Like [`Self::bind`], but sharing an already-`Arc`ed server — the
    /// loopback [`TcpBinder`] uses this to keep a handle for the
    /// clock-skew fault plane.
    pub fn bind_shared(addr: &str, server: Arc<MediaDrmServer>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let server = Arc::clone(&server);
            std::thread::Builder::new()
                .name("netdrmserver-accept".into())
                .spawn(move || accept_loop(&listener, &server, &shutdown))
                .expect("spawning the accept thread")
        };
        Ok(TcpDrmServer { addr, shutdown, accept_handle: Some(accept_handle), server })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served instance.
    #[must_use]
    pub fn server(&self) -> &Arc<MediaDrmServer> {
        &self.server
    }
}

impl Drop for TcpDrmServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; if that
        // fails the listener is already gone, which is fine too.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, server: &Arc<MediaDrmServer>, shutdown: &Arc<AtomicBool>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        SERVER_CONNECTIONS.incr();
        let server = Arc::clone(server);
        let shutdown = Arc::clone(shutdown);
        let handle = std::thread::Builder::new()
            .name("netdrmserver-conn".into())
            .spawn(move || serve_connection(stream, &server, &shutdown))
            .expect("spawning a connection handler");
        handlers.push(handle);
        // Reap finished handlers so a long-lived server with churning
        // clients does not accumulate joinable threads.
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One connection's serve loop: read a call frame, dispatch with panic
/// containment, write the reply frame. A malformed inbound frame gets a
/// typed error reply and then the connection closes, because a bad
/// header or CRC means the stream can no longer be trusted to be
/// frame-aligned.
fn serve_connection(mut stream: TcpStream, server: &Arc<MediaDrmServer>, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream, shutdown) {
            Ok(Some(Ok(frame))) => frame,
            Ok(Some(Err(wire_err))) => {
                let reply = encode_frame(&FrameBody::Reply(Err(DrmError::Wire(wire_err))));
                let _ = stream.write_all(&reply);
                return;
            }
            // Clean EOF, IO error, or shutdown: the connection is done.
            Ok(None) | Err(_) => return,
        };
        SERVER_FRAMES.incr();
        let reply = match decode_frame_ext(&frame) {
            // When the frame carries the caller's trace context, adopt
            // it around the dispatch so the server process's spans
            // stitch into the client's trace.
            Ok((FrameBody::Call(call), Some(ctx), _)) => {
                let _g = trace::span_with_parent("server.handle", ctx);
                dispatch(server, call)
            }
            Ok((FrameBody::Call(call), None, _)) => dispatch(server, call),
            // A reply frame arriving at the server is a protocol
            // violation; answer with the decode taxonomy's close cousin.
            Ok((FrameBody::Reply(_), _, _)) => Err(DrmError::BadReply),
            Err(wire_err) => {
                let reply = encode_frame(&FrameBody::Reply(Err(DrmError::Wire(wire_err))));
                let _ = stream.write_all(&reply);
                return;
            }
        };
        let encoded = encode_frame(&FrameBody::Reply(reply));
        if stream.write_all(&encoded).is_err() {
            return;
        }
    }
}

/// A pooled connection slot: `Some` holds a live socket, `None` marks a
/// slot whose connection died (or was never opened) — checking out a
/// `None` slot triggers a reconnect, which is the health check.
type ConnSlot = Option<TcpStream>;

/// Builds a [`TcpBinder`] — pool size, fault plane and target are
/// configured here.
pub struct TcpBinderBuilder {
    target: Target,
    pool_size: usize,
    injector: Option<Arc<FaultInjector>>,
}

enum Target {
    /// Connect to an external [`TcpDrmServer`] (or `wideleak serve`).
    Addr(SocketAddr),
    /// Own a loopback server for this binder's lifetime.
    Loopback(MediaDrmServer),
}

impl TcpBinderBuilder {
    /// Sets the connection-pool size (clamped to ≥ 1; default 4).
    #[must_use]
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = pool_size.max(1);
        self
    }

    /// Attaches a fault injector whose binder-plane rules apply to every
    /// transaction; corruption and drops are realised on real frames.
    #[must_use]
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Connects (lazily — sockets open on first use per pool slot).
    ///
    /// # Errors
    ///
    /// Returns the bind error when a loopback target cannot listen.
    pub fn build(self) -> std::io::Result<TcpBinder> {
        let (addr, server, local) = match self.target {
            Target::Addr(addr) => (addr, None, None),
            Target::Loopback(server) => {
                let server = Arc::new(server);
                let local = TcpDrmServer::bind_shared("127.0.0.1:0", Arc::clone(&server))?;
                (local.local_addr(), Some(server), Some(local))
            }
        };
        let (slot_tx, slot_rx) = crossbeam::channel::bounded::<ConnSlot>(self.pool_size);
        for _ in 0..self.pool_size {
            slot_tx.send(None).expect("pre-filling the connection pool");
        }
        Ok(TcpBinder {
            addr,
            pool_size: self.pool_size,
            slot_tx,
            slot_rx,
            injector: self.injector,
            server,
            _local: local,
        })
    }
}

/// The client half of the TCP transport: a bounded pool of loopback
/// connections multiplexing transactions to a [`TcpDrmServer`].
///
/// Pool behaviour: a transaction checks a slot out of a bounded channel
/// (blocking when all are in flight, which bounds concurrent sockets),
/// reconnects if the slot is dead, and returns the slot — live on
/// success, dead after any IO or frame error, because a failed stream
/// cannot be trusted to be frame-aligned. Reconnects are counted on
/// `binder.tcp.reconnects`.
pub struct TcpBinder {
    addr: SocketAddr,
    pool_size: usize,
    // Declared before `_local` so pooled client sockets close before
    // the owned server shuts down.
    slot_tx: crossbeam::channel::Sender<ConnSlot>,
    slot_rx: crossbeam::channel::Receiver<ConnSlot>,
    injector: Option<Arc<FaultInjector>>,
    /// Loopback handle onto the served instance so clock-skew faults can
    /// reach the CDM clock; `None` when connected to a remote server.
    server: Option<Arc<MediaDrmServer>>,
    _local: Option<TcpDrmServer>,
}

impl TcpBinder {
    /// Starts building a binder that owns its own loopback server.
    #[must_use]
    pub fn loopback(server: MediaDrmServer) -> TcpBinderBuilder {
        TcpBinderBuilder { target: Target::Loopback(server), pool_size: 4, injector: None }
    }

    /// Starts building a binder against an already-running server.
    #[must_use]
    pub fn connect(addr: SocketAddr) -> TcpBinderBuilder {
        TcpBinderBuilder { target: Target::Addr(addr), pool_size: 4, injector: None }
    }

    /// The server address transactions go to.
    #[must_use]
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Pool capacity (concurrent connections ceiling).
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Checks a slot out of the pool, reconnecting if it is dead.
    fn checkout(&self) -> Result<TcpStream, DrmError> {
        let slot = self.slot_rx.recv().map_err(|_| DrmError::BinderDied)?;
        match slot {
            Some(stream) => Ok(stream),
            None => {
                RECONNECTS.incr();
                match TcpStream::connect(self.addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        Ok(stream)
                    }
                    Err(_) => {
                        // Return the dead slot so the pool keeps its
                        // capacity; the next checkout retries.
                        self.checkin(None);
                        Err(DrmError::BinderDied)
                    }
                }
            }
        }
    }

    /// Returns a slot to the pool (dead slots keep the capacity).
    fn checkin(&self, slot: ConnSlot) {
        let _ = self.slot_tx.send(slot);
    }

    /// One framed round trip, with the transport's share of fault
    /// realisation: `Drop` severs the checked-out connection, and
    /// corruption kinds damage the received reply frame before decode.
    fn run_over_socket(
        &self,
        call: DrmCall,
        fault: Option<&FaultKind>,
    ) -> Result<DrmReply, DrmError> {
        // Capture the caller's trace context *before* opening phase
        // spans: the frame should carry the `drm.call` root so the
        // server stitches under it, not under a transient phase.
        let trace_ctx = trace::current();
        let mut stream = {
            // Queue-wait phase: time blocked on a free pool slot.
            let _checkout = trace::span("tcp.checkout");
            self.checkout()?
        };
        if matches!(fault, Some(FaultKind::Drop)) {
            // Sever: the socket closes, the slot is marked dead, and the
            // *next* transaction pays the reconnect.
            self.checkin(None);
            return Err(DrmError::BinderDied);
        }
        let request = {
            let _encode = trace::span("tcp.encode");
            encode_frame_with(&FrameBody::Call(call), trace_ctx.as_ref())
        };
        let started = std::time::Instant::now();
        let roundtrip = trace::span("tcp.roundtrip");
        if stream.write_all(&request).is_err() {
            // Health check: the pooled socket went stale (server
            // restarted, peer closed). One reconnect, one retry.
            RECONNECTS.incr();
            trace::annotate("reconnect", "stale_socket");
            stream = match TcpStream::connect(self.addr) {
                Ok(fresh) => {
                    let _ = fresh.set_nodelay(true);
                    fresh
                }
                Err(_) => {
                    self.checkin(None);
                    return Err(DrmError::BinderDied);
                }
            };
            if stream.write_all(&request).is_err() {
                self.checkin(None);
                return Err(DrmError::BinderDied);
            }
        }
        FRAMES_SENT.incr();
        BYTES_SENT.add(request.len() as u64);
        let shutdown = AtomicBool::new(false);
        let mut frame = match read_frame(&mut stream, &shutdown) {
            Ok(Some(Ok(frame))) => frame,
            Ok(Some(Err(wire_err))) => {
                self.checkin(None);
                return Err(DrmError::Wire(wire_err));
            }
            Ok(None) | Err(_) => {
                self.checkin(None);
                return Err(DrmError::BinderDied);
            }
        };
        FRAMES_RECEIVED.incr();
        BYTES_RECEIVED.add(frame.len() as u64);
        drop(roundtrip);
        wideleak_telemetry::observe("binder.tcp.rtt", started.elapsed());
        if let Some(kind) = fault {
            // Frame-level corruption: the damage lands on real received
            // bytes, and the codec's own checks turn it into a typed
            // error — nothing is faked downstream of the socket.
            frame = corrupt_body(kind, frame);
        }
        let _decode = trace::span("tcp.decode");
        match decode_frame(&frame) {
            Ok((FrameBody::Reply(reply), _)) => {
                self.checkin(Some(stream));
                reply
            }
            Ok((FrameBody::Call(_), _)) => {
                self.checkin(None);
                Err(DrmError::BadReply)
            }
            Err(wire_err) => {
                // The stream may be desynced; sever and let the retry
                // policy pay one reconnect.
                self.checkin(None);
                Err(DrmError::Wire(wire_err))
            }
        }
    }
}

impl Transport for TcpBinder {
    fn transact(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        transact_via(
            "binder.transact.tcp",
            self.injector.as_deref(),
            self.server.as_deref(),
            FaultStyle::Frame,
            call,
            |call, fault| self.run_over_socket(call, fault),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;
    use wideleak_faults::{FaultPlan, Schedule};

    fn server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"net-test", &[1; 16])).boot(&device).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    #[test]
    fn loopback_round_trip() {
        let binder = TcpBinder::loopback(server()).build().unwrap();
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        let sid = binder
            .transact(DrmCall::OpenSession { nonce: [1; 16] })
            .unwrap()
            .into_session_id()
            .unwrap();
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_ok());
        assert!(binder.transact(DrmCall::CloseSession { session_id: sid }).is_err());
    }

    #[test]
    fn connect_reaches_a_standalone_server() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let binder = TcpBinder::connect(srv.local_addr()).pool_size(2).build().unwrap();
        assert!(binder
            .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
            .unwrap()
            .into_bool()
            .unwrap());
        assert_eq!(binder.pool_size(), 2);
    }

    #[test]
    fn concurrent_clients_share_the_pool() {
        let binder = Arc::new(TcpBinder::loopback(server()).pool_size(2).build().unwrap());
        let handles: Vec<_> = (0u8..8)
            .map(|i| {
                let b = Arc::clone(&binder);
                std::thread::spawn(move || {
                    b.transact(DrmCall::OpenSession { nonce: [i; 16] })
                        .unwrap()
                        .into_session_id()
                        .unwrap()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client got a distinct session");
    }

    #[test]
    fn server_errors_round_trip_typed() {
        let binder = TcpBinder::loopback(server()).build().unwrap();
        let reply = binder.transact(DrmCall::CloseSession { session_id: 9999 });
        assert!(
            matches!(reply, Err(DrmError::Cdm(wideleak_cdm::CdmError::NoSuchSession { .. }))),
            "got {reply:?}"
        );
    }

    #[test]
    fn server_survives_client_churn() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        for _ in 0..3 {
            let binder = TcpBinder::connect(srv.local_addr()).pool_size(1).build().unwrap();
            assert!(binder
                .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
                .is_ok());
            drop(binder);
        }
    }

    #[test]
    fn drop_fault_severs_and_the_pool_reconnects() {
        let plan = FaultPlan::builder()
            .binder_fault("open_session", FaultKind::Drop, Schedule::Once { at: 0 })
            .build();
        let binder = TcpBinder::loopback(server())
            .pool_size(1)
            .fault_injector(Arc::new(FaultInjector::new(&plan, 9)))
            .build()
            .unwrap();
        // Prime the pool so the drop severs a *live* connection.
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok());
        assert_eq!(
            binder.transact(DrmCall::OpenSession { nonce: [1; 16] }),
            Err(DrmError::BinderDied)
        );
        // The rule fired once; the next call reconnects and succeeds.
        assert!(binder.transact(DrmCall::OpenSession { nonce: [2; 16] }).is_ok());
    }

    #[test]
    fn garble_fault_surfaces_as_a_typed_wire_error() {
        let plan = FaultPlan::builder()
            .binder_fault("get_provision_request", FaultKind::GarbleBody, Schedule::Once { at: 0 })
            .build();
        let binder = TcpBinder::loopback(server())
            .fault_injector(Arc::new(FaultInjector::new(&plan, 5)))
            .build()
            .unwrap();
        let reply = binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] });
        assert!(matches!(reply, Err(DrmError::Wire(_))), "got {reply:?}");
        // Recovery: the schedule is exhausted, the severed slot
        // reconnects, and the same call succeeds.
        assert!(binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] }).is_ok());
    }

    #[test]
    fn truncate_fault_maps_to_truncated_frames() {
        let plan = FaultPlan::builder()
            .binder_fault(
                "get_provision_request",
                FaultKind::TruncateBody { keep: 6 },
                Schedule::Once { at: 0 },
            )
            .build();
        let binder = TcpBinder::loopback(server())
            .fault_injector(Arc::new(FaultInjector::new(&plan, 5)))
            .build()
            .unwrap();
        let reply = binder.transact(DrmCall::GetProvisionRequest { nonce: [7; 16] });
        assert!(
            matches!(reply, Err(DrmError::Wire(crate::wire::WireError::Truncated { .. }))),
            "got {reply:?}"
        );
    }

    #[test]
    fn stale_pool_slot_heals_after_server_restart() {
        let first = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let addr = first.local_addr();
        let binder = TcpBinder::connect(addr).pool_size(1).build().unwrap();
        assert!(binder.transact(DrmCall::IsProvisioned).is_ok());
        drop(first);
        // The pooled socket is now stale. Depending on timing the first
        // call may fail (reconnect has no listener yet) — but once a new
        // server listens on the same port, the pool must heal.
        let listener = TcpListener::bind(addr);
        let Ok(listener) = listener else {
            // The OS withheld the port; nothing left to assert.
            return;
        };
        drop(listener);
        let second_server = server();
        let Ok(_second) = TcpDrmServer::bind(&addr.to_string(), second_server) else {
            return;
        };
        let mut healed = false;
        for _ in 0..4 {
            if binder.transact(DrmCall::IsProvisioned).is_ok() {
                healed = true;
                break;
            }
        }
        assert!(healed, "pool reconnected to the restarted server");
    }

    #[test]
    fn error_on_one_call_does_not_kill_the_connection() {
        // A server with no plugins: IsSchemeSupported answers false,
        // a scheme-less OpenSession errors, and the connection keeps
        // serving afterwards.
        let binder = TcpBinder::loopback(MediaDrmServer::new()).build().unwrap();
        assert!(!binder
            .transact(DrmCall::IsSchemeSupported { uuid: [0; 16] })
            .unwrap()
            .into_bool()
            .unwrap());
        assert!(binder.transact(DrmCall::OpenSession { nonce: [1; 16] }).is_err());
        // The connection still serves after the error.
        assert!(binder.transact(DrmCall::IsSchemeSupported { uuid: [0; 16] }).is_ok());
    }

    #[test]
    fn tcp_telemetry_counts_frames_and_bytes() {
        wideleak_telemetry::enable();
        let binder = TcpBinder::loopback(server()).build().unwrap();
        binder.transact(DrmCall::IsProvisioned).unwrap().into_bool().unwrap();
        let snapshot = wideleak_telemetry::snapshot();
        for name in
            ["binder.tcp.frames.sent", "binder.tcp.frames.received", "binder.tcp.bytes.sent"]
        {
            assert!(
                snapshot.counters.iter().any(|(n, v)| n == name && *v > 0),
                "expected counter {name} in {:?}",
                snapshot.counters
            );
        }
        assert!(
            snapshot.histograms.iter().any(|(name, _)| name == "binder.tcp.rtt"),
            "rtt histogram exported"
        );
    }
}
