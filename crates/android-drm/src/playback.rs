//! The encrypted-playback driver: Figure 1 of the paper as executable
//! code, with an ordered trace of every protocol step.

use std::sync::Arc;

use wideleak_bmff::fragment::{InitSegment, MediaSegment};
use wideleak_bmff::types::KeyId;

use crate::binder::Transport;
use crate::mediacodec::{Frame, MediaCodec};
use crate::mediacrypto::MediaCrypto;
use crate::mediadrm::MediaDrm;
use crate::DrmError;

/// One step of the Figure-1 sequence, in the order the paper draws them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaybackStep {
    /// `MediaDrm(UUID)` construction.
    MediaDrmNew,
    /// `Initialize()` of the CDM plugin.
    Initialize,
    /// `openSession()` from the app.
    OpenSessionApp,
    /// `openSession()` relayed to the CDM.
    OpenSessionCdm,
    /// `getKeyRequest()` from the app.
    GetKeyRequestApp,
    /// `getKeyRequest()` relayed to the CDM, yielding the opaque request.
    GetKeyRequestCdm,
    /// The app sends `Get License` to the License Server.
    GetLicense,
    /// The License Server answers with the license.
    License,
    /// `provideKeyResponse()` from the app.
    ProvideKeyResponseApp,
    /// `provideKeyResponse()` relayed to the CDM.
    ProvideKeyResponseCdm,
    /// The app fetches media from the CDN.
    GetMedia,
    /// The CDN answers with media segments.
    Media,
    /// `queueSecureInputBuffer()` into the codec.
    QueueSecureInputBuffer,
    /// `Decrypt()` inside the CDM.
    Decrypt,
}

/// The expected Figure-1 order (what the sequence diagram shows).
pub const FIGURE_1_SEQUENCE: [PlaybackStep; 14] = [
    PlaybackStep::MediaDrmNew,
    PlaybackStep::Initialize,
    PlaybackStep::OpenSessionApp,
    PlaybackStep::OpenSessionCdm,
    PlaybackStep::GetKeyRequestApp,
    PlaybackStep::GetKeyRequestCdm,
    PlaybackStep::GetLicense,
    PlaybackStep::License,
    PlaybackStep::ProvideKeyResponseApp,
    PlaybackStep::ProvideKeyResponseCdm,
    PlaybackStep::GetMedia,
    PlaybackStep::Media,
    PlaybackStep::QueueSecureInputBuffer,
    PlaybackStep::Decrypt,
];

/// The ordered record of one playback run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlaybackTrace {
    steps: Vec<PlaybackStep>,
}

impl PlaybackTrace {
    fn push(&mut self, step: PlaybackStep) {
        self.steps.push(step);
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[PlaybackStep] {
        &self.steps
    }

    /// Whether the trace matches the Figure-1 sequence exactly.
    pub fn matches_figure_1(&self) -> bool {
        self.steps == FIGURE_1_SEQUENCE
    }
}

/// The media bundle a playback run consumes (what the CDN delivered).
#[derive(Debug, Clone)]
pub struct MediaBundle {
    /// Parsed init segment of the selected representation.
    pub init: InitSegment,
    /// Parsed media segments.
    pub segments: Vec<MediaSegment>,
}

/// Runs the full Figure-1 sequence for one protected asset.
///
/// The caller supplies the two network interactions as closures (the OTT
/// app owns its transport, pinning included):
///
/// - `fetch_license(request) -> response` talks to the License Server;
/// - `fetch_media() -> MediaBundle` talks to the CDN.
///
/// Returns the decrypted frames and the recorded [`PlaybackTrace`].
///
/// # Errors
///
/// Propagates every framework, CDM and network failure; the trace
/// accumulated so far is lost (a failed playback is diagnosed through the
/// error, traces are for successful runs).
pub fn play_protected_content(
    binder: Arc<dyn Transport>,
    uuid: [u8; 16],
    content_id: &str,
    key_ids: &[KeyId],
    nonce: [u8; 16],
    mut fetch_license: impl FnMut(&[u8]) -> Result<Vec<u8>, DrmError>,
    mut fetch_media: impl FnMut() -> Result<MediaBundle, DrmError>,
) -> Result<(Vec<Frame>, PlaybackTrace), DrmError> {
    let mut trace = PlaybackTrace::default();

    let drm = MediaDrm::new(binder, uuid)?;
    trace.push(PlaybackStep::MediaDrmNew);
    trace.push(PlaybackStep::Initialize);

    trace.push(PlaybackStep::OpenSessionApp);
    let session_id = drm.open_session(nonce)?;
    trace.push(PlaybackStep::OpenSessionCdm);

    // From here the session is live in the CDM: any failure must still
    // close it, or sustained faulted playbacks leak session-table slots
    // until the `SessionLimit` cap starves healthy traffic.
    let result = (|| {
        trace.push(PlaybackStep::GetKeyRequestApp);
        let request = drm.get_key_request(session_id, content_id, key_ids)?;
        trace.push(PlaybackStep::GetKeyRequestCdm);

        trace.push(PlaybackStep::GetLicense);
        let response = fetch_license(&request)?;
        trace.push(PlaybackStep::License);

        trace.push(PlaybackStep::ProvideKeyResponseApp);
        drm.provide_key_response(session_id, response)?;
        trace.push(PlaybackStep::ProvideKeyResponseCdm);

        trace.push(PlaybackStep::GetMedia);
        let media = fetch_media()?;
        trace.push(PlaybackStep::Media);

        let crypto = MediaCrypto::new(&drm, session_id);
        let codec = MediaCodec::configure(&crypto);
        let mut frames = Vec::new();
        trace.push(PlaybackStep::QueueSecureInputBuffer);
        for segment in &media.segments {
            frames.extend(codec.queue_secure_segment(&media.init, segment)?);
        }
        trace.push(PlaybackStep::Decrypt);
        Ok(frames)
    })();

    match result {
        Ok(frames) => {
            drm.close_session(session_id)?;
            Ok((frames, trace))
        }
        Err(e) => {
            // Best-effort close on the error path: the playback error is
            // the one worth reporting, not a secondary close failure.
            let _ = drm.close_session(session_id);
            Err(e)
        }
    }
}

/// One chunk the adaptive fetcher hands the driver: which
/// representation epoch it belongs to, the key ids that epoch needs,
/// and the media itself.
#[derive(Debug, Clone)]
pub struct AdaptiveChunk {
    /// Representation id the rate controller chose for this chunk.
    pub rep_id: String,
    /// Key ids to license for this representation (empty = open
    /// request, i.e. metadata key ids are hidden).
    pub key_ids: Vec<KeyId>,
    /// Init segment of the chosen representation.
    pub init: InitSegment,
    /// The media segment to decode.
    pub segment: MediaSegment,
}

/// What the adaptive driver did at the DRM layer.
#[derive(Debug, Clone, Default)]
pub struct AdaptivePlayback {
    /// Decrypted frames across every chunk, in order.
    pub frames: Vec<Frame>,
    /// Licenses fetched (one per representation epoch).
    pub license_fetches: u64,
    /// Representation id of each chunk, in order.
    pub rep_sequence: Vec<String>,
}

/// Drives an adaptive playback session: a sequence of chunks whose
/// representation may change under the rate controller's feet.
///
/// Mirrors how ExoPlayer handles key rotation — a representation switch
/// whose keys are not already loaded closes the current `MediaDrm`
/// session and opens a fresh one, re-running `getKeyRequest → license →
/// provideKeyResponse` for the new tier's keys. That per-epoch license
/// round-trip is the churn the adaptation study measures. Chunks with
/// empty `key_ids` send one *open* request whose license covers every
/// tier, so the session is reused across switches (no churn) — the
/// hidden-key-id behaviour some apps exhibit.
///
/// - `next_chunk(i)` yields chunk `i` (the fetcher applies the rate
///   decision and the simulated transfer there);
/// - `fetch_license(request)` talks to the License Server;
/// - `next_nonce()` mints the session nonce for each epoch.
///
/// # Errors
///
/// Propagates every framework, CDM and network failure; the live
/// session is closed on every path.
pub fn play_adaptive_content(
    binder: Arc<dyn Transport>,
    uuid: [u8; 16],
    content_id: &str,
    chunk_count: usize,
    mut next_chunk: impl FnMut(usize) -> Result<AdaptiveChunk, DrmError>,
    mut fetch_license: impl FnMut(&[u8]) -> Result<Vec<u8>, DrmError>,
    mut next_nonce: impl FnMut() -> [u8; 16],
) -> Result<AdaptivePlayback, DrmError> {
    let drm = MediaDrm::new(binder, uuid)?;
    let mut out = AdaptivePlayback::default();
    // (session, license scope): the scope is the rep id for narrow
    // per-tier requests, or "" for an open request covering every tier.
    let mut epoch: Option<(u32, String)> = None;

    let result = (|| {
        for i in 0..chunk_count {
            let chunk = next_chunk(i)?;
            let scope = if chunk.key_ids.is_empty() { String::new() } else { chunk.rep_id.clone() };
            let rotate = epoch.as_ref().is_none_or(|(_, loaded)| *loaded != scope);
            if rotate {
                if let Some((old, _)) = epoch.take() {
                    drm.close_session(old)?;
                }
                let session = drm.open_session(next_nonce())?;
                epoch = Some((session, scope));
                let request = drm.get_key_request(session, content_id, &chunk.key_ids)?;
                let response = fetch_license(&request)?;
                drm.provide_key_response(session, response)?;
                out.license_fetches += 1;
            }
            let (session, _) = epoch.as_ref().expect("epoch opened above");
            let crypto = MediaCrypto::new(&drm, *session);
            let codec = MediaCodec::configure(&crypto);
            out.frames.extend(codec.queue_secure_segment(&chunk.init, &chunk.segment)?);
            out.rep_sequence.push(chunk.rep_id.clone());
        }
        Ok(())
    })();

    match result {
        Ok(()) => {
            if let Some((session, _)) = epoch {
                drm.close_session(session)?;
            }
            Ok(out)
        }
        Err(e) => {
            if let Some((session, _)) = epoch {
                // Best-effort close: the playback error is the one worth
                // reporting, not a secondary close failure.
                let _ = drm.close_session(session);
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_sequence_is_complete_and_ordered() {
        // The constant itself is the figure; pin its shape.
        assert_eq!(FIGURE_1_SEQUENCE.len(), 14);
        assert_eq!(FIGURE_1_SEQUENCE[0], PlaybackStep::MediaDrmNew);
        assert_eq!(FIGURE_1_SEQUENCE[13], PlaybackStep::Decrypt);
        // License fetch happens strictly after the key request and before
        // provideKeyResponse.
        let pos = |s: PlaybackStep| FIGURE_1_SEQUENCE.iter().position(|&x| x == s).unwrap();
        assert!(pos(PlaybackStep::GetKeyRequestCdm) < pos(PlaybackStep::GetLicense));
        assert!(pos(PlaybackStep::License) < pos(PlaybackStep::ProvideKeyResponseApp));
        assert!(pos(PlaybackStep::GetMedia) < pos(PlaybackStep::QueueSecureInputBuffer));
    }

    #[test]
    fn empty_trace_does_not_match() {
        assert!(!PlaybackTrace::default().matches_figure_1());
    }
}
