//! The readiness-driven reactor behind [`TcpDrmServer`]: a few event
//! loops multiplexing thousands of non-blocking connections.
//!
//! The thread-per-connection server (PR 5) capped concurrent simulated
//! devices at thread-pool size and spent a stack per idle socket. This
//! module replaces it with the event-driven shape the ROADMAP calls
//! for, hand-rolled over non-blocking `std` sockets so the workspace
//! stays vendor-light and `#![forbid(unsafe_code)]`-clean:
//!
//! - an **accept thread** hands incoming connections round-robin to the
//!   event loops (non-blocking + nodelay already set);
//! - each **event loop** owns a slab of connections, each with a read
//!   buffer running a frame-reassembly state machine, a bounded
//!   outbound queue, and an in-flight dispatch count. A sweep reads
//!   until `WouldBlock`, parses complete frames, hands calls to the
//!   dispatch pool, drains finished replies into outbound queues, and
//!   flushes writes until `WouldBlock`;
//! - a **dispatch worker pool** runs the actual
//!   [`dispatch`](crate::binder) (panic-contained, trace-stitched) so a
//!   slow CDM call never stalls the loops' IO.
//!
//! **Pipelining:** a connection may have many calls in flight at once.
//! Each call frame can carry a wire-v3 request id
//! ([`FLAG_REQUEST_ID`](crate::wire::FLAG_REQUEST_ID)); the reply frame
//! echoes it, so replies may complete out of order and the client
//! correlates them by id. Calls without an id still work — their
//! replies simply carry no id (and a client that sends them one at a
//! time, like the pooled [`TcpBinder`](crate::netserver::TcpBinder) in
//! its default mode, needs no correlation).
//!
//! **Backpressure:** per-connection in-flight dispatches and queued
//! outbound bytes are both bounded ([`ReactorConfig`]); at either
//! limit the loop simply stops parsing (and reading) that connection
//! until replies drain, so one greedy or stalled peer cannot balloon
//! server memory.
//!
//! **Observability:** `netserver.connections` counts accepts (as
//! before), the `netserver.connections.active` gauge tracks live
//! connections (decremented on close — the thing the increment-only
//! counter could never show), `reactor.loop_lag` histograms each busy
//! sweep's duration, and `reactor.dispatch.queue_depth` gauges the
//! dispatch backlog.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use wideleak_telemetry::{trace, CounterHandle, TraceContext};

use crate::binder::{dispatch, DrmCall};
use crate::campaign::{CampaignCall, CampaignError, CampaignHandler};
use crate::server::MediaDrmServer;
use crate::wire::{decode_frame_full, encode_frame_full, frame_len, FrameBody, HEADER_LEN};
use crate::DrmError;

pub(crate) static SERVER_CONNECTIONS: CounterHandle = CounterHandle::new("netserver.connections");
pub(crate) static SERVER_FRAMES: CounterHandle = CounterHandle::new("netserver.frames");

/// How long an idle event loop parks before re-sweeping when it has
/// live connections. Short enough that a lone blocking caller sees
/// millisecond-class latency even when the yield window has lapsed.
const IDLE_WAIT_BUSY: Duration = Duration::from_millis(1);

/// The park interval with zero connections (and the ceiling on how
/// long shutdown can take to be noticed).
const IDLE_WAIT_EMPTY: Duration = Duration::from_millis(5);

/// How many empty sweeps an event loop yields through before it starts
/// parking. Yielding keeps single-caller round trips at
/// thread-per-connection latency on a busy box; parking keeps an idle
/// server cheap.
const YIELD_STREAK: u32 = 256;

/// Tuning for the reactor: how many threads it runs and where each
/// connection's backpressure limits sit.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Event-loop threads multiplexing the connections (min 1).
    pub event_loops: usize,
    /// Dispatch worker threads running CDM calls (min 1).
    pub dispatch_workers: usize,
    /// Max dispatches in flight per connection before the loop stops
    /// parsing new calls from it (min 1).
    pub max_inflight_per_conn: usize,
    /// Max bytes queued outbound per connection before the loop stops
    /// parsing new calls from it (min one frame).
    pub outbound_queue_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        ReactorConfig {
            event_loops: 1,
            dispatch_workers: cores.max(2),
            max_inflight_per_conn: 32,
            outbound_queue_bytes: 1024 * 1024,
        }
    }
}

/// A Media DRM server listening on a TCP socket, served by an
/// event-driven reactor. Binds on construction, serves until dropped.
///
/// The public surface is unchanged from the thread-per-connection
/// server it replaces ([`bind`](Self::bind), [`bind_shared`](Self::bind_shared),
/// [`local_addr`](Self::local_addr), [`server`](Self::server)); the
/// concurrency model underneath is what moved.
pub struct TcpDrmServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicU64>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    loop_handles: Vec<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    server: Arc<MediaDrmServer>,
}

impl TcpDrmServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(addr: &str, server: MediaDrmServer) -> std::io::Result<Self> {
        Self::bind_shared(addr, Arc::new(server))
    }

    /// Like [`Self::bind`], but sharing an already-`Arc`ed server — the
    /// loopback [`TcpBinder`](crate::netserver::TcpBinder) uses this to
    /// keep a handle for the clock-skew fault plane.
    pub fn bind_shared(addr: &str, server: Arc<MediaDrmServer>) -> std::io::Result<Self> {
        Self::bind_with(addr, server, ReactorConfig::default())
    }

    /// Binds with explicit reactor tuning.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind_with(
        addr: &str,
        server: Arc<MediaDrmServer>,
        config: ReactorConfig,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, server, config, None)
    }

    /// Binds a *campaign worker* endpoint: in addition to DRM calls,
    /// the server answers campaign control frames by delegating to
    /// `handler` (on the dispatch pool, so a long-running shard never
    /// stalls the IO loops). A server bound without a handler refuses
    /// campaign frames with a typed
    /// [`CampaignError::Protocol`](crate::campaign::CampaignError) reply.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind_campaign(
        addr: &str,
        server: Arc<MediaDrmServer>,
        config: ReactorConfig,
        handler: Arc<dyn CampaignHandler>,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, server, config, Some(handler))
    }

    fn bind_inner(
        addr: &str,
        server: Arc<MediaDrmServer>,
        config: ReactorConfig,
        campaign: Option<Arc<dyn CampaignHandler>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicU64::new(0));
        let event_loops = config.event_loops.max(1);
        let dispatch_workers = config.dispatch_workers.max(1);

        let (jobs_tx, jobs_rx) = crossbeam::channel::unbounded::<Job>();
        let mut conn_txs = Vec::with_capacity(event_loops);
        let mut loop_handles = Vec::with_capacity(event_loops);
        for i in 0..event_loops {
            let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
            conn_txs.push(conn_tx);
            let jobs_tx = jobs_tx.clone();
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("netdrm-reactor-{i}"))
                    .spawn(move || event_loop(&conn_rx, &jobs_tx, &config, &shutdown, &active))
                    .expect("spawning a reactor event loop"),
            );
        }
        // The loops own the only job senders now, so the workers'
        // receive loop ends exactly when the last loop exits.
        drop(jobs_tx);

        let mut worker_handles = Vec::with_capacity(dispatch_workers);
        for i in 0..dispatch_workers {
            let jobs_rx = jobs_rx.clone();
            let server = Arc::clone(&server);
            let campaign = campaign.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("netdrm-dispatch-{i}"))
                    .spawn(move || worker_loop(&jobs_rx, &server, campaign.as_deref()))
                    .expect("spawning a dispatch worker"),
            );
        }

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("netdrmserver-accept".into())
                .spawn(move || accept_loop(&listener, &conn_txs, &shutdown))
                .expect("spawning the accept thread")
        };

        Ok(TcpDrmServer {
            addr,
            shutdown,
            active,
            accept_handle: Some(accept_handle),
            loop_handles,
            worker_handles,
            server,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served instance.
    #[must_use]
    pub fn server(&self) -> &Arc<MediaDrmServer> {
        &self.server
    }

    /// Connections currently registered with the event loops. This is
    /// the per-server truth behind the global
    /// `netserver.connections.active` gauge (which aggregates every
    /// server in the process).
    #[must_use]
    pub fn active_connections(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }
}

impl Drop for TcpDrmServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; if that
        // fails the listener is already gone, which is fine too.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.loop_handles.drain(..) {
            let _ = handle.join();
        }
        // The loops dropped their job senders; the workers drain what
        // is queued and exit.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One parsed call on its way to the dispatch pool.
struct Job {
    slot: usize,
    generation: u64,
    work: Work,
    request_id: Option<u64>,
    done: mpsc::Sender<Completion>,
}

/// What a dispatch worker runs: a DRM transaction through the server
/// router, or a campaign transaction through the registered handler.
enum Work {
    Drm { call: DrmCall, ctx: Option<TraceContext> },
    Campaign(CampaignCall),
}

/// A finished dispatch on its way back to the owning event loop.
struct Completion {
    slot: usize,
    generation: u64,
    frame: Vec<u8>,
}

/// One connection's state in an event loop's slab.
struct Conn {
    stream: TcpStream,
    /// Distinguishes this connection from earlier tenants of the same
    /// slab slot, so a completion for a closed connection is dropped
    /// instead of delivered to its successor.
    generation: u64,
    /// Unparsed inbound bytes (the frame-reassembly buffer).
    rbuf: Vec<u8>,
    /// Encoded reply frames waiting for the socket to accept them.
    wqueue: VecDeque<Vec<u8>>,
    /// How far into `wqueue.front()` the socket has accepted.
    woffset: usize,
    wqueue_bytes: usize,
    /// Calls handed to the dispatch pool and not yet completed.
    inflight: usize,
    /// The connection is done reading (EOF or protocol error); it
    /// closes once every queued reply is flushed and every in-flight
    /// dispatch has completed.
    closing: bool,
}

fn accept_loop(
    listener: &TcpListener,
    conn_txs: &[mpsc::Sender<TcpStream>],
    shutdown: &AtomicBool,
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        SERVER_CONNECTIONS.incr();
        if conn_txs[next % conn_txs.len()].send(stream).is_err() {
            break;
        }
        next = next.wrapping_add(1);
    }
}

fn worker_loop(
    jobs: &crossbeam::channel::Receiver<Job>,
    server: &Arc<MediaDrmServer>,
    campaign: Option<&dyn CampaignHandler>,
) {
    while let Ok(job) = jobs.recv() {
        let frame = match job.work {
            Work::Drm { call, ctx } => {
                // When the frame carried the caller's trace context,
                // adopt it around the dispatch so this process's spans
                // stitch into the client's trace.
                let reply = if let Some(ctx) = ctx {
                    let _g = trace::span_with_parent("server.handle", ctx);
                    dispatch(server, call)
                } else {
                    dispatch(server, call)
                };
                encode_frame_full(&FrameBody::Reply(reply), None, job.request_id)
            }
            Work::Campaign(call) => {
                let reply = match campaign {
                    Some(handler) => handler.handle(call),
                    None => Err(CampaignError::Protocol {
                        what: "this endpoint serves no campaigns".into(),
                    }),
                };
                encode_frame_full(&FrameBody::CampaignReply(reply), None, job.request_id)
            }
        };
        // A send failure means the owning loop is gone (shutdown); the
        // reply has nowhere to go.
        let _ = job.done.send(Completion { slot: job.slot, generation: job.generation, frame });
    }
}

fn bump_active(active: &AtomicU64, opened: bool) {
    let now = if opened {
        active.fetch_add(1, Ordering::AcqRel) + 1
    } else {
        active.fetch_sub(1, Ordering::AcqRel) - 1
    };
    wideleak_telemetry::set_gauge("netserver.connections.active", now);
}

fn event_loop(
    conn_rx: &mpsc::Receiver<TcpStream>,
    jobs: &crossbeam::channel::Sender<Job>,
    config: &ReactorConfig,
    shutdown: &AtomicBool,
    active: &AtomicU64,
) {
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut generation = 0u64;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut idle_streak = 0u32;

    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let tick = Instant::now();
        let mut work = 0usize;

        // Register connections the accept thread handed over.
        while let Ok(stream) = conn_rx.try_recv() {
            generation += 1;
            let conn = Conn {
                stream,
                generation,
                rbuf: Vec::new(),
                wqueue: VecDeque::new(),
                woffset: 0,
                wqueue_bytes: 0,
                inflight: 0,
                closing: false,
            };
            let slot = free.pop().unwrap_or_else(|| {
                conns.push(None);
                conns.len() - 1
            });
            conns[slot] = Some(conn);
            live += 1;
            bump_active(active, true);
            work += 1;
        }

        // Drain finished dispatches into their connections' queues.
        while let Ok(done) = done_rx.try_recv() {
            apply_completion(&mut conns, &done);
            work += 1;
        }

        // IO sweep.
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else { continue };
            let (did, dead) = sweep_conn(conn, slot, jobs, &done_tx, config, &mut scratch);
            work += did;
            if dead || (conn.closing && conn.wqueue.is_empty() && conn.inflight == 0) {
                *entry = None;
                free.push(slot);
                live -= 1;
                bump_active(active, false);
                work += 1;
            }
        }

        if work > 0 {
            idle_streak = 0;
            wideleak_telemetry::observe("reactor.loop_lag", tick.elapsed());
            wideleak_telemetry::set_gauge("reactor.dispatch.queue_depth", jobs.len() as u64);
            continue;
        }
        idle_streak = idle_streak.saturating_add(1);
        if idle_streak < YIELD_STREAK && live > 0 {
            // Recently busy: yield instead of parking so a lone
            // blocking caller keeps thread-per-connection latency.
            std::thread::yield_now();
            continue;
        }
        let wait = if live == 0 { IDLE_WAIT_EMPTY } else { IDLE_WAIT_BUSY };
        match done_rx.recv_timeout(wait) {
            Ok(done) => apply_completion(&mut conns, &done),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => std::thread::sleep(wait),
        }
    }

    // Account the connections this loop still held at shutdown.
    for conn in conns.into_iter().flatten() {
        drop(conn);
        bump_active(active, false);
    }
}

fn apply_completion(conns: &mut [Option<Conn>], done: &Completion) {
    if let Some(conn) = conns.get_mut(done.slot).and_then(Option::as_mut) {
        if conn.generation == done.generation {
            conn.inflight -= 1;
            conn.wqueue_bytes += done.frame.len();
            conn.wqueue.push_back(done.frame.clone());
        }
    }
}

/// Whether the connection may grow its workload, or must drain first.
fn under_limits(conn: &Conn, config: &ReactorConfig) -> bool {
    conn.inflight < config.max_inflight_per_conn.max(1)
        && conn.wqueue_bytes < config.outbound_queue_bytes
}

fn push_reply(conn: &mut Conn, frame: Vec<u8>) {
    conn.wqueue_bytes += frame.len();
    conn.wqueue.push_back(frame);
}

/// One connection's share of a sweep: read, parse, dispatch, flush.
/// Returns `(events_processed, fatally_dead)`.
fn sweep_conn(
    conn: &mut Conn,
    slot: usize,
    jobs: &crossbeam::channel::Sender<Job>,
    done_tx: &mpsc::Sender<Completion>,
    config: &ReactorConfig,
    scratch: &mut [u8],
) -> (usize, bool) {
    let mut work = 0usize;

    // Read until WouldBlock — but only while under the backpressure
    // limits: a connection at its in-flight or outbound cap is left on
    // the socket until it drains, which is what bounds its memory.
    while !conn.closing && under_limits(conn, config) {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                work += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (work, true),
        }
    }

    // Parse complete frames off the reassembly buffer.
    while under_limits(conn, config) && conn.rbuf.len() >= HEADER_LEN {
        let total = match frame_len(&conn.rbuf[..HEADER_LEN]) {
            Ok(total) => total,
            Err(e) => {
                // A bad header means the frame boundary is unknowable:
                // send the typed error and close once it flushes.
                push_reply(
                    conn,
                    encode_frame_full(&FrameBody::Reply(Err(DrmError::Wire(e))), None, None),
                );
                conn.closing = true;
                conn.rbuf.clear();
                work += 1;
                break;
            }
        };
        if conn.rbuf.len() < total {
            break;
        }
        let frame: Vec<u8> = conn.rbuf.drain(..total).collect();
        SERVER_FRAMES.incr();
        work += 1;
        match decode_frame_full(&frame) {
            Ok((FrameBody::Call(call), meta, _)) => {
                conn.inflight += 1;
                let job = Job {
                    slot,
                    generation: conn.generation,
                    work: Work::Drm { call, ctx: meta.ctx },
                    request_id: meta.request_id,
                    done: done_tx.clone(),
                };
                if jobs.send(job).is_err() {
                    // Shutdown already tore the worker pool down.
                    return (work, true);
                }
            }
            Ok((FrameBody::CampaignCall(call), meta, _)) => {
                conn.inflight += 1;
                let job = Job {
                    slot,
                    generation: conn.generation,
                    work: Work::Campaign(call),
                    request_id: meta.request_id,
                    done: done_tx.clone(),
                };
                if jobs.send(job).is_err() {
                    return (work, true);
                }
            }
            Ok((FrameBody::Reply(_), meta, _)) => {
                // A reply frame arriving at the server is a protocol
                // violation; answer with the taxonomy's close cousin
                // and keep serving (the stream is still aligned).
                push_reply(
                    conn,
                    encode_frame_full(
                        &FrameBody::Reply(Err(DrmError::BadReply)),
                        None,
                        meta.request_id,
                    ),
                );
            }
            Ok((FrameBody::CampaignReply(_), meta, _)) => {
                push_reply(
                    conn,
                    encode_frame_full(
                        &FrameBody::CampaignReply(Err(CampaignError::Protocol {
                            what: "campaign reply frame at server".into(),
                        })),
                        None,
                        meta.request_id,
                    ),
                );
            }
            Err(e) => {
                push_reply(
                    conn,
                    encode_frame_full(&FrameBody::Reply(Err(DrmError::Wire(e))), None, None),
                );
                conn.closing = true;
                conn.rbuf.clear();
                break;
            }
        }
    }

    // Flush queued replies until WouldBlock.
    while let Some(front) = conn.wqueue.front() {
        match conn.stream.write(&front[conn.woffset..]) {
            Ok(0) => return (work, true),
            Ok(n) => {
                conn.woffset += n;
                work += 1;
                if conn.woffset == front.len() {
                    conn.wqueue_bytes -= front.len();
                    conn.woffset = 0;
                    conn.wqueue.pop_front();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (work, true),
        }
    }

    (work, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::DrmReply;
    use crate::wire::{decode_frame, encode_frame, WireError};
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::cdm::Cdm;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;

    fn server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"reactor-test", &[1; 16])).boot(&device).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    /// Reads one whole frame from a blocking client socket.
    fn read_reply_frame(stream: &mut TcpStream) -> Vec<u8> {
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header).unwrap();
        let total = frame_len(&header).unwrap();
        let mut frame = vec![0u8; total];
        frame[..HEADER_LEN].copy_from_slice(&header);
        stream.read_exact(&mut frame[HEADER_LEN..]).unwrap();
        frame
    }

    #[test]
    fn pipelined_calls_on_one_socket_answer_with_echoed_ids() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
        // Two calls with *different* answers, written back-to-back
        // before any reply is read: correlation must come from the
        // echoed ids, not arrival order.
        let mut batch = encode_frame_full(
            &FrameBody::Call(DrmCall::IsSchemeSupported { uuid: [0; 16] }),
            None,
            Some(71),
        );
        batch.extend_from_slice(&encode_frame_full(
            &FrameBody::Call(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID }),
            None,
            Some(72),
        ));
        stream.write_all(&batch).unwrap();
        let mut seen = std::collections::HashMap::new();
        for _ in 0..2 {
            let frame = read_reply_frame(&mut stream);
            let id = crate::wire::peek_request_id(&frame).expect("reply echoes the request id");
            let (body, _) = decode_frame(&frame).unwrap();
            seen.insert(id, body);
        }
        assert_eq!(seen[&71], FrameBody::Reply(Ok(DrmReply::Bool(false))));
        assert_eq!(seen[&72], FrameBody::Reply(Ok(DrmReply::Bool(true))));
    }

    #[test]
    fn inflight_cap_queues_rather_than_drops() {
        let config = ReactorConfig { max_inflight_per_conn: 1, ..ReactorConfig::default() };
        let srv = TcpDrmServer::bind_with("127.0.0.1:0", Arc::new(server()), config).unwrap();
        let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
        let mut batch = Vec::new();
        for id in 0..8u64 {
            batch.extend_from_slice(&encode_frame_full(
                &FrameBody::Call(DrmCall::IsProvisioned),
                None,
                Some(id),
            ));
        }
        stream.write_all(&batch).unwrap();
        let mut ids: Vec<u64> = (0..8)
            .map(|_| crate::wire::peek_request_id(&read_reply_frame(&mut stream)).unwrap())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn malformed_frame_gets_a_typed_error_then_the_connection_closes() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
        stream.write_all(b"XXXXXXXXXXXXXXXX").unwrap();
        let frame = read_reply_frame(&mut stream);
        let (body, _) = decode_frame(&frame).unwrap();
        assert!(
            matches!(body, FrameBody::Reply(Err(DrmError::Wire(WireError::BadMagic { .. })))),
            "got {body:?}"
        );
        // The server closes after a frame-boundary-destroying error.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }

    #[test]
    fn reply_frames_at_the_server_answer_bad_reply_and_keep_serving() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
        stream.write_all(&encode_frame(&FrameBody::Reply(Ok(DrmReply::Unit)))).unwrap();
        let (body, _) = decode_frame(&read_reply_frame(&mut stream)).unwrap();
        assert_eq!(body, FrameBody::Reply(Err(DrmError::BadReply)));
        // The stream is still frame-aligned, so the server keeps serving.
        stream
            .write_all(&encode_frame(&FrameBody::Call(DrmCall::IsSchemeSupported {
                uuid: WIDEVINE_SYSTEM_ID,
            })))
            .unwrap();
        let (body, _) = decode_frame(&read_reply_frame(&mut stream)).unwrap();
        assert_eq!(body, FrameBody::Reply(Ok(DrmReply::Bool(true))));
    }

    #[test]
    fn active_connections_gauge_rises_and_falls() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        assert_eq!(srv.active_connections(), 0);
        let stream = TcpStream::connect(srv.local_addr()).unwrap();
        let mut registered = false;
        for _ in 0..200 {
            if srv.active_connections() == 1 {
                registered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(registered, "connection registered with an event loop");
        drop(stream);
        let mut reaped = false;
        for _ in 0..200 {
            if srv.active_connections() == 0 {
                reaped = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(reaped, "closed connection decremented the gauge");
    }

    #[test]
    fn many_idle_connections_cost_no_threads() {
        let srv = TcpDrmServer::bind("127.0.0.1:0", server()).unwrap();
        let conns: Vec<TcpStream> =
            (0..64).map(|_| TcpStream::connect(srv.local_addr()).unwrap()).collect();
        for _ in 0..200 {
            if srv.active_connections() == 64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(srv.active_connections(), 64);
        // One of them still gets served while the other 63 idle.
        let mut stream = TcpStream::connect(srv.local_addr()).unwrap();
        stream
            .write_all(&encode_frame(&FrameBody::Call(DrmCall::IsSchemeSupported {
                uuid: WIDEVINE_SYSTEM_ID,
            })))
            .unwrap();
        let (body, _) = decode_frame(&read_reply_frame(&mut stream)).unwrap();
        assert_eq!(body, FrameBody::Reply(Ok(DrmReply::Bool(true))));
        drop(conns);
    }
}
