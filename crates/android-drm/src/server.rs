//! The Media DRM Server: the HAL router living in `mediadrmserver`.
//!
//! Holds the registry of DRM plugins by system UUID (Widevine is one; a
//! vendor could register others) and routes every [`DrmCall`] to the
//! owning plugin's OEMCrypto backend.

use std::collections::HashMap;
use std::sync::Arc;

use wideleak_cdm::cdm::Cdm;
use wideleak_cdm::messages::{LicenseResponse, ProvisioningResponse};

use crate::binder::{DrmCall, DrmReply};
use crate::DrmError;

/// The server-side router.
pub struct MediaDrmServer {
    plugins: HashMap<[u8; 16], Arc<Cdm>>,
    /// The UUID most calls route to (sessions are not namespaced by UUID
    /// in this subset; one active scheme per server instance, which is
    /// what every evaluated OTT app uses).
    active: Option<[u8; 16]>,
}

impl std::fmt::Debug for MediaDrmServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MediaDrmServer({} plugins)", self.plugins.len())
    }
}

impl Default for MediaDrmServer {
    fn default() -> Self {
        Self::new()
    }
}

impl MediaDrmServer {
    /// Creates a server with no plugins.
    pub fn new() -> Self {
        MediaDrmServer { plugins: HashMap::new(), active: None }
    }

    /// Registers a DRM plugin under its system UUID. The first registered
    /// plugin becomes the active one.
    pub fn register_plugin(&mut self, uuid: [u8; 16], cdm: Arc<Cdm>) {
        if self.active.is_none() {
            self.active = Some(uuid);
        }
        self.plugins.insert(uuid, cdm);
    }

    /// Whether a scheme is available.
    pub fn is_scheme_supported(&self, uuid: &[u8; 16]) -> bool {
        self.plugins.contains_key(uuid)
    }

    /// Advances every registered plugin's CDM logical clock by `secs`.
    /// This is the clock-skew fault's entry point: licences loaded before
    /// the skew age past their duration and start expiring.
    pub fn advance_clocks(&self, secs: u64) {
        for cdm in self.plugins.values() {
            // A plugin whose TEE session is gone simply misses the skew.
            let _ = cdm.oemcrypto().advance_clock(secs);
        }
    }

    fn active_cdm(&self) -> Result<&Arc<Cdm>, DrmError> {
        let uuid = self.active.ok_or(DrmError::UnsupportedScheme { uuid: [0; 16] })?;
        self.plugins.get(&uuid).ok_or(DrmError::UnsupportedScheme { uuid })
    }

    /// Handles one transaction (called by the Binder transports).
    ///
    /// # Errors
    ///
    /// Returns [`DrmError`] for CDM failures and unsupported schemes.
    pub fn handle(&self, call: DrmCall) -> Result<DrmReply, DrmError> {
        match call {
            DrmCall::IsSchemeSupported { uuid } => {
                Ok(DrmReply::Bool(self.is_scheme_supported(&uuid)))
            }
            DrmCall::OpenSession { nonce } => {
                let id = self.active_cdm()?.oemcrypto().open_session(nonce)?;
                Ok(DrmReply::SessionId(id))
            }
            DrmCall::CloseSession { session_id } => {
                self.active_cdm()?.oemcrypto().close_session(session_id)?;
                Ok(DrmReply::Unit)
            }
            DrmCall::IsProvisioned => {
                Ok(DrmReply::Bool(self.active_cdm()?.oemcrypto().is_provisioned()))
            }
            DrmCall::GetProvisionRequest { nonce } => {
                let req = self.active_cdm()?.oemcrypto().provisioning_request(nonce)?;
                Ok(DrmReply::Bytes(req.to_bytes()))
            }
            DrmCall::ProvideProvisionResponse { nonce, response } => {
                let resp = ProvisioningResponse::parse(&response)?;
                self.active_cdm()?.oemcrypto().install_rsa_key(nonce, &resp)?;
                Ok(DrmReply::Unit)
            }
            DrmCall::GetKeyRequest { session_id, content_id, key_ids } => {
                let req = self.active_cdm()?.oemcrypto().license_request(
                    session_id,
                    &content_id,
                    &key_ids,
                )?;
                Ok(DrmReply::Bytes(req.to_bytes()))
            }
            DrmCall::ProvideKeyResponse { session_id, response } => {
                let resp = LicenseResponse::parse(&response)?;
                let loaded = self.active_cdm()?.oemcrypto().load_license(session_id, &resp)?;
                Ok(DrmReply::KeyIds(loaded))
            }
            DrmCall::DecryptSample { session_id, kid, crypto, data, subsamples } => {
                let out = self.active_cdm()?.oemcrypto().decrypt_sample(
                    session_id,
                    &kid,
                    &crypto,
                    &data,
                    &subsamples,
                )?;
                Ok(DrmReply::Bytes(out))
            }
            DrmCall::GenericEncrypt { session_id, kid, iv, data } => {
                let out =
                    self.active_cdm()?.oemcrypto().generic_encrypt(session_id, &kid, iv, &data)?;
                Ok(DrmReply::Bytes(out))
            }
            DrmCall::GenericDecrypt { session_id, kid, iv, data } => {
                let out =
                    self.active_cdm()?.oemcrypto().generic_decrypt(session_id, &kid, iv, &data)?;
                Ok(DrmReply::Bytes(out))
            }
            DrmCall::GenericSign { session_id, kid, data } => {
                let out = self.active_cdm()?.oemcrypto().generic_sign(session_id, &kid, &data)?;
                Ok(DrmReply::Bytes(out))
            }
            DrmCall::GenericVerify { session_id, kid, data, signature } => {
                // `Bool(false)` means exactly "signature mismatch"; a
                // closed session, unsupported scheme or missing key is a
                // transport-visible error, not a failed verification.
                match self
                    .active_cdm()?
                    .oemcrypto()
                    .generic_verify(session_id, &kid, &data, &signature)
                {
                    Ok(()) => Ok(DrmReply::Bool(true)),
                    Err(wideleak_cdm::CdmError::BadSignature) => Ok(DrmReply::Bool(false)),
                    Err(other) => Err(other.into()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::types::WIDEVINE_SYSTEM_ID;
    use wideleak_cdm::keybox::Keybox;
    use wideleak_device::catalog::DeviceModel;
    use wideleak_device::Device;

    fn boot_server() -> MediaDrmServer {
        let device = Device::new(DeviceModel::pixel_6());
        let cdm =
            Cdm::builder().keybox(Keybox::issue(b"server-test", &[2; 16])).boot(&device).unwrap();
        let mut s = MediaDrmServer::new();
        s.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
        s
    }

    #[test]
    fn scheme_probe() {
        let s = boot_server();
        assert!(s.is_scheme_supported(&WIDEVINE_SYSTEM_ID));
        assert!(!s.is_scheme_supported(&[0u8; 16]));
        assert_eq!(
            s.handle(DrmCall::IsSchemeSupported { uuid: [0; 16] }).unwrap(),
            DrmReply::Bool(false)
        );
    }

    #[test]
    fn empty_server_rejects_calls() {
        let s = MediaDrmServer::new();
        assert!(matches!(
            s.handle(DrmCall::OpenSession { nonce: [0; 16] }),
            Err(DrmError::UnsupportedScheme { .. })
        ));
    }

    #[test]
    fn session_lifecycle_through_router() {
        let s = boot_server();
        let id =
            s.handle(DrmCall::OpenSession { nonce: [3; 16] }).unwrap().into_session_id().unwrap();
        assert_eq!(s.handle(DrmCall::CloseSession { session_id: id }).unwrap(), DrmReply::Unit);
        assert!(matches!(
            s.handle(DrmCall::CloseSession { session_id: id }),
            Err(DrmError::Cdm(_))
        ));
    }

    #[test]
    fn provisioning_probe() {
        let s = boot_server();
        assert_eq!(s.handle(DrmCall::IsProvisioned).unwrap(), DrmReply::Bool(false));
        let req = s
            .handle(DrmCall::GetProvisionRequest { nonce: [1; 16] })
            .unwrap()
            .into_bytes()
            .unwrap();
        assert!(!req.is_empty());
    }

    #[test]
    fn generic_verify_on_closed_session_errors_not_false() {
        let s = boot_server();
        let id =
            s.handle(DrmCall::OpenSession { nonce: [5; 16] }).unwrap().into_session_id().unwrap();
        s.handle(DrmCall::CloseSession { session_id: id }).unwrap();
        let reply = s.handle(DrmCall::GenericVerify {
            session_id: id,
            kid: wideleak_bmff::types::KeyId([6; 16]),
            data: b"payload".to_vec(),
            signature: b"whatever".to_vec(),
        });
        assert!(
            matches!(reply, Err(DrmError::Cdm(_))),
            "closed session must surface an error, got {reply:?}"
        );
    }

    #[test]
    fn garbage_provision_response_rejected() {
        let s = boot_server();
        assert!(matches!(
            s.handle(DrmCall::ProvideProvisionResponse { nonce: [0; 16], response: vec![1, 2] }),
            Err(DrmError::Cdm(_))
        ));
    }
}
