//! The versioned, length-prefixed wire format the TCP binder speaks.
//!
//! A frame is a fixed 12-byte header, a payload, and a trailing CRC-32
//! over header + payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "WDLK"
//!      4     1  version (currently 3; v1 and v2 still decode)
//!      5     1  frame type (0 = call, 1 = reply)
//!      6     1  flags (v2+; bit 0 = trace context, bit 1 = request id)
//!      7     1  reserved (must be 0)
//!      8     4  payload length, little-endian
//!     12     n  payload (optional 24-byte trace context, optional
//!               8-byte request id, then the tagged DrmCall /
//!               Result<DrmReply, DrmError>)
//!   12+n     4  CRC-32 (IEEE) over bytes 0..12+n, little-endian
//! ```
//!
//! Version 2 spent one of the two reserved bytes as a flags field.
//! When [`FLAG_TRACE_CONTEXT`] is set, the payload region opens with a
//! [`TraceContext`] in its fixed 24-byte wire form
//! ([`TraceContext::WIRE_LEN`]) before the body, which is how a client
//! call's trace identity reaches the server process (and stitches the
//! server's spans into the caller's trace).
//!
//! Version 3 spends the next flag bit on pipelining: when
//! [`FLAG_REQUEST_ID`] is set, an 8-byte little-endian request id
//! follows the (optional) trace context. The reactor server echoes a
//! call's request id on its reply frame, which is what lets a client
//! keep several calls in flight on one connection and correlate the
//! out-of-order replies. The flag is only legal from v3 on — a v2
//! decoder rejects it as an unknown flag, exactly as the v2 format
//! promised — and flags are validated against the *sender's* version,
//! so a v2 frame carrying bit 1 is still malformed to a v3 decoder.
//!
//! The length field covers the extensions and the body; the CRC covers
//! everything, extensions included. A v1 frame (flags byte zero, no
//! extensions) still decodes — the promise the v1 format made by
//! reserving the byte.
//!
//! [`encode_frame`] and [`decode_frame`] are pure functions over byte
//! slices — no sockets, no clocks — so the property/fuzz battery can
//! hammer the codec directly. Every way a frame can be malformed maps to
//! one [`WireError`] variant: short input is [`WireError::Truncated`], a
//! length field past [`MAX_PAYLOAD`] is [`WireError::Oversized`] (checked
//! *before* any allocation), a foreign protocol is
//! [`WireError::BadMagic`], a future protocol revision is
//! [`WireError::UnsupportedVersion`], bit rot is [`WireError::BadCrc`],
//! and a payload whose tags or field lengths are inconsistent is
//! [`WireError::Malformed`]. The decoder never panics on arbitrary
//! input.
//!
//! Version negotiation is deliberately one-sided: the header carries the
//! sender's version and the receiver rejects anything it does not speak.
//! With exactly one version in existence that collapses to an equality
//! check; the byte is reserved so a v2 decoder can accept v1 frames.

use wideleak_bmff::types::{KeyId, Subsample};
use wideleak_cdm::oemcrypto::SampleCrypto;
use wideleak_cdm::CdmError;
use wideleak_crypto::crc32::crc32;
use wideleak_tee::TeeError;
use wideleak_telemetry::TraceContext;

use crate::binder::{DrmCall, DrmReply};
use crate::DrmError;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"WDLK";

/// The wire-format revision this build speaks.
pub const VERSION: u8 = 3;

/// The oldest revision this build still decodes.
pub const MIN_VERSION: u8 = 1;

/// Header flag (v2+): the payload opens with a 24-byte trace context.
pub const FLAG_TRACE_CONTEXT: u8 = 0x01;

/// Header flag (v3+): an 8-byte little-endian request id follows the
/// (optional) trace context. Replies echo the request id of the call
/// they answer, which is what makes frame pipelining correlatable.
pub const FLAG_REQUEST_ID: u8 = 0x02;

/// The flag bits legal for a frame claiming `version`; anything else
/// in the flags byte is [`WireError::Malformed`]. Flags are validated
/// against the *sender's* version so each revision keeps the promise
/// it made about its reserved bits: a v2 frame carrying the request-id
/// bit is malformed even to this decoder.
fn known_flags(version: u8) -> u8 {
    match version {
        0 | 1 => 0,
        2 => FLAG_TRACE_CONTEXT,
        _ => FLAG_TRACE_CONTEXT | FLAG_REQUEST_ID,
    }
}

/// Fixed header size (magic + version + type + reserved + length).
pub const HEADER_LEN: usize = 12;

/// CRC-32 trailer size.
pub const TRAILER_LEN: usize = 4;

/// Upper bound on a frame's payload (16 MiB). A header claiming more is
/// rejected as [`WireError::Oversized`] before any buffer is sized from
/// it, so a hostile peer cannot make the decoder allocate unboundedly.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Everything that can be wrong with a frame, as a typed taxonomy. The
/// decoder returns exactly one of these for every malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ends before the frame does.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The header's length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The version byte names a revision this build does not speak.
    UnsupportedVersion {
        /// The version found.
        version: u8,
    },
    /// The CRC-32 trailer does not match the header + payload bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the trailer.
        found: u32,
    },
    /// The frame is structurally sound but its payload is not a valid
    /// call/reply encoding (unknown tag, inconsistent field lengths,
    /// trailing garbage).
    Malformed {
        /// What the payload decoder tripped on.
        what: &'static str,
    },
}

impl WireError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::Oversized { .. } => "oversized",
            WireError::BadMagic { .. } => "bad_magic",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::BadCrc { .. } => "bad_crc",
            WireError::Malformed { .. } => "malformed",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len}-byte payload exceeds the {max}-byte cap")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported wire version {version}")
            }
            WireError::BadCrc { expected, found } => {
                write!(f, "frame CRC mismatch: computed {expected:08x}, carried {found:08x}")
            }
            WireError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl wideleak_faults::ErrorClass for WireError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

/// What a frame carries: one DRM transaction or its reply, or one
/// campaign control-channel transaction or its reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// A client-to-server DRM transaction.
    Call(DrmCall),
    /// A server-to-client DRM outcome.
    Reply(Result<DrmReply, DrmError>),
    /// A coordinator-to-worker campaign transaction (v3+ frames only).
    CampaignCall(crate::campaign::CampaignCall),
    /// A worker-to-coordinator campaign outcome (v3+ frames only).
    CampaignReply(Result<crate::campaign::CampaignReply, crate::campaign::CampaignError>),
}

const FRAME_TYPE_CALL: u8 = 0;
const FRAME_TYPE_REPLY: u8 = 1;
const FRAME_TYPE_CAMPAIGN_CALL: u8 = 2;
const FRAME_TYPE_CAMPAIGN_REPLY: u8 = 3;

/// The wire extensions a frame carried ahead of its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameMeta {
    /// The trace context, when the sender attached one
    /// ([`FLAG_TRACE_CONTEXT`]).
    pub ctx: Option<TraceContext>,
    /// The pipelining request id, when the sender attached one
    /// ([`FLAG_REQUEST_ID`]).
    pub request_id: Option<u64>,
}

/// Encodes one frame: header, payload, CRC trailer.
#[must_use]
pub fn encode_frame(body: &FrameBody) -> Vec<u8> {
    encode_frame_full(body, None, None)
}

/// Encodes one frame, optionally carrying a trace context ahead of the
/// body so the receiving process can stitch its spans into the
/// caller's trace.
#[must_use]
pub fn encode_frame_with(body: &FrameBody, ctx: Option<&TraceContext>) -> Vec<u8> {
    encode_frame_full(body, ctx, None)
}

/// Encodes one frame with any combination of wire extensions: a trace
/// context and/or a pipelining request id ahead of the body.
#[must_use]
pub fn encode_frame_full(
    body: &FrameBody,
    ctx: Option<&TraceContext>,
    request_id: Option<u64>,
) -> Vec<u8> {
    let (frame_type, payload) = match body {
        FrameBody::Call(call) => (FRAME_TYPE_CALL, encode_call(call)),
        FrameBody::Reply(reply) => (FRAME_TYPE_REPLY, encode_reply(reply)),
        FrameBody::CampaignCall(call) => {
            (FRAME_TYPE_CAMPAIGN_CALL, crate::campaign::encode_campaign_call(call))
        }
        FrameBody::CampaignReply(reply) => {
            (FRAME_TYPE_CAMPAIGN_REPLY, crate::campaign::encode_campaign_reply(reply))
        }
    };
    let ctx_len = ctx.map_or(0, |_| TraceContext::WIRE_LEN);
    let id_len = request_id.map_or(0, |_| 8);
    let total_payload = ctx_len + id_len + payload.len();
    let mut flags = 0u8;
    if ctx.is_some() {
        flags |= FLAG_TRACE_CONTEXT;
    }
    if request_id.is_some() {
        flags |= FLAG_REQUEST_ID;
    }
    let mut out = Vec::with_capacity(HEADER_LEN + total_payload + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame_type);
    out.push(flags);
    out.push(0);
    out.extend_from_slice(&u32::try_from(total_payload).expect("payload fits u32").to_le_bytes());
    if let Some(ctx) = ctx {
        out.extend_from_slice(&ctx.encode());
    }
    if let Some(id) = request_id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a frame header and returns the total frame length
/// (header plus payload plus trailer). Stream readers call this on the
/// first [`HEADER_LEN`] bytes to learn how much more to read — the
/// oversize check happens here, before any payload buffer is sized.
///
/// # Errors
///
/// Returns the header-level subset of the [`WireError`] taxonomy.
pub fn frame_len(header: &[u8]) -> Result<usize, WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, got: header.len() });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&header[0..4]);
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if !(MIN_VERSION..=VERSION).contains(&header[4]) {
        return Err(WireError::UnsupportedVersion { version: header[4] });
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len, max: MAX_PAYLOAD });
    }
    Ok(HEADER_LEN + len + TRAILER_LEN)
}

/// Decodes one frame from the front of `buf`, returning the body and
/// the number of bytes consumed.
///
/// # Errors
///
/// Returns the matching [`WireError`] for every malformed input; never
/// panics.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameBody, usize), WireError> {
    decode_frame_full(buf).map(|(body, _meta, used)| (body, used))
}

/// Like [`decode_frame`], but also surfacing the trace context when
/// the sender attached one ([`FLAG_TRACE_CONTEXT`]).
///
/// # Errors
///
/// Returns the matching [`WireError`] for every malformed input; never
/// panics.
pub fn decode_frame_ext(buf: &[u8]) -> Result<(FrameBody, Option<TraceContext>, usize), WireError> {
    decode_frame_full(buf).map(|(body, meta, used)| (body, meta.ctx, used))
}

/// Like [`decode_frame`], but surfacing every wire extension the frame
/// carried as a [`FrameMeta`].
///
/// # Errors
///
/// Returns the matching [`WireError`] for every malformed input; never
/// panics.
pub fn decode_frame_full(buf: &[u8]) -> Result<(FrameBody, FrameMeta, usize), WireError> {
    let total = frame_len(buf)?;
    if buf.len() < total {
        return Err(WireError::Truncated { needed: total, got: buf.len() });
    }
    let body_end = total - TRAILER_LEN;
    let expected = crc32(&buf[..body_end]);
    let found = u32::from_le_bytes([
        buf[body_end],
        buf[body_end + 1],
        buf[body_end + 2],
        buf[body_end + 3],
    ]);
    if expected != found {
        return Err(WireError::BadCrc { expected, found });
    }
    // v1 reserved its two header bytes without validating them; the
    // flags field only exists from v2 on.
    let flags = if buf[4] >= 2 { buf[6] } else { 0 };
    if flags & !known_flags(buf[4]) != 0 {
        return Err(WireError::Malformed { what: "unknown header flags" });
    }
    let mut payload = &buf[HEADER_LEN..body_end];
    let ctx = if flags & FLAG_TRACE_CONTEXT != 0 {
        if payload.len() < TraceContext::WIRE_LEN {
            return Err(WireError::Malformed { what: "trace context exceeds payload" });
        }
        let Some(ctx) = TraceContext::decode(payload) else {
            return Err(WireError::Malformed { what: "trace context with zero span id" });
        };
        payload = &payload[TraceContext::WIRE_LEN..];
        Some(ctx)
    } else {
        None
    };
    let request_id = if flags & FLAG_REQUEST_ID != 0 {
        if payload.len() < 8 {
            return Err(WireError::Malformed { what: "request id exceeds payload" });
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&payload[..8]);
        payload = &payload[8..];
        Some(u64::from_le_bytes(id))
    } else {
        None
    };
    let mut r = Reader::new(payload);
    let body = match buf[5] {
        FRAME_TYPE_CALL => FrameBody::Call(decode_call(&mut r)?),
        FRAME_TYPE_REPLY => FrameBody::Reply(decode_reply(&mut r)?),
        // The campaign control channel arrived with v3; a frame claiming
        // an older revision cannot legitimately carry one.
        FRAME_TYPE_CAMPAIGN_CALL | FRAME_TYPE_CAMPAIGN_REPLY if buf[4] < 3 => {
            return Err(WireError::Malformed { what: "campaign frame below wire v3" })
        }
        FRAME_TYPE_CAMPAIGN_CALL => {
            FrameBody::CampaignCall(crate::campaign::decode_campaign_call(&mut r)?)
        }
        FRAME_TYPE_CAMPAIGN_REPLY => {
            FrameBody::CampaignReply(crate::campaign::decode_campaign_reply(&mut r)?)
        }
        _ => return Err(WireError::Malformed { what: "unknown frame type" }),
    };
    r.finish()?;
    Ok((body, FrameMeta { ctx, request_id }, total))
}

/// Reads the request id off a complete frame without decoding (or CRC
/// checking) the body. The pipelined client's reader thread uses this
/// to route a raw reply frame to its waiter before paying for the full
/// decode; a frame too corrupt to peek returns `None` and the caller
/// falls back to a full decode for the typed error.
#[must_use]
pub fn peek_request_id(frame: &[u8]) -> Option<u64> {
    if frame.len() < HEADER_LEN || frame[..4] != MAGIC || frame[4] < 3 {
        return None;
    }
    let flags = frame[6];
    if flags & FLAG_REQUEST_ID == 0 {
        return None;
    }
    let mut offset = HEADER_LEN;
    if flags & FLAG_TRACE_CONTEXT != 0 {
        offset += TraceContext::WIRE_LEN;
    }
    let bytes = frame.get(offset..offset + 8)?;
    let mut id = [0u8; 8];
    id.copy_from_slice(bytes);
    Some(u64::from_le_bytes(id))
}

// ---------------------------------------------------------------------
// Primitive reader/writer
// ---------------------------------------------------------------------

/// The primitive little-endian payload reader the frame bodies decode
/// through. Crate-visible so the campaign codec shares it.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed { what })?;
        if end > self.buf.len() {
            return Err(WireError::Malformed { what });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub(crate) fn array<const N: usize>(
        &mut self,
        what: &'static str,
    ) -> Result<[u8; N], WireError> {
        let b = self.take(N, what)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// A length-prefixed byte payload. The length is bounded by the
    /// remaining input, so a lying prefix cannot trigger a huge
    /// allocation.
    pub(crate) fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    pub(crate) fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(what)?).map_err(|_| WireError::Malformed { what })
    }

    /// Like [`Self::string`], but interning the result so variants whose
    /// reason fields are `&'static str` round-trip. The intern table only
    /// ever holds distinct reason strings, so its growth is bounded by
    /// the error vocabulary, not by traffic.
    pub(crate) fn static_str(&mut self, what: &'static str) -> Result<&'static str, WireError> {
        Ok(intern(&self.string(what)?))
    }

    /// Rejects trailing garbage after a fully decoded payload.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { what: "trailing bytes after payload" })
        }
    }
}

/// The primitive little-endian payload writer, mirror of [`Reader`].
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub(crate) fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("field fits u32"));
        self.raw(v)
    }

    pub(crate) fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    pub(crate) fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Interns a string, returning a `&'static str` with the same contents.
/// Needed because several error variants carry `&'static str` reasons
/// that must survive a trip over the wire. Entries are deduplicated, so
/// the leaked set is bounded by the distinct reasons ever decoded.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().expect("intern table lock");
    if let Some(existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// DrmCall
// ---------------------------------------------------------------------

fn encode_subsamples(w: &mut Writer, subsamples: &[Subsample]) {
    w.u32(u32::try_from(subsamples.len()).expect("subsample count fits u32"));
    for s in subsamples {
        w.u16(s.clear_bytes);
        w.u32(s.encrypted_bytes);
    }
}

fn decode_subsamples(r: &mut Reader<'_>) -> Result<Vec<Subsample>, WireError> {
    let count = r.u32("subsample count")? as usize;
    // Each entry costs 6 bytes on the wire; bound the allocation by what
    // the input can actually contain.
    if count > r.buf.len().saturating_sub(r.pos) / 6 {
        return Err(WireError::Malformed { what: "subsample count exceeds payload" });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(Subsample {
            clear_bytes: r.u16("subsample clear bytes")?,
            encrypted_bytes: r.u32("subsample encrypted bytes")?,
        });
    }
    Ok(out)
}

fn encode_key_ids(w: &mut Writer, key_ids: &[KeyId]) {
    w.u32(u32::try_from(key_ids.len()).expect("key id count fits u32"));
    for kid in key_ids {
        w.raw(&kid.0);
    }
}

fn decode_key_ids(r: &mut Reader<'_>) -> Result<Vec<KeyId>, WireError> {
    let count = r.u32("key id count")? as usize;
    if count > r.buf.len().saturating_sub(r.pos) / 16 {
        return Err(WireError::Malformed { what: "key id count exceeds payload" });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(KeyId(r.array::<16>("key id")?));
    }
    Ok(out)
}

fn encode_sample_crypto(w: &mut Writer, crypto: &SampleCrypto) {
    match crypto {
        SampleCrypto::Cenc { iv } => {
            w.u8(0).raw(iv);
        }
        SampleCrypto::Cbcs { constant_iv, crypt_blocks, skip_blocks } => {
            w.u8(1).raw(constant_iv).u8(*crypt_blocks).u8(*skip_blocks);
        }
    }
}

fn decode_sample_crypto(r: &mut Reader<'_>) -> Result<SampleCrypto, WireError> {
    match r.u8("sample crypto tag")? {
        0 => Ok(SampleCrypto::Cenc { iv: r.array::<8>("cenc iv")? }),
        1 => Ok(SampleCrypto::Cbcs {
            constant_iv: r.array::<16>("cbcs iv")?,
            crypt_blocks: r.u8("cbcs crypt blocks")?,
            skip_blocks: r.u8("cbcs skip blocks")?,
        }),
        _ => Err(WireError::Malformed { what: "unknown sample crypto scheme" }),
    }
}

fn encode_call(call: &DrmCall) -> Vec<u8> {
    let mut w = Writer::new();
    match call {
        DrmCall::IsSchemeSupported { uuid } => {
            w.u8(0).raw(uuid);
        }
        DrmCall::OpenSession { nonce } => {
            w.u8(1).raw(nonce);
        }
        DrmCall::CloseSession { session_id } => {
            w.u8(2).u32(*session_id);
        }
        DrmCall::IsProvisioned => {
            w.u8(3);
        }
        DrmCall::GetProvisionRequest { nonce } => {
            w.u8(4).raw(nonce);
        }
        DrmCall::ProvideProvisionResponse { nonce, response } => {
            w.u8(5).raw(nonce).bytes(response);
        }
        DrmCall::GetKeyRequest { session_id, content_id, key_ids } => {
            w.u8(6).u32(*session_id).string(content_id);
            encode_key_ids(&mut w, key_ids);
        }
        DrmCall::ProvideKeyResponse { session_id, response } => {
            w.u8(7).u32(*session_id).bytes(response);
        }
        DrmCall::DecryptSample { session_id, kid, crypto, data, subsamples } => {
            w.u8(8).u32(*session_id).raw(&kid.0);
            encode_sample_crypto(&mut w, crypto);
            w.bytes(data);
            encode_subsamples(&mut w, subsamples);
        }
        DrmCall::GenericEncrypt { session_id, kid, iv, data } => {
            w.u8(9).u32(*session_id).raw(&kid.0).raw(iv).bytes(data);
        }
        DrmCall::GenericDecrypt { session_id, kid, iv, data } => {
            w.u8(10).u32(*session_id).raw(&kid.0).raw(iv).bytes(data);
        }
        DrmCall::GenericSign { session_id, kid, data } => {
            w.u8(11).u32(*session_id).raw(&kid.0).bytes(data);
        }
        DrmCall::GenericVerify { session_id, kid, data, signature } => {
            w.u8(12).u32(*session_id).raw(&kid.0).bytes(data).bytes(signature);
        }
    }
    w.buf
}

fn decode_call(r: &mut Reader<'_>) -> Result<DrmCall, WireError> {
    Ok(match r.u8("call tag")? {
        0 => DrmCall::IsSchemeSupported { uuid: r.array::<16>("scheme uuid")? },
        1 => DrmCall::OpenSession { nonce: r.array::<16>("session nonce")? },
        2 => DrmCall::CloseSession { session_id: r.u32("session id")? },
        3 => DrmCall::IsProvisioned,
        4 => DrmCall::GetProvisionRequest { nonce: r.array::<16>("provision nonce")? },
        5 => DrmCall::ProvideProvisionResponse {
            nonce: r.array::<16>("provision nonce")?,
            response: r.bytes("provision response")?,
        },
        6 => DrmCall::GetKeyRequest {
            session_id: r.u32("session id")?,
            content_id: r.string("content id")?,
            key_ids: decode_key_ids(r)?,
        },
        7 => DrmCall::ProvideKeyResponse {
            session_id: r.u32("session id")?,
            response: r.bytes("key response")?,
        },
        8 => DrmCall::DecryptSample {
            session_id: r.u32("session id")?,
            kid: KeyId(r.array::<16>("key id")?),
            crypto: decode_sample_crypto(r)?,
            data: r.bytes("sample data")?,
            subsamples: decode_subsamples(r)?,
        },
        9 => DrmCall::GenericEncrypt {
            session_id: r.u32("session id")?,
            kid: KeyId(r.array::<16>("key id")?),
            iv: r.array::<16>("cbc iv")?,
            data: r.bytes("plaintext")?,
        },
        10 => DrmCall::GenericDecrypt {
            session_id: r.u32("session id")?,
            kid: KeyId(r.array::<16>("key id")?),
            iv: r.array::<16>("cbc iv")?,
            data: r.bytes("ciphertext")?,
        },
        11 => DrmCall::GenericSign {
            session_id: r.u32("session id")?,
            kid: KeyId(r.array::<16>("key id")?),
            data: r.bytes("message")?,
        },
        12 => DrmCall::GenericVerify {
            session_id: r.u32("session id")?,
            kid: KeyId(r.array::<16>("key id")?),
            data: r.bytes("message")?,
            signature: r.bytes("signature")?,
        },
        _ => return Err(WireError::Malformed { what: "unknown call tag" }),
    })
}

// ---------------------------------------------------------------------
// Replies and errors
// ---------------------------------------------------------------------

fn encode_reply(reply: &Result<DrmReply, DrmError>) -> Vec<u8> {
    let mut w = Writer::new();
    match reply {
        Ok(DrmReply::Unit) => {
            w.u8(0).u8(0);
        }
        Ok(DrmReply::Bool(b)) => {
            w.u8(0).u8(1).u8(u8::from(*b));
        }
        Ok(DrmReply::SessionId(id)) => {
            w.u8(0).u8(2).u32(*id);
        }
        Ok(DrmReply::Bytes(bytes)) => {
            w.u8(0).u8(3).bytes(bytes);
        }
        Ok(DrmReply::KeyIds(kids)) => {
            w.u8(0).u8(4);
            encode_key_ids(&mut w, kids);
        }
        Err(e) => {
            w.u8(1);
            encode_drm_error(&mut w, e);
        }
    }
    w.buf
}

fn decode_reply(r: &mut Reader<'_>) -> Result<Result<DrmReply, DrmError>, WireError> {
    match r.u8("reply result tag")? {
        0 => Ok(Ok(match r.u8("reply tag")? {
            0 => DrmReply::Unit,
            1 => DrmReply::Bool(match r.u8("bool value")? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed { what: "bool out of range" }),
            }),
            2 => DrmReply::SessionId(r.u32("session id")?),
            3 => DrmReply::Bytes(r.bytes("byte payload")?),
            4 => DrmReply::KeyIds(decode_key_ids(r)?),
            _ => return Err(WireError::Malformed { what: "unknown reply tag" }),
        })),
        1 => Ok(Err(decode_drm_error(r)?)),
        _ => Err(WireError::Malformed { what: "unknown reply result tag" }),
    }
}

fn encode_drm_error(w: &mut Writer, e: &DrmError) {
    match e {
        DrmError::UnsupportedScheme { uuid } => {
            w.u8(0).raw(uuid);
        }
        DrmError::Cdm(cdm) => {
            w.u8(1);
            encode_cdm_error(w, cdm);
        }
        DrmError::BinderDied => {
            w.u8(2);
        }
        DrmError::ServerPanic => {
            w.u8(3);
        }
        DrmError::BadReply => {
            w.u8(4);
        }
        DrmError::Wire(wire) => {
            w.u8(5);
            encode_wire_error(w, wire);
        }
        DrmError::Timeout { ms } => {
            w.u8(6).u64(*ms);
        }
    }
}

fn decode_drm_error(r: &mut Reader<'_>) -> Result<DrmError, WireError> {
    Ok(match r.u8("drm error tag")? {
        0 => DrmError::UnsupportedScheme { uuid: r.array::<16>("scheme uuid")? },
        1 => DrmError::Cdm(decode_cdm_error(r)?),
        2 => DrmError::BinderDied,
        3 => DrmError::ServerPanic,
        4 => DrmError::BadReply,
        5 => DrmError::Wire(decode_wire_error(r)?),
        6 => DrmError::Timeout { ms: r.u64("timeout ms")? },
        _ => return Err(WireError::Malformed { what: "unknown drm error tag" }),
    })
}

fn encode_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::Truncated { needed, got } => {
            w.u8(0).u64(*needed as u64).u64(*got as u64);
        }
        WireError::Oversized { len, max } => {
            w.u8(1).u64(*len as u64).u64(*max as u64);
        }
        WireError::BadMagic { found } => {
            w.u8(2).raw(found);
        }
        WireError::UnsupportedVersion { version } => {
            w.u8(3).u8(*version);
        }
        WireError::BadCrc { expected, found } => {
            w.u8(4).u32(*expected).u32(*found);
        }
        WireError::Malformed { what } => {
            w.u8(5).string(what);
        }
    }
}

fn decode_wire_error(r: &mut Reader<'_>) -> Result<WireError, WireError> {
    Ok(match r.u8("wire error tag")? {
        0 => {
            WireError::Truncated { needed: r.u64("needed")? as usize, got: r.u64("got")? as usize }
        }
        1 => WireError::Oversized { len: r.u64("len")? as usize, max: r.u64("max")? as usize },
        2 => WireError::BadMagic { found: r.array::<4>("magic")? },
        3 => WireError::UnsupportedVersion { version: r.u8("version")? },
        4 => WireError::BadCrc { expected: r.u32("expected crc")?, found: r.u32("found crc")? },
        5 => WireError::Malformed { what: r.static_str("malformed what")? },
        _ => return Err(WireError::Malformed { what: "unknown wire error tag" }),
    })
}

fn encode_cdm_error(w: &mut Writer, e: &CdmError) {
    use wideleak_crypto::CryptoError;
    match e {
        CdmError::BadKeybox { reason } => {
            w.u8(0).string(reason);
        }
        CdmError::NotProvisioned => {
            w.u8(1);
        }
        CdmError::BadMessage { reason } => {
            w.u8(2).string(reason);
        }
        CdmError::BadSignature => {
            w.u8(3);
        }
        CdmError::Crypto(c) => {
            w.u8(4);
            match c {
                CryptoError::NotBlockAligned { len } => {
                    w.u8(0).u64(*len as u64);
                }
                CryptoError::BadPadding => {
                    w.u8(1);
                }
                CryptoError::MessageTooLong => {
                    w.u8(2);
                }
                CryptoError::DecryptionFailed => {
                    w.u8(3);
                }
                CryptoError::BadSignature => {
                    w.u8(4);
                }
                CryptoError::InvalidKey => {
                    w.u8(5);
                }
            }
        }
        CdmError::Tee(t) => {
            w.u8(5);
            match t {
                TeeError::TrustletNotFound { name } => {
                    w.u8(0).string(name);
                }
                TeeError::BadCommand { command } => {
                    w.u8(1).u32(*command);
                }
                TeeError::BadParameters { reason } => {
                    w.u8(2).string(reason);
                }
                TeeError::AccessDenied { reason } => {
                    w.u8(3).string(reason);
                }
                TeeError::StorageMiss { slot } => {
                    w.u8(4).string(slot);
                }
            }
        }
        CdmError::NoSuchSession { session_id } => {
            w.u8(6).u32(*session_id);
        }
        CdmError::SessionLimit { max } => {
            w.u8(7).u32(*max);
        }
        CdmError::SessionIdsExhausted => {
            w.u8(8);
        }
        CdmError::KeyNotLoaded => {
            w.u8(9);
        }
        CdmError::KeyExpired => {
            w.u8(10);
        }
        CdmError::Rejected { reason } => {
            w.u8(11).string(reason);
        }
    }
}

fn decode_cdm_error(r: &mut Reader<'_>) -> Result<CdmError, WireError> {
    use wideleak_crypto::CryptoError;
    Ok(match r.u8("cdm error tag")? {
        0 => CdmError::BadKeybox { reason: r.static_str("keybox reason")? },
        1 => CdmError::NotProvisioned,
        2 => CdmError::BadMessage { reason: r.static_str("message reason")? },
        3 => CdmError::BadSignature,
        4 => CdmError::Crypto(match r.u8("crypto error tag")? {
            0 => CryptoError::NotBlockAligned { len: r.u64("len")? as usize },
            1 => CryptoError::BadPadding,
            2 => CryptoError::MessageTooLong,
            3 => CryptoError::DecryptionFailed,
            4 => CryptoError::BadSignature,
            5 => CryptoError::InvalidKey,
            _ => return Err(WireError::Malformed { what: "unknown crypto error tag" }),
        }),
        5 => CdmError::Tee(match r.u8("tee error tag")? {
            0 => TeeError::TrustletNotFound { name: r.string("trustlet name")? },
            1 => TeeError::BadCommand { command: r.u32("command")? },
            2 => TeeError::BadParameters { reason: r.static_str("parameter reason")? },
            3 => TeeError::AccessDenied { reason: r.static_str("denial reason")? },
            4 => TeeError::StorageMiss { slot: r.string("storage slot")? },
            _ => return Err(WireError::Malformed { what: "unknown tee error tag" }),
        }),
        6 => CdmError::NoSuchSession { session_id: r.u32("session id")? },
        7 => CdmError::SessionLimit { max: r.u32("session cap")? },
        8 => CdmError::SessionIdsExhausted,
        9 => CdmError::KeyNotLoaded,
        10 => CdmError::KeyExpired,
        11 => CdmError::Rejected { reason: r.string("rejection reason")? },
        _ => return Err(WireError::Malformed { what: "unknown cdm error tag" }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_calls() -> Vec<DrmCall> {
        vec![
            DrmCall::IsSchemeSupported { uuid: [7; 16] },
            DrmCall::OpenSession { nonce: [1; 16] },
            DrmCall::CloseSession { session_id: 42 },
            DrmCall::IsProvisioned,
            DrmCall::GetProvisionRequest { nonce: [2; 16] },
            DrmCall::ProvideProvisionResponse { nonce: [3; 16], response: vec![1, 2, 3] },
            DrmCall::GetKeyRequest {
                session_id: 9,
                content_id: "title-001".into(),
                key_ids: vec![KeyId([4; 16]), KeyId([5; 16])],
            },
            DrmCall::ProvideKeyResponse { session_id: 9, response: vec![0xAB; 64] },
            DrmCall::DecryptSample {
                session_id: 9,
                kid: KeyId([6; 16]),
                crypto: SampleCrypto::Cenc { iv: [8; 8] },
                data: vec![0x5A; 48],
                subsamples: vec![Subsample { clear_bytes: 4, encrypted_bytes: 44 }],
            },
            DrmCall::DecryptSample {
                session_id: 10,
                kid: KeyId([6; 16]),
                crypto: SampleCrypto::Cbcs {
                    constant_iv: [9; 16],
                    crypt_blocks: 1,
                    skip_blocks: 9,
                },
                data: vec![0x5B; 32],
                subsamples: vec![],
            },
            DrmCall::GenericEncrypt {
                session_id: 1,
                kid: KeyId([1; 16]),
                iv: [2; 16],
                data: vec![3; 16],
            },
            DrmCall::GenericDecrypt {
                session_id: 1,
                kid: KeyId([1; 16]),
                iv: [2; 16],
                data: vec![4; 16],
            },
            DrmCall::GenericSign { session_id: 1, kid: KeyId([1; 16]), data: vec![5; 10] },
            DrmCall::GenericVerify {
                session_id: 1,
                kid: KeyId([1; 16]),
                data: vec![6; 10],
                signature: vec![7; 16],
            },
        ]
    }

    fn sample_replies() -> Vec<Result<DrmReply, DrmError>> {
        vec![
            Ok(DrmReply::Unit),
            Ok(DrmReply::Bool(true)),
            Ok(DrmReply::Bool(false)),
            Ok(DrmReply::SessionId(7)),
            Ok(DrmReply::Bytes(vec![1, 2, 3, 4])),
            Ok(DrmReply::KeyIds(vec![KeyId([0xEE; 16])])),
            Err(DrmError::UnsupportedScheme { uuid: [9; 16] }),
            Err(DrmError::BinderDied),
            Err(DrmError::ServerPanic),
            Err(DrmError::BadReply),
            Err(DrmError::Cdm(CdmError::KeyExpired)),
            Err(DrmError::Cdm(CdmError::BadKeybox { reason: "magic mismatch" })),
            Err(DrmError::Cdm(CdmError::NoSuchSession { session_id: 3 })),
            Err(DrmError::Cdm(CdmError::SessionLimit { max: 1024 })),
            Err(DrmError::Cdm(CdmError::Rejected { reason: "revoked".into() })),
            Err(DrmError::Cdm(CdmError::Crypto(wideleak_crypto::CryptoError::NotBlockAligned {
                len: 17,
            }))),
            Err(DrmError::Cdm(CdmError::Tee(TeeError::TrustletNotFound {
                name: "widevine".into(),
            }))),
            Err(DrmError::Wire(WireError::BadCrc { expected: 1, found: 2 })),
            Err(DrmError::Wire(WireError::Malformed { what: "unknown call tag" })),
            Err(DrmError::Timeout { ms: 5000 }),
        ]
    }

    #[test]
    fn every_call_round_trips() {
        for call in sample_calls() {
            let frame = encode_frame(&FrameBody::Call(call.clone()));
            let (body, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(body, FrameBody::Call(call));
        }
    }

    #[test]
    fn every_reply_round_trips() {
        for reply in sample_replies() {
            let frame = encode_frame(&FrameBody::Reply(reply.clone()));
            let (body, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(body, FrameBody::Reply(reply));
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let frame = encode_frame(&FrameBody::Call(DrmCall::OpenSession { nonce: [1; 16] }));
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_detected_before_anything_else() {
        let mut frame = encode_frame(&FrameBody::Call(DrmCall::IsProvisioned));
        frame[0] = b'X';
        assert!(matches!(decode_frame(&frame), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut frame = encode_frame(&FrameBody::Call(DrmCall::IsProvisioned));
        frame[4] = VERSION + 1;
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::UnsupportedVersion { version: VERSION + 1 })
        );
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut frame = encode_frame(&FrameBody::Call(DrmCall::IsProvisioned));
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::Oversized { len: u32::MAX as usize, max: MAX_PAYLOAD })
        );
    }

    #[test]
    fn flipped_bit_fails_the_crc() {
        let frame = encode_frame(&FrameBody::Call(DrmCall::OpenSession { nonce: [1; 16] }));
        for bit in 0..(frame.len() - TRAILER_LEN) * 8 {
            // Skip magic/version bytes — those fail earlier in the taxonomy.
            if bit < 5 * 8 {
                continue;
            }
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match decode_frame(&bad) {
                Err(WireError::BadCrc { .. }) => {}
                // Corrupting the length field moves the frame boundary.
                Err(WireError::Truncated { .. } | WireError::Oversized { .. }) => {
                    assert!((64..96).contains(&bit), "bit {bit} outside the length field");
                }
                other => panic!("bit {bit}: expected a decode error, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_garbage_is_malformed_not_panic() {
        // A structurally perfect frame whose payload is an unknown tag.
        let mut w = Writer::new();
        w.u8(200);
        let payload = w.buf;
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(0);
        frame.extend_from_slice(&[0, 0]);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&frame), Err(WireError::Malformed { what: "unknown call tag" }));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut payload = encode_call(&DrmCall::IsProvisioned);
        payload.push(0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(0);
        frame.extend_from_slice(&[0, 0]);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::Malformed { what: "trailing bytes after payload" })
        );
    }

    /// Builds a frame by hand with an arbitrary version and flags byte
    /// and a correct CRC, so decode paths past the header checks are
    /// reachable.
    fn handmade_frame(version: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(version);
        frame.push(FRAME_TYPE_CALL);
        frame.push(flags);
        frame.push(0);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        frame
    }

    #[test]
    fn v1_frames_still_decode() {
        let frame = handmade_frame(1, 0, &encode_call(&DrmCall::IsProvisioned));
        let (body, ctx, used) = decode_frame_ext(&frame).unwrap();
        assert_eq!(body, FrameBody::Call(DrmCall::IsProvisioned));
        assert_eq!(ctx, None);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn trace_context_rides_the_frame() {
        let ctx = TraceContext { trace_id: 0xfeed, span_id: 0xbeef, parent_span_id: 7 };
        for body in [
            FrameBody::Call(DrmCall::OpenSession { nonce: [3; 16] }),
            FrameBody::Reply(Ok(DrmReply::SessionId(9))),
        ] {
            let frame = encode_frame_with(&body, Some(&ctx));
            let (decoded, got_ctx, used) = decode_frame_ext(&frame).unwrap();
            assert_eq!(decoded, body);
            assert_eq!(got_ctx, Some(ctx));
            assert_eq!(used, frame.len());
            // The plain decoder sees the same body and just drops the context.
            assert_eq!(decode_frame(&frame).unwrap().0, body);
        }
    }

    #[test]
    fn context_frames_cost_exactly_the_context_bytes() {
        let body = FrameBody::Call(DrmCall::IsProvisioned);
        let bare = encode_frame(&body);
        let ctx = TraceContext { trace_id: 1, span_id: 2, parent_span_id: 0 };
        let traced = encode_frame_with(&body, Some(&ctx));
        assert_eq!(traced.len(), bare.len() + TraceContext::WIRE_LEN);
    }

    #[test]
    fn trace_flag_without_room_for_the_context_is_malformed() {
        let frame = handmade_frame(VERSION, FLAG_TRACE_CONTEXT, &[0u8; 8]);
        assert_eq!(
            decode_frame_ext(&frame),
            Err(WireError::Malformed { what: "trace context exceeds payload" })
        );
    }

    #[test]
    fn zero_span_id_context_is_malformed() {
        let mut payload = [0u8; TraceContext::WIRE_LEN + 1].to_vec();
        payload[TraceContext::WIRE_LEN] = 3; // IsProvisioned call tag
        let frame = handmade_frame(VERSION, FLAG_TRACE_CONTEXT, &payload);
        assert_eq!(
            decode_frame_ext(&frame),
            Err(WireError::Malformed { what: "trace context with zero span id" })
        );
    }

    #[test]
    fn unknown_flag_bits_are_malformed() {
        let frame = handmade_frame(VERSION, 0x80, &encode_call(&DrmCall::IsProvisioned));
        assert_eq!(
            decode_frame_ext(&frame),
            Err(WireError::Malformed { what: "unknown header flags" })
        );
    }

    #[test]
    fn v1_frames_never_carry_flags() {
        // A v1 sender's reserved bytes were not validated; even a set
        // bit must not be read as a trace flag on a v1 frame.
        let frame = handmade_frame(1, FLAG_TRACE_CONTEXT, &encode_call(&DrmCall::IsProvisioned));
        let (body, ctx, _) = decode_frame_ext(&frame).unwrap();
        assert_eq!(body, FrameBody::Call(DrmCall::IsProvisioned));
        assert_eq!(ctx, None);
    }

    #[test]
    fn v2_frames_still_decode() {
        let frame = handmade_frame(2, 0, &encode_call(&DrmCall::IsProvisioned));
        let (body, meta, used) = decode_frame_full(&frame).unwrap();
        assert_eq!(body, FrameBody::Call(DrmCall::IsProvisioned));
        assert_eq!(meta, FrameMeta::default());
        assert_eq!(used, frame.len());

        // A v2 frame with a trace context still surfaces it.
        let ctx = TraceContext { trace_id: 5, span_id: 6, parent_span_id: 0 };
        let mut payload = ctx.encode().to_vec();
        payload.extend_from_slice(&encode_call(&DrmCall::IsProvisioned));
        let frame = handmade_frame(2, FLAG_TRACE_CONTEXT, &payload);
        let (_, meta, _) = decode_frame_full(&frame).unwrap();
        assert_eq!(meta.ctx, Some(ctx));
        assert_eq!(meta.request_id, None);
    }

    #[test]
    fn v2_frames_reject_the_request_id_flag() {
        // The request-id bit only exists from v3 on; a v2 sender setting
        // it is claiming a flag its own revision never defined.
        let mut payload = 7u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&encode_call(&DrmCall::IsProvisioned));
        let frame = handmade_frame(2, FLAG_REQUEST_ID, &payload);
        assert_eq!(
            decode_frame_full(&frame),
            Err(WireError::Malformed { what: "unknown header flags" })
        );
    }

    #[test]
    fn request_id_rides_the_frame() {
        let ctx = TraceContext { trace_id: 0xfeed, span_id: 0xbeef, parent_span_id: 7 };
        for body in [
            FrameBody::Call(DrmCall::OpenSession { nonce: [3; 16] }),
            FrameBody::Reply(Ok(DrmReply::SessionId(9))),
        ] {
            for ctx in [None, Some(&ctx)] {
                let frame = encode_frame_full(&body, ctx, Some(0xD00D_F00D_0000_0042));
                assert_eq!(peek_request_id(&frame), Some(0xD00D_F00D_0000_0042));
                let (decoded, meta, used) = decode_frame_full(&frame).unwrap();
                assert_eq!(decoded, body);
                assert_eq!(meta.ctx, ctx.copied());
                assert_eq!(meta.request_id, Some(0xD00D_F00D_0000_0042));
                assert_eq!(used, frame.len());
                // The plain decoder sees the same body and drops the id.
                assert_eq!(decode_frame(&frame).unwrap().0, body);
            }
        }
    }

    #[test]
    fn request_id_frames_cost_exactly_eight_bytes() {
        let body = FrameBody::Call(DrmCall::IsProvisioned);
        let bare = encode_frame(&body);
        let tagged = encode_frame_full(&body, None, Some(1));
        assert_eq!(tagged.len(), bare.len() + 8);
    }

    #[test]
    fn request_id_flag_without_room_is_malformed() {
        let frame = handmade_frame(VERSION, FLAG_REQUEST_ID, &[0u8; 4]);
        assert_eq!(
            decode_frame_full(&frame),
            Err(WireError::Malformed { what: "request id exceeds payload" })
        );
    }

    #[test]
    fn peek_request_id_ignores_frames_without_one() {
        let body = FrameBody::Call(DrmCall::IsProvisioned);
        assert_eq!(peek_request_id(&encode_frame(&body)), None);
        let ctx = TraceContext { trace_id: 1, span_id: 2, parent_span_id: 0 };
        assert_eq!(peek_request_id(&encode_frame_with(&body, Some(&ctx))), None);
        assert_eq!(peek_request_id(&[]), None);
        assert_eq!(peek_request_id(b"WDLK"), None);
        // A v1/v2 frame whose reserved byte happens to carry the bit is
        // not peeked — the flag did not exist in those revisions.
        let mut payload = 9u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&encode_call(&DrmCall::IsProvisioned));
        assert_eq!(peek_request_id(&handmade_frame(2, FLAG_REQUEST_ID, &payload)), None);
    }

    #[test]
    fn frame_len_reports_totals() {
        let frame = encode_frame(&FrameBody::Call(DrmCall::IsProvisioned));
        assert_eq!(frame_len(&frame[..HEADER_LEN]).unwrap(), frame.len());
        assert!(matches!(frame_len(&frame[..4]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn interned_reasons_are_pointer_stable() {
        let a = intern("some reason");
        let b = intern("some reason");
        assert!(std::ptr::eq(a, b), "same contents intern to the same allocation");
    }

    #[test]
    fn decoded_frames_back_to_back_consume_exactly() {
        let a = encode_frame(&FrameBody::Call(DrmCall::IsProvisioned));
        let b = encode_frame(&FrameBody::Reply(Ok(DrmReply::Bool(true))));
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (first, used) = decode_frame(&stream).unwrap();
        assert_eq!(first, FrameBody::Call(DrmCall::IsProvisioned));
        let (second, used2) = decode_frame(&stream[used..]).unwrap();
        assert_eq!(second, FrameBody::Reply(Ok(DrmReply::Bool(true))));
        assert_eq!(used + used2, stream.len());
    }
}
