//! The §V-C "netflix-1080p" experiment: can an attacker who owns the
//! Device RSA Key simply *claim* L1 and receive HD keys?
//!
//! The paper's future-work section observes that on PCs the
//! `netflix-1080p` project obtained HD on L3 "by just modifying the
//! profiles to be sent to the CDN", implying web deployments lack strong
//! level verification. This module forges an L1-claiming license request
//! signed with the recovered Device RSA Key and reports what the license
//! server hands back under two server configurations:
//!
//! - **Android-like** (`verify_attested_level = true`): the server clamps
//!   the claim to the provisioning-time attestation and the attacker stays
//!   at qHD;
//! - **web-like** (`verify_attested_level = false`): the spoof works and
//!   HD keys leak — reproducing the browser result.

use wideleak_bmff::types::KeyId;
use wideleak_cdm::keybox::Keybox;
use wideleak_cdm::messages::{LicenseRequest, LicenseResponse};
use wideleak_cdm::wire::TlvWriter;
use wideleak_cenc::keys::ContentKey;
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_device::catalog::{CdmVersion, DeviceModel, SecurityLevel};
use wideleak_device::net::RemoteEndpoint;
use wideleak_ott::ecosystem::Ecosystem;

use crate::keyladder::recover_content_keys;
use crate::recover::{attack_app_on, ATTACK_TITLE};
use crate::AttackError;

/// What the HD spoof obtained.
#[derive(Debug, Clone)]
pub struct HdSpoofOutcome {
    /// Content keys the forged request yielded.
    pub content_keys: Vec<(KeyId, ContentKey)>,
    /// The highest resolution those keys unlock for the attacked title.
    pub best_height: Option<u32>,
}

impl HdSpoofOutcome {
    /// Whether any HD (above-qHD) key leaked.
    pub fn got_hd_keys(&self) -> bool {
        self.best_height.is_some_and(|h| h > wideleak_ott::content::L3_MAX_HEIGHT)
    }
}

/// Forges an L1-claiming license request for `slug`/`ATTACK_TITLE` using
/// stolen device credentials, sends it to the real license server, and
/// unwraps whatever comes back with the attacker's own ladder.
///
/// # Errors
///
/// Returns [`AttackError::Playback`] when the server refuses outright and
/// ladder errors when unwrapping fails.
pub fn forge_l1_license(
    eco: &Ecosystem,
    slug: &str,
    keybox: &Keybox,
    rsa: &RsaPrivateKey,
    account_token: &str,
) -> Result<HdSpoofOutcome, AttackError> {
    let mut request = LicenseRequest {
        device_id: keybox.device_id().to_vec(),
        content_id: ATTACK_TITLE.to_owned(),
        key_ids: Vec::new(), // ask for everything
        nonce: [0xD5; 16],
        // The forged profile: a current, L1-class client.
        cdm_version: CdmVersion::new(16, 0, 0),
        security_level: SecurityLevel::L1,
        rsa_signature: Vec::new(),
    };
    request.rsa_signature = rsa
        .sign_pkcs1v15_sha256(&request.body_bytes())
        .map_err(|_| AttackError::Ladder { step: "forged request signing" })?;

    let mut w = TlvWriter::new();
    w.string(1, account_token).bytes(2, &request.to_bytes());
    let raw = eco
        .backend()
        .handle(&format!("license/{slug}/{ATTACK_TITLE}"), &w.finish())
        .map_err(|reason| AttackError::Playback { reason })?;
    let response =
        LicenseResponse::parse(&raw).map_err(|_| AttackError::Ladder { step: "response parse" })?;

    // Unwrap with the attacker's own ladder implementation, driven by the
    // response itself (no hooks needed — the attacker built the request).
    let fake_event = wideleak_device::hooks::CallEvent {
        library: "attacker".into(),
        function: "_oecc11_LoadKeys".into(),
        args: vec![response.to_bytes()],
        result: None,
    };
    let content_keys = recover_content_keys(rsa, &[fake_event])?;

    let best_height = content_keys
        .iter()
        .filter_map(|(kid, _)| {
            wideleak_ott::content::RESOLUTIONS.iter().find_map(|&(_, h)| {
                let label = format!("{slug}/{ATTACK_TITLE}/video-{h}");
                (wideleak_ott::content::kid_from_label(&label) == *kid).then_some(h)
            })
        })
        .max();
    Ok(HdSpoofOutcome { content_keys, best_height })
}

/// Runs the complete §V-C experiment against one app on the given
/// ecosystem: first the normal qHD attack (to steal credentials), then
/// the forged-L1 follow-up.
///
/// # Errors
///
/// Propagates the credential-theft failures of the base attack.
pub fn hd_spoof_experiment(eco: &Ecosystem, slug: &str) -> Result<HdSpoofOutcome, AttackError> {
    // Step 1: the standard discontinued-device attack yields the keybox
    // and RSA key. Rerun the instrumented playback to harvest them.
    let base = attack_app_on(eco, slug, DeviceModel::nexus_5());
    if !(base.keybox_recovered && base.rsa_key_recovered) {
        return Err(base.failure.unwrap_or(AttackError::KeyboxNotFound));
    }
    // Re-derive the credentials the same way `attack_app_on` did. The
    // outcome does not carry raw keys (by design), so replay the scan and
    // ladder on a fresh instrumented run.
    let stack = eco.boot_device(DeviceModel::nexus_5(), true);
    let app = eco.install_app(&stack, slug, "hd-spoof-attacker");
    stack.device.hook_engine().start_recording();
    app.play(ATTACK_TITLE).map_err(|e| AttackError::Playback { reason: e.to_string() })?;
    let log = stack.device.hook_engine().stop_recording();
    let memory = stack
        .device
        .scan_drm_process_memory()
        .map_err(|e| AttackError::Instrumentation { reason: e.to_string() })?;
    let keybox = crate::memscan::recover_keybox(memory)?;
    let rsa = crate::keyladder::recover_rsa_key(&keybox, &log)?;

    // Step 2: the forged-L1 request with the stolen credentials.
    let token = eco.accounts().subscribe(slug, "hd-spoof-attacker");
    forge_l1_license(eco, slug, &keybox, &rsa, &token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_ott::ecosystem::EcosystemConfig;

    #[test]
    fn android_like_server_clamps_the_spoof_to_qhd() {
        let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
        let outcome = hd_spoof_experiment(&eco, "netflix").unwrap();
        assert!(!outcome.got_hd_keys(), "attestation check must clamp the claim");
        assert_eq!(outcome.best_height, Some(540));
    }

    #[test]
    fn web_like_server_leaks_hd_keys() {
        let eco = Ecosystem::new(EcosystemConfig {
            verify_attested_level: false,
            ..EcosystemConfig::fast_for_tests()
        });
        let outcome = hd_spoof_experiment(&eco, "netflix").unwrap();
        assert!(outcome.got_hd_keys(), "without attestation the forged L1 claim works");
        assert_eq!(outcome.best_height, Some(1080));
        // And the leaked key really is the packager's 1080p key.
        let label = "netflix/title-001/video-1080";
        let hd_kid = wideleak_ott::content::kid_from_label(label);
        let (_, key) = outcome.content_keys.iter().find(|(kid, _)| *kid == hd_kid).unwrap();
        assert_eq!(*key, wideleak_ott::content::key_from_label(label));
    }
}
