//! The re-implemented Widevine key ladder, driven by hook dumps.
//!
//! "Then, we mimic the rest of the key ladder by intercepting Widevine
//! function arguments to recover derivation buffers and encrypted keys.
//! We implement this key ladder to automatically recover the
//! media-related Content Key." (§IV-D)
//!
//! Nothing here calls into the CDM: every step is the attacker's own
//! crypto (from `wideleak-crypto` / `wideleak-cdm::ladder`) applied to
//! dumped buffers.

use wideleak_bmff::types::KeyId;
use wideleak_cdm::keybox::Keybox;
use wideleak_cdm::ladder::derive_session_keys;
use wideleak_cdm::messages::{LicenseResponse, ProvisioningResponse};
use wideleak_cdm::provisioning::unwrap_rsa_key;
use wideleak_cenc::keys::ContentKey;
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::modes::cbc_decrypt_padded;
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_device::hooks::CallEvent;

use crate::AttackError;

/// Extracts the provisioning response the CDM received, from the
/// `_oecc31_RewrapDeviceRSAKey` argument dump.
pub fn dumped_provisioning_responses(log: &[CallEvent]) -> Vec<ProvisioningResponse> {
    log.iter()
        .filter(|e| e.function.contains("RewrapDeviceRSAKey"))
        .flat_map(|e| e.args.iter())
        .filter_map(|raw| {
            // L3 dumps the response directly; L1 dumps the TLV envelope
            // (nonce + response) — try both framings.
            ProvisioningResponse::parse(raw).ok().or_else(|| {
                let r = wideleak_cdm::wire::TlvReader::parse(raw).ok()?;
                ProvisioningResponse::parse(r.get(2)?).ok()
            })
        })
        .collect()
}

/// Extracts license responses from `_oecc11_LoadKeys` argument dumps.
pub fn dumped_license_responses(log: &[CallEvent]) -> Vec<LicenseResponse> {
    log.iter()
        .filter(|e| e.function.contains("LoadKeys"))
        .flat_map(|e| e.args.iter())
        .filter_map(|raw| {
            LicenseResponse::parse(raw).ok().or_else(|| {
                let r = wideleak_cdm::wire::TlvReader::parse(raw).ok()?;
                LicenseResponse::parse(r.get(2)?).ok()
            })
        })
        .collect()
}

/// Step 2 of the ladder: recovers the Device RSA Key by unwrapping a
/// dumped provisioning response with the scanned keybox.
///
/// # Errors
///
/// Returns [`AttackError::NoProvisioningTraffic`] when nothing was dumped
/// and [`AttackError::Ladder`] when the keybox does not unwrap it.
pub fn recover_rsa_key(keybox: &Keybox, log: &[CallEvent]) -> Result<RsaPrivateKey, AttackError> {
    let responses = dumped_provisioning_responses(log);
    if responses.is_empty() {
        return Err(AttackError::NoProvisioningTraffic);
    }
    responses
        .iter()
        .find_map(|resp| unwrap_rsa_key(keybox.device_key(), keybox.device_id(), None, resp).ok())
        .ok_or(AttackError::Ladder { step: "provisioning response unwrap" })
}

/// Steps 3–4 of the ladder: for every dumped license response, RSA-OAEP
/// unwraps the session key, re-derives the unwrapping key with AES-CMAC,
/// and decrypts every content key.
///
/// # Errors
///
/// Returns [`AttackError::NoLicenseTraffic`] when nothing was dumped and
/// [`AttackError::Ladder`] when no key could be unwrapped.
pub fn recover_content_keys(
    rsa: &RsaPrivateKey,
    log: &[CallEvent],
) -> Result<Vec<(KeyId, ContentKey)>, AttackError> {
    let responses = dumped_license_responses(log);
    if responses.is_empty() {
        return Err(AttackError::NoLicenseTraffic);
    }
    let mut out: Vec<(KeyId, ContentKey)> = Vec::new();
    for resp in &responses {
        let Ok(raw_session) = rsa.decrypt_oaep(&resp.encrypted_session_key) else { continue };
        let Ok(session_key) = <[u8; 16]>::try_from(raw_session.as_slice()) else { continue };
        let keys = derive_session_keys(&session_key, &resp.enc_context, &resp.mac_context);
        let cipher = Aes128::new(&keys.enc_key);
        for entry in &resp.key_entries {
            let Ok(raw) = cbc_decrypt_padded(&cipher, &entry.iv, &entry.encrypted_key) else {
                continue;
            };
            let Ok(key) = <[u8; 16]>::try_from(raw.as_slice()) else { continue };
            if !out.iter().any(|(kid, _)| *kid == entry.kid) {
                out.push((entry.kid, ContentKey(key)));
            }
        }
    }
    if out.is_empty() {
        return Err(AttackError::Ladder { step: "content key unwrap" });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wideleak_cdm::oemcrypto::{L3OemCrypto, OemCrypto};
    use wideleak_device::catalog::CdmVersion;
    use wideleak_device::hooks::HookEngine;
    use wideleak_device::memory::ProcessMemory;
    use wideleak_device::net::RemoteEndpoint;
    use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

    /// Drives a real provisioning + license exchange against the
    /// ecosystem's servers while recording hooks, then checks the ladder
    /// reproduces the CDM's keys offline.
    #[test]
    fn ladder_recovers_keys_from_real_exchange() {
        let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
        let hooks = Arc::new(HookEngine::new());
        let memory = Arc::new(ProcessMemory::new("mediaserver"));
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks.clone(), memory.clone());
        let keybox = eco.trust().issue_keybox("ladder-victim");
        l3.install_keybox(keybox.clone()).unwrap();

        hooks.start_recording();

        // Provisioning through the real server (lenient app).
        let preq = l3.provisioning_request([7; 16]).unwrap();
        let presp = eco
            .backend()
            .handle("provision/netflix", &preq.to_bytes())
            .map(|raw| ProvisioningResponse::parse(&raw).unwrap())
            .unwrap();
        l3.install_rsa_key([7; 16], &presp).unwrap();

        // License through the real server.
        let token = eco.accounts().subscribe("netflix", "victim");
        let sid = l3.open_session([8; 16]).unwrap();
        let lreq = l3.license_request(sid, "title-001", &[]).unwrap();
        let mut w = wideleak_cdm::wire::TlvWriter::new();
        w.string(1, &token).bytes(2, &lreq.to_bytes());
        let lresp_raw = eco.backend().handle("license/netflix/title-001", &w.finish()).unwrap();
        let lresp = LicenseResponse::parse(&lresp_raw).unwrap();
        let loaded = l3.load_license(sid, &lresp).unwrap();
        assert!(!loaded.is_empty());

        let log = hooks.stop_recording();

        // The attack: keybox from memory, ladder from dumps.
        let scanned = crate::memscan::recover_keybox(&memory).unwrap();
        assert_eq!(scanned, keybox);
        let rsa = recover_rsa_key(&scanned, &log).unwrap();
        let keys = recover_content_keys(&rsa, &log).unwrap();
        assert_eq!(keys.len(), loaded.len());
        // The recovered keys decrypt what the packager encrypted.
        for (kid, key) in &keys {
            assert!(loaded.contains(kid));
            let label = "netflix/title-001/video-540";
            if *kid == wideleak_ott::content::kid_from_label(label) {
                assert_eq!(*key, wideleak_ott::content::key_from_label(label));
            }
        }
    }

    #[test]
    fn empty_log_yields_typed_errors() {
        let kb = Keybox::issue(b"x", &[1; 16]);
        assert_eq!(recover_rsa_key(&kb, &[]), Err(AttackError::NoProvisioningTraffic));
    }

    #[test]
    fn wrong_keybox_fails_the_unwrap_step() {
        let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
        let hooks = Arc::new(HookEngine::new());
        let memory = Arc::new(ProcessMemory::new("mediaserver"));
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks.clone(), memory);
        l3.install_keybox(eco.trust().issue_keybox("victim-2")).unwrap();
        hooks.start_recording();
        let preq = l3.provisioning_request([1; 16]).unwrap();
        let raw = eco.backend().handle("provision/netflix", &preq.to_bytes()).unwrap();
        l3.install_rsa_key([1; 16], &ProvisioningResponse::parse(&raw).unwrap()).unwrap();
        let log = hooks.stop_recording();

        let wrong = Keybox::issue(b"not-the-victim", &[9; 16]);
        assert_eq!(
            recover_rsa_key(&wrong, &log),
            Err(AttackError::Ladder { step: "provisioning response unwrap" })
        );
    }
}
