//! The CVE-2021-0639 proof of concept: recovering DRM-free media from a
//! discontinued Widevine L3 device.
//!
//! Reproduces §IV-D of the paper, step by step:
//!
//! 1. [`memscan`] — scan the CDM process's memory for the keybox by its
//!    magic number, validating candidates with the CRC-32 (the insecure
//!    storage is CWE-922);
//! 2. [`keyladder`] — re-implement the proprietary key ladder over the
//!    buffers dumped by the hooks: unwrap the provisioning response with
//!    the keybox to get the Device RSA Key, RSA-OAEP-unwrap the session
//!    key, CMAC-derive the unwrapping key, and decrypt every content key
//!    in the license;
//! 3. [`recover`] — orchestrate a full victim-style playback on the
//!    instrumented device and run the two steps above;
//! 4. [`reconstruct`] — decrypt the downloaded CENC segments with the
//!    recovered keys and re-package them as clear MP4 playable anywhere,
//!    without any OTT account.
//!
//! [`hd_spoof`] additionally reproduces the §V-C future-work experiment:
//! forging an L1-claiming license request with the stolen credentials,
//! which Android-like attestation clamps to qHD and web-like deployments
//! (the netflix-1080p case) do not.
//!
//! The attack succeeds exactly where the paper says it does: apps that
//! still serve discontinued devices through the platform CDM (six of the
//! ten), at qHD (960×540) because L3 never receives HD keys. It fails
//! against L1 devices (no keybox in normal-world memory), against
//! patched CDMs (keybox zeroized), against revocation-enforcing apps (no
//! license to observe), and against Amazon's embedded DRM (no platform
//! CDM traffic at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hd_spoof;
pub mod keyladder;
pub mod memscan;
pub mod reconstruct;
pub mod recover;

use std::fmt;

/// Errors from the attack pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// Memory scanning found no valid keybox.
    KeyboxNotFound,
    /// The hook log held no provisioning response to unwrap.
    NoProvisioningTraffic,
    /// The hook log held no license traffic to replay the ladder on.
    NoLicenseTraffic,
    /// A ladder step failed (wrong keybox, tampered dump...).
    Ladder {
        /// Which step failed.
        step: &'static str,
    },
    /// The victim playback needed for observation failed.
    Playback {
        /// Why.
        reason: String,
    },
    /// Device instrumentation failed.
    Instrumentation {
        /// Why.
        reason: String,
    },
}

impl AttackError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            AttackError::KeyboxNotFound => "keybox_not_found",
            AttackError::NoProvisioningTraffic => "no_provisioning_traffic",
            AttackError::NoLicenseTraffic => "no_license_traffic",
            AttackError::Ladder { .. } => "ladder",
            AttackError::Playback { .. } => "playback",
            AttackError::Instrumentation { .. } => "instrumentation",
        }
    }
}

impl wideleak_faults::ErrorClass for AttackError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::KeyboxNotFound => f.write_str("no valid keybox in scanned memory"),
            AttackError::NoProvisioningTraffic => {
                f.write_str("no provisioning response observed in hook log")
            }
            AttackError::NoLicenseTraffic => f.write_str("no license traffic observed in hook log"),
            AttackError::Ladder { step } => write!(f, "key ladder failed at {step}"),
            AttackError::Playback { reason } => write!(f, "victim playback failed: {reason}"),
            AttackError::Instrumentation { reason } => {
                write!(f, "instrumentation failed: {reason}")
            }
        }
    }
}

impl std::error::Error for AttackError {}
