//! Keybox recovery by memory scanning (CWE-922).
//!
//! The software L3 CDM keeps its keybox in a plain data region of the
//! media server process. The scan looks for the keybox magic number,
//! rewinds to the candidate's start, and validates the 128-byte window
//! with the structure's own CRC-32 — exactly the paper's methodology
//! ("we searched for specific keybox structure (e.g., magic number)").

use wideleak_cdm::keybox::{Keybox, KEYBOX_LEN, KEYBOX_MAGIC};
use wideleak_device::memory::ProcessMemory;

use crate::AttackError;

/// Magic-number offset within the keybox structure.
const MAGIC_OFFSET: usize = 120;

/// Scans a process's memory for valid keyboxes.
///
/// Returns every distinct validated keybox (a device has one, but a scan
/// over a dirty heap can surface stale copies).
pub fn scan_for_keyboxes(memory: &ProcessMemory) -> Vec<Keybox> {
    let mut found = Vec::new();
    for (region, magic_offset) in memory.scan(&KEYBOX_MAGIC) {
        let Some(start) = magic_offset.checked_sub(MAGIC_OFFSET) else { continue };
        let Some(window) = memory.read(region, start, KEYBOX_LEN) else { continue };
        if let Ok(keybox) = Keybox::parse(&window) {
            if !found.contains(&keybox) {
                found.push(keybox);
            }
        }
    }
    found
}

/// Scans and returns the device keybox, or the canonical failure.
///
/// # Errors
///
/// Returns [`AttackError::KeyboxNotFound`] when no candidate validates.
pub fn recover_keybox(memory: &ProcessMemory) -> Result<Keybox, AttackError> {
    scan_for_keyboxes(memory).into_iter().next().ok_or(AttackError::KeyboxNotFound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keybox() -> Keybox {
        Keybox::issue(b"memscan-target", &[0xA5; 16])
    }

    #[test]
    fn finds_keybox_amid_noise() {
        let mem = ProcessMemory::new("mediaserver");
        let mut region = vec![0x11u8; 500];
        region.extend_from_slice(&keybox().to_bytes());
        region.extend(vec![0x22u8; 300]);
        mem.map_region("libwvdrmengine.so:.data", region);
        assert_eq!(recover_keybox(&mem).unwrap(), keybox());
    }

    #[test]
    fn rejects_magic_without_valid_crc() {
        let mem = ProcessMemory::new("p");
        // A decoy: magic bytes with garbage around them.
        let mut region = vec![0u8; 120];
        region.extend_from_slice(&KEYBOX_MAGIC);
        region.extend(vec![0u8; 100]);
        mem.map_region("heap", region);
        assert_eq!(recover_keybox(&mem), Err(AttackError::KeyboxNotFound));
    }

    #[test]
    fn magic_too_close_to_region_start_is_skipped() {
        let mem = ProcessMemory::new("p");
        // Magic at offset 10: cannot rewind 120 bytes.
        let mut region = vec![0u8; 10];
        region.extend_from_slice(&KEYBOX_MAGIC);
        mem.map_region("heap", region);
        assert!(scan_for_keyboxes(&mem).is_empty());
    }

    #[test]
    fn finds_multiple_distinct_keyboxes() {
        let mem = ProcessMemory::new("p");
        let kb_a = Keybox::issue(b"device-a", &[1; 16]);
        let kb_b = Keybox::issue(b"device-b", &[2; 16]);
        let mut region = kb_a.to_bytes().to_vec();
        region.extend_from_slice(&kb_b.to_bytes());
        // A duplicate of the first: deduplicated.
        region.extend_from_slice(&kb_a.to_bytes());
        mem.map_region("heap", region);
        let found = scan_for_keyboxes(&mem);
        assert_eq!(found.len(), 2);
        assert!(found.contains(&kb_a) && found.contains(&kb_b));
    }

    #[test]
    fn empty_memory_yields_nothing() {
        let mem = ProcessMemory::new("p");
        assert_eq!(recover_keybox(&mem), Err(AttackError::KeyboxNotFound));
    }

    #[test]
    fn zeroized_keybox_is_not_found() {
        let mem = ProcessMemory::new("p");
        let r = mem.map_region("heap", keybox().to_bytes().to_vec());
        mem.zeroize(r, 0, KEYBOX_LEN);
        assert_eq!(recover_keybox(&mem), Err(AttackError::KeyboxNotFound));
    }
}
