//! DRM-free media reconstruction.
//!
//! With recovered content keys the attacker decrypts the CENC segments
//! straight from the CDN (no CDM, no account needed for the asset
//! fetches) and repackages them as clear fragmented MP4 — "we reconstruct
//! the pirated media and play it on another device (i.e., personal
//! computer) without any OTT account" (§IV-D).

use wideleak_bmff::fragment::{InitSegment, MediaSegment, TrackKind};
use wideleak_bmff::types::KeyId;
use wideleak_cenc::keys::{ContentKey, KeyStore, MemoryKeyStore};
use wideleak_cenc::track::{clear_segment, decrypt_segment};
use wideleak_dash::mpd::{ContentType, Mpd};
use wideleak_device::net::RemoteEndpoint;

use crate::AttackError;

/// One reconstructed, DRM-free track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClearTrack {
    /// Representation id the track came from.
    pub rep_id: String,
    /// Resolution for video tracks.
    pub resolution: Option<(u32, u32)>,
    /// The decrypted samples.
    pub samples: Vec<Vec<u8>>,
    /// The repackaged clear MP4 byte stream (init + segments).
    pub clear_mp4: Vec<u8>,
}

/// The full reconstructed media for one title.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReconstructedMedia {
    /// Every track that decrypted successfully.
    pub tracks: Vec<ClearTrack>,
}

impl ReconstructedMedia {
    /// The best video resolution recovered (the paper's qHD ceiling check).
    pub fn best_resolution(&self) -> Option<(u32, u32)> {
        self.tracks.iter().filter_map(|t| t.resolution).max_by_key(|&(_, h)| h)
    }

    /// Whether any track at all was recovered.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

/// Downloads one representation and decrypts it with the recovered keys.
///
/// Returns `None` when the needed key is missing (e.g. HD renditions the
/// L3 license never contained) or the track fails to decrypt.
fn reconstruct_rep(
    endpoint: &dyn RemoteEndpoint,
    keys: &dyn KeyStore,
    rep_id: &str,
    resolution: Option<(u32, u32)>,
    init_url: &str,
    segment_urls: &[String],
) -> Option<ClearTrack> {
    let init_bytes = endpoint.handle(init_url, &[]).ok()?;
    let init = InitSegment::from_bytes(&init_bytes).ok()?;
    if let Some(tenc) = &init.tenc {
        // Without the key, skip (the qHD cap in action for HD renditions).
        keys.key_for(&KeyId(tenc.default_kid.0))?;
    }
    let mut samples = Vec::new();
    let mut clear_segments = Vec::new();
    for (i, url) in segment_urls.iter().enumerate() {
        let seg_bytes = endpoint.handle(url, &[]).ok()?;
        let seg = MediaSegment::from_bytes(&seg_bytes).ok()?;
        let decrypted = decrypt_segment(&init, &seg, keys).ok()?;
        clear_segments.push(clear_segment(init.track_id, (i + 1) as u32, &decrypted));
        samples.extend(decrypted);
    }
    // Repackage: a clear init segment plus clear media segments.
    let clear_init = InitSegment::clear(init.track_id, init.kind);
    let mut clear_mp4 = clear_init.to_bytes();
    for seg in &clear_segments {
        clear_mp4.extend(seg.to_bytes());
    }
    Some(ClearTrack { rep_id: rep_id.to_owned(), resolution, samples, clear_mp4 })
}

/// Reconstructs every track of an MPD that the recovered keys unlock.
///
/// # Errors
///
/// Returns [`AttackError::Ladder`] when *nothing* could be reconstructed.
pub fn reconstruct_media(
    endpoint: &dyn RemoteEndpoint,
    mpd: &Mpd,
    recovered: &[(KeyId, ContentKey)],
) -> Result<ReconstructedMedia, AttackError> {
    let keys: MemoryKeyStore = recovered.iter().copied().collect();
    let mut media = ReconstructedMedia::default();
    for set in mpd.adaptation_sets() {
        if set.content_type == ContentType::Text {
            continue; // subtitles are clear; nothing to reconstruct
        }
        for rep in &set.representations {
            if rep.init_url.is_empty() {
                continue;
            }
            if let Some(track) = reconstruct_rep(
                endpoint,
                &keys,
                &rep.id,
                rep.resolution,
                &rep.init_url,
                &rep.segment_urls,
            ) {
                media.tracks.push(track);
            }
        }
    }
    if media.is_empty() {
        return Err(AttackError::Ladder { step: "media reconstruction" });
    }
    Ok(media)
}

/// "Plays" a reconstructed track on another device: parses the clear MP4
/// with nothing but the container parser and returns the samples. Any
/// player could do this — no DRM stack involved.
///
/// # Errors
///
/// Returns [`AttackError::Ladder`] when the byte stream is not valid
/// clear MP4.
pub fn play_on_another_device(track: &ClearTrack) -> Result<Vec<Vec<u8>>, AttackError> {
    let boxes = wideleak_bmff::Mp4Box::parse_sequence(&track.clear_mp4)
        .map_err(|_| AttackError::Ladder { step: "clear MP4 parse" })?;
    // Split the stream back into init + media segments by moof markers.
    let mut samples = Vec::new();
    let mut i = 0;
    while i < boxes.len() {
        if boxes[i].typ == wideleak_bmff::FourCc(*b"moof") {
            let mut bytes = boxes[i].to_bytes();
            if let Some(mdat) = boxes.get(i + 1) {
                bytes.extend(mdat.to_bytes());
            }
            let seg = MediaSegment::from_bytes(&bytes)
                .map_err(|_| AttackError::Ladder { step: "clear segment parse" })?;
            if seg.senc.is_some() {
                return Err(AttackError::Ladder { step: "clear MP4 still has senc" });
            }
            samples.extend(
                seg.samples()
                    .map_err(|_| AttackError::Ladder { step: "clear sample split" })?
                    .into_iter()
                    .map(<[u8]>::to_vec),
            );
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(samples)
}

/// Convenience: the init-segment track kind of a clear track (parsed back
/// from the repackaged bytes).
pub fn track_kind(track: &ClearTrack) -> Option<TrackKind> {
    let boxes = wideleak_bmff::Mp4Box::parse_sequence(&track.clear_mp4).ok()?;
    let hdlr = wideleak_bmff::find_in(&boxes, wideleak_bmff::FourCc(*b"hdlr"))?;
    let bytes: [u8; 4] = hdlr.payload()?.get(..4)?.try_into().ok()?;
    TrackKind::from_handler(wideleak_bmff::FourCc(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_device::net::RemoteEndpoint;
    use wideleak_ott::content::{key_from_label, kid_from_label, synth_samples, TrackSelector};
    use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

    fn eco() -> Ecosystem {
        Ecosystem::new(EcosystemConfig::fast_for_tests())
    }

    fn hulu_mpd(eco: &Ecosystem) -> Mpd {
        // Build it the way the monitor would: straight from the backend's
        // CDN behaviour (hulu hides kids, but URLs are all there).
        let token = eco.accounts().subscribe("hulu", "recon-test");
        let raw = eco.backend().handle("manifest/hulu/title-001", token.as_bytes()).unwrap();
        Mpd::parse(&String::from_utf8(raw).unwrap()).unwrap()
    }

    fn hulu_540_keys() -> Vec<(KeyId, ContentKey)> {
        let label = "hulu/title-001/video-540";
        vec![(kid_from_label(label), key_from_label(label))]
    }

    #[test]
    fn reconstructs_only_what_keys_unlock() {
        let eco = eco();
        let mpd = hulu_mpd(&eco);
        let media = reconstruct_media(eco.backend().as_ref(), &mpd, &hulu_540_keys()).unwrap();
        // 540p video + audio (shared key) unlock; 720/1080 do not.
        assert_eq!(media.best_resolution(), Some((960, 540)), "qHD ceiling");
        let rep_ids: Vec<&str> = media.tracks.iter().map(|t| t.rep_id.as_str()).collect();
        assert!(rep_ids.contains(&"video-540p"));
        assert!(rep_ids.contains(&"audio-en"), "shared key unlocks audio too: {rep_ids:?}");
        assert!(!rep_ids.contains(&"video-720p"));
        assert!(!rep_ids.contains(&"video-1080p"));
    }

    #[test]
    fn reconstructed_samples_match_the_original_plaintext() {
        let eco = eco();
        let mpd = hulu_mpd(&eco);
        let media = reconstruct_media(eco.backend().as_ref(), &mpd, &hulu_540_keys()).unwrap();
        let video = media.tracks.iter().find(|t| t.rep_id == "video-540p").unwrap();
        let expected: Vec<Vec<u8>> = (1..=wideleak_ott::content::SEGMENTS_PER_REP)
            .flat_map(|seg| {
                synth_samples("hulu", "title-001", &TrackSelector::Video { height: 540 }, seg)
            })
            .collect();
        assert_eq!(video.samples, expected);
    }

    #[test]
    fn clear_mp4_plays_anywhere() {
        let eco = eco();
        let mpd = hulu_mpd(&eco);
        let media = reconstruct_media(eco.backend().as_ref(), &mpd, &hulu_540_keys()).unwrap();
        for track in &media.tracks {
            let replayed = play_on_another_device(track).unwrap();
            assert_eq!(replayed, track.samples, "{}", track.rep_id);
        }
        let video = media.tracks.iter().find(|t| t.rep_id == "video-540p").unwrap();
        assert_eq!(track_kind(video), Some(TrackKind::Video));
    }

    #[test]
    fn no_keys_means_no_media() {
        let eco = eco();
        let mpd = hulu_mpd(&eco);
        assert_eq!(
            reconstruct_media(eco.backend().as_ref(), &mpd, &[]),
            Err(AttackError::Ladder { step: "media reconstruction" })
        );
    }
}
