//! The orchestrated end-to-end attack against one app on a discontinued
//! device.
//!
//! The attacker controls the handset (rooted), owns a valid subscription,
//! and wants DRM-free media. Pipeline: instrument → victim-style playback
//! → memory scan → ladder → reconstruction.

use std::sync::Arc;

use wideleak_bmff::types::KeyId;
use wideleak_cenc::keys::ContentKey;
use wideleak_dash::mpd::Mpd;
use wideleak_device::catalog::DeviceModel;
use wideleak_device::net::Interceptor;
use wideleak_monitor::{netcap, trace};
use wideleak_ott::ecosystem::Ecosystem;

use crate::keyladder::{recover_content_keys, recover_rsa_key};
use crate::memscan::recover_keybox;
use crate::reconstruct::{reconstruct_media, ReconstructedMedia};
use crate::AttackError;

/// The outcome of attacking one app.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// App display name.
    pub app_name: String,
    /// Whether a keybox was scanned out of process memory.
    pub keybox_recovered: bool,
    /// Whether the Device RSA Key was unwrapped.
    pub rsa_key_recovered: bool,
    /// The content keys recovered through the ladder.
    pub content_keys: Vec<(KeyId, ContentKey)>,
    /// The reconstructed media, when the pipeline completed.
    pub media: Option<ReconstructedMedia>,
    /// The terminal failure, when it did not.
    pub failure: Option<AttackError>,
}

impl AttackOutcome {
    /// Whether DRM-free media was obtained.
    pub fn succeeded(&self) -> bool {
        self.media.as_ref().is_some_and(|m| !m.is_empty())
    }

    fn failed(app_name: String, keybox: bool, rsa: bool, failure: AttackError) -> Self {
        wideleak_faults::record_error("attack.error", &failure);
        AttackOutcome {
            app_name,
            keybox_recovered: keybox,
            rsa_key_recovered: rsa,
            content_keys: Vec::new(),
            media: None,
            failure: Some(failure),
        }
    }
}

/// The attack title (same catalog entry the study uses).
pub const ATTACK_TITLE: &str = "title-001";

/// Runs the full attack against one app on the given device model
/// (the paper uses the Nexus-5-class configuration; passing an L1 model
/// demonstrates why the attack fails there).
///
/// The returned outcome is descriptive rather than an `Err` for expected
/// defense-driven failures, so callers can tabulate results per app.
pub fn attack_app_on(eco: &Ecosystem, slug: &str, model: DeviceModel) -> AttackOutcome {
    let _span = wideleak_telemetry::span!("attack.app", app = slug);
    let profile = match eco.profile(slug) {
        Some(p) => p.clone(),
        None => {
            return AttackOutcome::failed(
                slug.to_owned(),
                false,
                false,
                AttackError::Playback { reason: format!("unknown app {slug}") },
            )
        }
    };
    let app_name = profile.name.to_owned();

    // Instrumented, rooted device.
    let stack = eco.boot_device(model, true);
    let app = eco.install_app(&stack, slug, "attacker-subscription");
    let proxy = Arc::new(Interceptor::new());
    stack.device.network().attach_interceptor(proxy.clone());
    if let Err(e) = stack.device.apply_ssl_repinning_bypass() {
        return AttackOutcome::failed(
            app_name,
            false,
            false,
            AttackError::Instrumentation { reason: e.to_string() },
        );
    }
    stack.device.hook_engine().start_recording();

    // Victim-style playback (the attacker *is* a paying subscriber).
    let playback_span = wideleak_telemetry::span!("attack.stage.playback", app = slug);
    let play_result = app.play(ATTACK_TITLE);
    let log = stack.device.hook_engine().stop_recording();
    let capture = proxy.captured();
    drop(playback_span);

    if let Err(e) = play_result {
        return AttackOutcome::failed(
            app_name,
            false,
            false,
            AttackError::Playback { reason: e.to_string() },
        );
    }

    // Step 1: keybox from process memory (CWE-922).
    let memscan_span = wideleak_telemetry::span!("attack.stage.memscan", app = slug);
    let memory = match stack.device.scan_drm_process_memory() {
        Ok(m) => m,
        Err(e) => {
            return AttackOutcome::failed(
                app_name,
                false,
                false,
                AttackError::Instrumentation { reason: e.to_string() },
            )
        }
    };
    let keybox = match recover_keybox(memory) {
        Ok(kb) => kb,
        Err(e) => return AttackOutcome::failed(app_name, false, false, e),
    };
    drop(memscan_span);

    // Step 2: Device RSA Key from the dumped provisioning response.
    let rsa = {
        let _s = wideleak_telemetry::span!("attack.stage.recover_rsa_key", app = slug);
        match recover_rsa_key(&keybox, &log) {
            Ok(k) => k,
            Err(e) => return AttackOutcome::failed(app_name, true, false, e),
        }
    };

    // Steps 3–4: content keys from the dumped license traffic.
    let content_keys = {
        let _s = wideleak_telemetry::span!("attack.stage.recover_content_keys", app = slug);
        match recover_content_keys(&rsa, &log) {
            Ok(k) => k,
            Err(e) => return AttackOutcome::failed(app_name, true, true, e),
        }
    };

    // Step 5: fetch the manifest like the monitor does (plaintext capture
    // or generic-decrypt dump) and reconstruct DRM-free media.
    let _reconstruct_span = wideleak_telemetry::span!("attack.stage.reconstruct", app = slug);
    let mpd: Option<Mpd> =
        netcap::find_mpd(&capture).or_else(|| trace::recover_mpd_from_trace(&log));
    let Some(mpd) = mpd else {
        return AttackOutcome::failed(
            app_name,
            true,
            true,
            AttackError::Playback { reason: "no manifest observable".into() },
        );
    };
    match reconstruct_media(eco.backend().as_ref(), &mpd, &content_keys) {
        Ok(media) => AttackOutcome {
            app_name,
            keybox_recovered: true,
            rsa_key_recovered: true,
            content_keys,
            media: Some(media),
            failure: None,
        },
        Err(e) => {
            let mut outcome = AttackOutcome::failed(app_name, true, true, e);
            outcome.content_keys = content_keys;
            outcome
        }
    }
}

/// Attacks one app on the canonical discontinued device.
pub fn attack_app(eco: &Ecosystem, slug: &str) -> AttackOutcome {
    attack_app_on(eco, slug, DeviceModel::nexus_5())
}

/// Attacks every evaluated app on the discontinued device, in Table-I
/// order — the paper's practical-impact sweep.
pub fn attack_all(eco: &Ecosystem) -> Vec<AttackOutcome> {
    eco.profiles().to_vec().iter().map(|p| attack_app(eco, p.slug)).collect()
}

/// §IV-D: "OTT apps use the same keys for all their subscribers for a
/// given media." Runs the attack twice under different accounts and
/// compares the recovered key sets.
pub fn keys_identical_across_subscribers(eco: &Ecosystem, slug: &str) -> bool {
    let a = attack_app(eco, slug);
    let b = attack_app(eco, slug);
    if !(a.succeeded() && b.succeeded()) {
        return false;
    }
    let mut ka = a.content_keys;
    let mut kb = b.content_keys;
    ka.sort_by_key(|(kid, _)| kid.0);
    kb.sort_by_key(|(kid, _)| kid.0);
    ka == kb
}
