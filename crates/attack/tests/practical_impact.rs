//! §IV-D practical impact: the attack sweep across all ten apps must
//! match the paper — DRM-free media from exactly the six apps that keep
//! serving discontinued devices through the platform CDM, at qHD.

use wideleak_attack::recover::{attack_all, attack_app_on, keys_identical_across_subscribers};
use wideleak_attack::AttackError;
use wideleak_device::catalog::DeviceModel;
use wideleak_device::net::RemoteEndpoint;
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

fn eco() -> Ecosystem {
    Ecosystem::new(EcosystemConfig::fast_for_tests())
}

#[test]
fn attack_succeeds_on_exactly_the_papers_six_apps() {
    let eco = eco();
    let outcomes = attack_all(&eco);
    assert_eq!(outcomes.len(), 10);

    let succeeded: Vec<&str> =
        outcomes.iter().filter(|o| o.succeeded()).map(|o| o.app_name.as_str()).collect();
    assert_eq!(
        succeeded,
        vec!["Netflix", "Hulu", "myCANAL", "Showtime", "OCS", "Salto"],
        "six apps, including Netflix, Hulu and Showtime"
    );

    // The three revocation enforcers fail at playback (nothing to observe).
    for name in ["Disney+", "HBO Max", "Starz"] {
        let o = outcomes.iter().find(|o| o.app_name == name).unwrap();
        assert!(!o.succeeded());
        assert!(matches!(o.failure, Some(AttackError::Playback { .. })), "{name}: {:?}", o.failure);
    }

    // Amazon plays via its embedded DRM: the platform hooks see no
    // license traffic and the pipeline stalls after the keybox.
    let amazon = outcomes.iter().find(|o| o.app_name == "Amazon Prime Video").unwrap();
    assert!(!amazon.succeeded());
    assert!(amazon.keybox_recovered, "the platform keybox still leaks");
    assert!(
        matches!(amazon.failure, Some(AttackError::NoProvisioningTraffic)),
        "{:?}",
        amazon.failure
    );
}

#[test]
fn recovered_media_is_capped_at_qhd() {
    let eco = eco();
    for outcome in attack_all(&eco).into_iter().filter(|o| o.succeeded()) {
        let media = outcome.media.unwrap();
        assert_eq!(
            media.best_resolution(),
            Some((960, 540)),
            "{}: L3 keys never unlock HD",
            outcome.app_name
        );
    }
}

#[test]
fn attack_fails_against_l1_devices() {
    // The keybox lives in the TEE: nothing to scan.
    let eco = eco();
    let outcome = attack_app_on(&eco, "netflix", DeviceModel::pixel_6());
    assert!(!outcome.succeeded());
    assert!(!outcome.keybox_recovered);
    assert_eq!(outcome.failure, Some(AttackError::KeyboxNotFound));
}

#[test]
fn same_keys_served_to_all_subscribers() {
    // §IV-D: recovered keys are account-independent.
    let eco = eco();
    assert!(keys_identical_across_subscribers(&eco, "showtime"));
}

#[test]
fn clear_audio_needs_no_attack_at_all() {
    // The Netflix finding: audio plays anywhere without an account. Fetch
    // it straight from the CDN with no credentials and no keys.
    let eco = eco();
    let init = eco.backend().handle("asset/netflix/title-001/audio-en/init", &[]).unwrap();
    let parsed = wideleak_bmff::fragment::InitSegment::from_bytes(&init).unwrap();
    assert!(!parsed.is_protected());
    let seg_bytes = eco.backend().handle("asset/netflix/title-001/audio-en/seg/1", &[]).unwrap();
    let seg = wideleak_bmff::fragment::MediaSegment::from_bytes(&seg_bytes).unwrap();
    assert!(seg.senc.is_none());
    assert!(!seg.samples().unwrap().is_empty());
}
