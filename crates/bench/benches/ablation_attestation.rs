//! A3 — ablation: security-level attestation at the license server.
//!
//! Reproduces the paper's §V-C observation: the `netflix-1080p` browser
//! exploit got HD on L3 because web deployments do not strongly verify
//! the claimed security level. With Android-like attestation the forged
//! L1 claim is clamped to qHD; without it HD keys leak.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench ablation_attestation
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::attack::hd_spoof::hd_spoof_experiment;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak_bench::bench_config;

fn eco(verify: bool) -> Ecosystem {
    Ecosystem::new(EcosystemConfig { verify_attested_level: verify, ..bench_config() })
}

fn bench_ablation(c: &mut Criterion) {
    eprintln!("\n=== Ablation A3: attested-level verification vs the forged-L1 spoof ===\n");
    let android = eco(true);
    let web = eco(false);
    let android_outcome = hd_spoof_experiment(&android, "netflix").expect("spoof runs");
    let web_outcome = hd_spoof_experiment(&web, "netflix").expect("spoof runs");
    eprintln!("forged L1 license request from stolen L3 credentials:");
    eprintln!(
        "  Android-like server (attestation on) : best height {:?}, HD leaked: {}",
        android_outcome.best_height,
        android_outcome.got_hd_keys()
    );
    eprintln!(
        "  web-like server (attestation off)    : best height {:?}, HD leaked: {}\n",
        web_outcome.best_height,
        web_outcome.got_hd_keys()
    );

    let mut group = c.benchmark_group("ablation_attestation");
    group.sample_size(10);
    group.bench_function("hd_spoof/attested", |b| {
        b.iter(|| hd_spoof_experiment(&android, "netflix").unwrap());
    });
    group.bench_function("hd_spoof/unverified", |b| {
        b.iter(|| hd_spoof_experiment(&web, "netflix").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
