//! A2 — ablation: key-usage policy versus the blast radius of a single
//! content-key compromise.
//!
//! Under the widespread "minimal" practice the audio track shares the
//! lowest video key, so one leaked key unlocks two asset classes; under
//! the recommended policy it unlocks one. This bench counts the assets a
//! single recovered key decrypts under each policy and measures the
//! reconstruction cost.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench ablation_key_policy
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::attack::reconstruct::reconstruct_media;
use wideleak::dash::mpd::Mpd;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::apps::evaluated_apps;
use wideleak::ott::content::{demo_catalog, key_from_label, kid_from_label, AudioProtection};
use wideleak::ott::ecosystem::Ecosystem;
use wideleak_bench::bench_config;

fn fleet_with_audio(policy: AudioProtection) -> Ecosystem {
    let mut profiles = evaluated_apps();
    for p in &mut profiles {
        p.audio = policy;
        p.metadata_kids_visible = true; // observe everything in the ablation
    }
    Ecosystem::with_profiles(bench_config(), profiles, demo_catalog())
}

fn manifest(eco: &Ecosystem, slug: &str) -> Mpd {
    let token = eco.accounts().subscribe(slug, "ablation");
    let raw = eco
        .backend()
        .handle(&format!("manifest/{slug}/title-001"), token.as_bytes())
        .expect("manifest");
    Mpd::parse(&String::from_utf8(raw).unwrap()).unwrap()
}

/// Assets decryptable with *only* the leaked 540p video key.
fn blast_radius(eco: &Ecosystem, slug: &str) -> usize {
    let label = format!("{slug}/title-001/video-540");
    let keys = vec![(kid_from_label(&label), key_from_label(&label))];
    let mpd = manifest(eco, slug);
    reconstruct_media(eco.backend().as_ref(), &mpd, &keys).map(|m| m.tracks.len()).unwrap_or(0)
}

fn bench_ablation(c: &mut Criterion) {
    eprintln!("\n=== Ablation A2: key policy vs blast radius of one leaked key ===\n");
    let shared = fleet_with_audio(AudioProtection::SharedKeyWithVideo);
    let distinct = fleet_with_audio(AudioProtection::DistinctKey);
    let clear = fleet_with_audio(AudioProtection::Clear);
    eprintln!("assets unlocked by leaking ONLY the 540p video key (hulu):");
    eprintln!("  minimal policy (shared audio key) : {}", blast_radius(&shared, "hulu"));
    eprintln!("  recommended policy (distinct key) : {}", blast_radius(&distinct, "hulu"));
    eprintln!(
        "  clear audio policy                : {} (audio needs no key at all)\n",
        blast_radius(&clear, "hulu")
    );

    let mut group = c.benchmark_group("ablation_key_policy");
    group.sample_size(10);
    group.bench_function("blast_radius/minimal", |b| {
        b.iter(|| blast_radius(&shared, "hulu"));
    });
    group.bench_function("blast_radius/recommended", |b| {
        b.iter(|| blast_radius(&distinct, "hulu"));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
