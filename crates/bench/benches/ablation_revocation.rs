//! A1 — ablation: revocation enforced versus ignored.
//!
//! Takes the real app population and flips every app's
//! `enforce_revocation` bit both ways, measuring the attack success rate
//! across the fleet. This quantifies the paper's conclusion: "OTT apps
//! must strictly abide to Widevine revocation rules to avoid piracy."
//!
//! ```text
//! cargo bench -p wideleak-bench --bench ablation_revocation
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::attack::recover::attack_all;
use wideleak::ott::apps::evaluated_apps;
use wideleak::ott::content::demo_catalog;
use wideleak::ott::ecosystem::Ecosystem;
use wideleak_bench::bench_config;

fn fleet_with_enforcement(enforce: Option<bool>) -> Ecosystem {
    let mut profiles = evaluated_apps();
    if let Some(flag) = enforce {
        for p in &mut profiles {
            p.enforce_revocation = flag;
        }
    }
    Ecosystem::with_profiles(bench_config(), profiles, demo_catalog())
}

fn success_rate(eco: &Ecosystem) -> usize {
    attack_all(eco).iter().filter(|o| o.succeeded()).count()
}

fn bench_ablation(c: &mut Criterion) {
    eprintln!("\n=== Ablation A1: revocation enforcement vs attack success ===\n");
    let as_measured = success_rate(&fleet_with_enforcement(None));
    let none_enforce = success_rate(&fleet_with_enforcement(Some(false)));
    let all_enforce = success_rate(&fleet_with_enforcement(Some(true)));
    eprintln!("apps compromised (out of 10):");
    eprintln!("  as measured in the paper      : {as_measured}  (3 enforce, Amazon embedded)");
    eprintln!(
        "  nobody enforces revocation    : {none_enforce}  (only Amazon's embedded DRM resists)"
    );
    eprintln!(
        "  everybody enforces revocation : {all_enforce}  (the discontinued device is useless)\n"
    );

    let mut group = c.benchmark_group("ablation_revocation");
    group.sample_size(10);
    group.bench_function("attack_fleet/as_measured", |b| {
        let eco = fleet_with_enforcement(None);
        b.iter(|| attack_all(&eco));
    });
    group.bench_function("attack_fleet/all_enforcing", |b| {
        let eco = fleet_with_enforcement(Some(true));
        b.iter(|| attack_all(&eco));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
