//! P2 — CENC segment encryption/decryption throughput: `cenc` (AES-CTR)
//! versus `cbcs` (AES-CBC 1:9 pattern).
//!
//! The cbcs pattern touches only 1 block in 10, so its throughput should
//! exceed cenc's on large samples — a shape worth pinning. Both schemes
//! now expand the AES key schedule once per segment and the CTR path
//! generates keystream in batched block chunks; the MB/s figures land in
//! `BENCH_cenc_throughput.json` so successive PRs can read the
//! trajectory.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench cenc_throughput [-- --quick]
//! ```

use std::time::Instant;

use wideleak::bmff::fragment::{InitSegment, TrackKind};
use wideleak::bmff::types::{KeyId, Tenc};
use wideleak::cenc::keys::{ContentKey, MemoryKeyStore};
use wideleak::cenc::track::{decrypt_segment, encrypt_segment, Scheme};
use wideleak_bench::BenchReport;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Median wall time of `iters` runs of `f`, in seconds.
fn time_s<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let iters = if quick_mode() { 3 } else { 20 };
    let key = ContentKey([0x11; 16]);
    let kid = KeyId([0x22; 16]);

    println!("cenc_throughput: {iters} timed iterations per row (median reported)");
    println!("{:>24} {:>10} {:>10}", "segment op", "ms", "MB/s");

    let mut report = BenchReport::new("cenc_throughput");
    report
        .label("mode", if quick_mode() { "quick" } else { "full" })
        .label("iters", iters.to_string());

    for size in [64 * 1024usize, 1 << 20] {
        // One big sample per segment, the worst case for per-sample setup.
        let samples = vec![vec![0xCDu8; size]];
        let kib = size / 1024;

        for (scheme, tenc) in
            [(Scheme::Cenc, Tenc::cenc(kid)), (Scheme::Cbcs, Tenc::cbcs(kid, [3; 16]))]
        {
            let label = match scheme {
                Scheme::Cenc => "cenc",
                Scheme::Cbcs => "cbcs",
            };

            let secs = time_s(iters, || {
                encrypt_segment(scheme, &key, &tenc, TrackKind::Video, 1, 1, &samples, 7).unwrap()
            });
            let mbs = size as f64 / secs / 1e6;
            println!(
                "{:>24} {:>10.3} {:>10.1}",
                format!("encrypt/{label}/{kib}KiB"),
                secs * 1e3,
                mbs
            );
            report.metric(format!("encrypt.{label}.{kib}kib.mb_per_s"), mbs);

            let init =
                InitSegment::protected(1, TrackKind::Video, scheme.fourcc(), tenc.clone(), vec![]);
            let seg =
                encrypt_segment(scheme, &key, &tenc, TrackKind::Video, 1, 1, &samples, 7).unwrap();
            let mut store = MemoryKeyStore::new();
            store.insert(kid, key);

            let secs = time_s(iters, || decrypt_segment(&init, &seg, &store).unwrap());
            let mbs = size as f64 / secs / 1e6;
            println!(
                "{:>24} {:>10.3} {:>10.1}",
                format!("decrypt/{label}/{kib}KiB"),
                secs * 1e3,
                mbs
            );
            report.metric(format!("decrypt.{label}.{kib}kib.mb_per_s"), mbs);
        }
    }
    report.write();
}
