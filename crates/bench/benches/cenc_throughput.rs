//! P2 — CENC segment encryption/decryption throughput: `cenc` (AES-CTR)
//! versus `cbcs` (AES-CBC 1:9 pattern).
//!
//! The cbcs pattern touches only 1 block in 10, so its throughput should
//! exceed cenc's on large samples — a shape worth pinning.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench cenc_throughput
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wideleak::bmff::fragment::{InitSegment, TrackKind};
use wideleak::bmff::types::{KeyId, Tenc};
use wideleak::cenc::keys::{ContentKey, MemoryKeyStore};
use wideleak::cenc::track::{decrypt_segment, encrypt_segment, Scheme};

fn bench_cenc(c: &mut Criterion) {
    let key = ContentKey([0x11; 16]);
    let kid = KeyId([0x22; 16]);

    let mut group = c.benchmark_group("cenc_throughput");
    for size in [64 * 1024usize, 1 << 20] {
        // One big sample per segment, the worst case for per-sample setup.
        let samples = vec![vec![0xCDu8; size]];
        group.throughput(Throughput::Bytes(size as u64));

        for (scheme, tenc) in
            [(Scheme::Cenc, Tenc::cenc(kid)), (Scheme::Cbcs, Tenc::cbcs(kid, [3; 16]))]
        {
            let label = match scheme {
                Scheme::Cenc => "cenc",
                Scheme::Cbcs => "cbcs",
            };
            group.bench_with_input(
                BenchmarkId::new(format!("encrypt/{label}"), size),
                &samples,
                |b, samples| {
                    b.iter(|| {
                        encrypt_segment(scheme, &key, &tenc, TrackKind::Video, 1, 1, samples, 7)
                            .unwrap()
                    });
                },
            );

            let init =
                InitSegment::protected(1, TrackKind::Video, scheme.fourcc(), tenc.clone(), vec![]);
            let seg =
                encrypt_segment(scheme, &key, &tenc, TrackKind::Video, 1, 1, &samples, 7).unwrap();
            let mut store = MemoryKeyStore::new();
            store.insert(kid, key);
            group.bench_with_input(
                BenchmarkId::new(format!("decrypt/{label}"), size),
                &seg,
                |b, seg| {
                    b.iter(|| decrypt_segment(&init, seg, &store).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cenc);
criterion_main!(benches);
