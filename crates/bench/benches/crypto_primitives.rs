//! P1 — throughput of the from-scratch primitives backing the simulated
//! CDM: AES-128, CTR keystream, AES-CMAC, SHA-256, HMAC, RSA.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench crypto_primitives
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wideleak::crypto::aes::Aes128;
use wideleak::crypto::cmac::aes_cmac_with_key;
use wideleak::crypto::hmac::Hmac;
use wideleak::crypto::modes::ctr_xcrypt;
use wideleak::crypto::rng::seeded_rng;
use wideleak::crypto::rsa::RsaPrivateKey;
use wideleak::crypto::sha256::{sha256, Sha256};

fn bench_symmetric(c: &mut Criterion) {
    let cipher = Aes128::new(&[7; 16]);

    let mut group = c.benchmark_group("aes128");
    group.throughput(Throughput::Bytes(16));
    group.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| cipher.encrypt_block(&mut block));
    });
    group.finish();

    let mut group = c.benchmark_group("bulk");
    for size in [1024usize, 65_536, 1 << 20] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("ctr_xcrypt", size), &data, |b, data| {
            b.iter(|| ctr_xcrypt(&cipher, &[1; 16], data));
        });
        group.bench_with_input(BenchmarkId::new("aes_cmac", size), &data, |b, data| {
            b.iter(|| aes_cmac_with_key(&[7; 16], data));
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, data| {
            b.iter(|| Hmac::<Sha256>::mac(b"key", data));
        });
    }
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    group.sample_size(10);
    for bits in [1024usize, 2048] {
        let key = RsaPrivateKey::generate(&mut seeded_rng(42), bits);
        let msg = b"license request body";
        let sig = key.sign_pkcs1v15_sha256(msg).unwrap();
        let ct = key.public_key().encrypt_oaep(&mut seeded_rng(1), &[9u8; 16]).unwrap();

        group.bench_function(format!("sign_pkcs1v15/{bits}"), |b| {
            b.iter(|| key.sign_pkcs1v15_sha256(msg).unwrap());
        });
        group.bench_function(format!("verify_pkcs1v15/{bits}"), |b| {
            b.iter(|| key.public_key().verify_pkcs1v15_sha256(msg, &sig).unwrap());
        });
        group.bench_function(format!("encrypt_oaep/{bits}"), |b| {
            b.iter(|| key.public_key().encrypt_oaep(&mut seeded_rng(1), &[9u8; 16]).unwrap());
        });
        group.bench_function(format!("decrypt_oaep/{bits}"), |b| {
            b.iter(|| key.decrypt_oaep(&ct).unwrap());
        });
    }
    group.bench_function("keygen/1024", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            RsaPrivateKey::generate(&mut seeded_rng(seed), 1024)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_symmetric, bench_rsa);
criterion_main!(benches);
