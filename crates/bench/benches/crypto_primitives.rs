//! P1 — throughput of the from-scratch primitives backing the simulated
//! CDM: AES-128, CTR keystream, AES-CMAC, SHA-256, HMAC, RSA.
//!
//! The RSA section is the headline: the same 1024/2048-bit private
//! operation through the precomputed Montgomery+CRT context versus the
//! plain schoolbook square-and-multiply it replaced, reported as
//! `rsa.private.<bits>.speedup_vs_schoolbook` (CI asserts a floor on
//! the 2048-bit figure).
//!
//! ```text
//! cargo bench -p wideleak-bench --bench crypto_primitives [-- --quick]
//! ```
//!
//! `--quick` (or `WIDELEAK_BENCH_QUICK=1`) shrinks iteration counts so
//! CI can smoke the comparison on every PR.

use std::time::Instant;

use wideleak::bigint::modular::mod_pow_schoolbook;
use wideleak::bigint::BigUint;
use wideleak::crypto::aes::Aes128;
use wideleak::crypto::cmac::aes_cmac_with_key;
use wideleak::crypto::hmac::Hmac;
use wideleak::crypto::modes::ctr_xcrypt;
use wideleak::crypto::rng::seeded_rng;
use wideleak::crypto::rsa::RsaPrivateKey;
use wideleak::crypto::sha256::{sha256, Sha256};
use wideleak_bench::BenchReport;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Median wall time of `iters` runs of `f`, in microseconds.
fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_symmetric(report: &mut BenchReport, iters: usize) {
    let cipher = Aes128::new(&[7; 16]);
    println!("{:>28} {:>12} {:>10}", "primitive", "median us", "MB/s");

    let block_us = time_us(iters, || {
        let mut block = [0u8; 16];
        for _ in 0..1000 {
            cipher.encrypt_block(&mut block);
        }
        block
    }) / 1000.0;
    println!("{:>28} {:>12.3} {:>10.1}", "aes128/encrypt_block", block_us, 16.0 / block_us);
    report.metric("aes128.encrypt_block.us", block_us);

    for size in [64 * 1024usize, 1 << 20] {
        let data = vec![0xABu8; size];
        let mbs = |us: f64| size as f64 / us;
        let kib = size / 1024;

        let us = time_us(iters, || ctr_xcrypt(&cipher, &[1; 16], &data));
        println!("{:>28} {:>12.1} {:>10.1}", format!("ctr_xcrypt/{kib}KiB"), us, mbs(us));
        report.metric(format!("ctr_xcrypt.{kib}kib.mb_per_s"), mbs(us));

        let us = time_us(iters, || aes_cmac_with_key(&[7; 16], &data));
        println!("{:>28} {:>12.1} {:>10.1}", format!("aes_cmac/{kib}KiB"), us, mbs(us));
        report.metric(format!("aes_cmac.{kib}kib.mb_per_s"), mbs(us));

        let us = time_us(iters, || sha256(&data));
        println!("{:>28} {:>12.1} {:>10.1}", format!("sha256/{kib}KiB"), us, mbs(us));
        report.metric(format!("sha256.{kib}kib.mb_per_s"), mbs(us));

        let us = time_us(iters, || Hmac::<Sha256>::mac(b"key", &data));
        println!("{:>28} {:>12.1} {:>10.1}", format!("hmac_sha256/{kib}KiB"), us, mbs(us));
        report.metric(format!("hmac_sha256.{kib}kib.mb_per_s"), mbs(us));
    }
}

fn bench_rsa(report: &mut BenchReport, iters: usize) {
    println!("{:>28} {:>12} {:>12} {:>9}", "rsa op", "context us", "school us", "speedup");
    for bits in [1024usize, 2048] {
        let key = RsaPrivateKey::generate(&mut seeded_rng(42), bits);
        let n = key.public_key().modulus().clone();
        let d = key.private_exponent().clone();
        let msg = b"license request body";
        let ct = key.public_key().encrypt_oaep(&mut seeded_rng(1), &[9u8; 16]).unwrap();

        // The raw private operation c^d mod n, both ways, on the same
        // ciphertext-sized input. The context path goes through the CRT
        // split with per-prime Montgomery exponentiation; the schoolbook
        // path is the pre-redesign square-and-multiply on the full modulus.
        let c = &BigUint::from_bytes_be(&ct) % &n;
        let ctx_us = time_us(iters, || key.decrypt_oaep(&ct).unwrap());
        // Schoolbook is slow enough that a handful of samples suffices.
        let school_us = time_us(iters.clamp(3, 5), || mod_pow_schoolbook(&c, &d, &n));
        let speedup = school_us / ctx_us;
        println!(
            "{:>28} {:>12.1} {:>12.1} {:>8.2}x",
            format!("private_op/{bits}"),
            ctx_us,
            school_us,
            speedup
        );
        report
            .metric(format!("rsa.private.{bits}.context_us"), ctx_us)
            .metric(format!("rsa.private.{bits}.schoolbook_us"), school_us)
            .metric(format!("rsa.private.{bits}.speedup_vs_schoolbook"), speedup);

        let sig = key.sign_pkcs1v15_sha256(msg).unwrap();
        let sign_us = time_us(iters, || key.sign_pkcs1v15_sha256(msg).unwrap());
        let verify_us =
            time_us(iters, || key.public_key().verify_pkcs1v15_sha256(msg, &sig).unwrap());
        println!(
            "{:>28} {:>12.1} {:>12} {:>9}",
            format!("sign_pkcs1v15/{bits}"),
            sign_us,
            "-",
            "-"
        );
        println!(
            "{:>28} {:>12.1} {:>12} {:>9}",
            format!("verify_pkcs1v15/{bits}"),
            verify_us,
            "-",
            "-"
        );
        report
            .metric(format!("rsa.sign_pkcs1v15.{bits}.us"), sign_us)
            .metric(format!("rsa.verify_pkcs1v15.{bits}.us"), verify_us);
    }
}

fn main() {
    let iters = if quick_mode() { 5 } else { 30 };
    println!("crypto_primitives: {iters} timed iterations per row (median reported)");

    let mut report = BenchReport::new("crypto_primitives");
    report
        .label("mode", if quick_mode() { "quick" } else { "full" })
        .label("iters", iters.to_string());

    bench_symmetric(&mut report, iters);
    bench_rsa(&mut report, iters);
    report.write();
}
