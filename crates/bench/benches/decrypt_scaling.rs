//! P5 — Multi-client `DecryptSample` throughput through the pooled
//! binder: 1/2/4/8 client threads, each decrypting on its **own** CDM
//! session, against one `ThreadedBinder` worker pool.
//!
//! This is the tentpole measurement for the concurrent DRM stack: the
//! sharded session table in `CdmCore` lets transactions on distinct
//! sessions execute in parallel across binder workers, so aggregate
//! throughput should rise with client count until the machine runs out
//! of cores (and even on one core, keeping the MPMC queue full amortises
//! the two scheduler wake-ups a lone client pays per transaction).
//!
//! ```text
//! cargo bench -p wideleak-bench --bench decrypt_scaling [-- --quick]
//! ```
//!
//! `--quick` (or `WIDELEAK_BENCH_QUICK=1`) shrinks the iteration count
//! so CI can exercise the parallel path on every PR in a few seconds.

use std::sync::Arc;
use std::time::Instant;

use wideleak::android_drm::binder::{DrmCall, ThreadedBinder, Transport};
use wideleak::android_drm::server::MediaDrmServer;
use wideleak::bmff::types::{KeyId, WIDEVINE_SYSTEM_ID};
use wideleak::cdm::cdm::Cdm;
use wideleak::cdm::oemcrypto::{L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::cdm::wire::TlvWriter;
use wideleak::device::catalog::CdmVersion;
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::ecosystem::Ecosystem;
use wideleak_bench::{bench_ecosystem, BenchReport};

/// One encrypted audio-sized sample per transaction: small enough that
/// the binder round-trip is a visible fraction of the cost, the regime
/// the worker pool is for.
const SAMPLE_BYTES: usize = 4 * 1024;
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Workers match the largest client count so the pool is never the
/// bottleneck being measured.
const WORKERS: usize = 8;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Boots an L3 CDM behind a Media DRM server on a worker pool.
fn boot_binder(eco: &Ecosystem) -> ThreadedBinder {
    let backend = L3OemCrypto::new(
        CdmVersion::new(16, 0, 0),
        Arc::new(HookEngine::new()),
        Arc::new(ProcessMemory::new("mediaserver")),
    );
    backend.install_keybox(eco.trust().issue_keybox("bench-decrypt-scaling")).unwrap();
    let mut server = MediaDrmServer::new();
    let cdm = Cdm::builder().backend(Arc::new(backend)).build();
    server.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
    ThreadedBinder::builder(server).workers(WORKERS).spawn()
}

/// Provisions the device through the binder, like first app launch does.
fn provision(binder: &dyn Transport, eco: &Ecosystem) {
    let req = binder
        .transact(DrmCall::GetProvisionRequest { nonce: [7; 16] })
        .unwrap()
        .into_bytes()
        .unwrap();
    let response = eco.backend().handle("provision/ocs", &req).unwrap();
    binder.transact(DrmCall::ProvideProvisionResponse { nonce: [7; 16], response }).unwrap();
}

/// Opens and licenses one session; returns it with a decryptable kid.
fn license_session(binder: &dyn Transport, eco: &Ecosystem, token: &str, tag: u8) -> (u32, KeyId) {
    let sid = binder
        .transact(DrmCall::OpenSession { nonce: [tag; 16] })
        .unwrap()
        .into_session_id()
        .unwrap();
    let req = binder
        .transact(DrmCall::GetKeyRequest {
            session_id: sid,
            content_id: "title-001".to_owned(),
            key_ids: vec![],
        })
        .unwrap()
        .into_bytes()
        .unwrap();
    let mut w = TlvWriter::new();
    w.string(1, token).bytes(2, &req);
    let response = eco.backend().handle("license/ocs/title-001", &w.finish()).unwrap();
    let kids = binder
        .transact(DrmCall::ProvideKeyResponse { session_id: sid, response })
        .unwrap()
        .into_key_ids()
        .unwrap();
    (sid, kids[0])
}

/// Runs `iters` decrypts per client, all clients in parallel, and
/// returns the elapsed wall time.
fn run_clients(
    binder: &Arc<ThreadedBinder>,
    sessions: &[(u32, KeyId)],
    iters: usize,
) -> std::time::Duration {
    let start = Instant::now();
    let clients: Vec<_> = sessions
        .iter()
        .map(|&(sid, kid)| {
            let binder = Arc::clone(binder);
            std::thread::spawn(move || {
                for i in 0..iters {
                    let out = binder
                        .transact(DrmCall::DecryptSample {
                            session_id: sid,
                            kid,
                            crypto: SampleCrypto::Cenc { iv: [1; 8] },
                            data: vec![i as u8; SAMPLE_BYTES],
                            subsamples: vec![],
                        })
                        .unwrap()
                        .into_bytes()
                        .unwrap();
                    assert_eq!(out.len(), SAMPLE_BYTES);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    start.elapsed()
}

fn main() {
    let iters = if quick_mode() { 16 } else { 400 };
    wideleak::telemetry::enable();

    let eco = bench_ecosystem();
    let binder = Arc::new(boot_binder(&eco));
    provision(binder.as_ref(), &eco);
    let token = eco.accounts().subscribe("ocs", "bench-user");

    println!(
        "decrypt_scaling: {SAMPLE_BYTES}-byte cenc samples, {WORKERS}-worker pool, \
         {iters} decrypts/client ({} cores)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "clients", "elapsed", "decrypts/s", "MiB/s", "speedup"
    );

    let mut report = BenchReport::new("decrypt_scaling");
    report
        .label("mode", if quick_mode() { "quick" } else { "full" })
        .label("iters", iters.to_string())
        .label("sample_bytes", SAMPLE_BYTES.to_string())
        .label("workers", WORKERS.to_string());

    let mut baseline_rate = 0.0f64;
    for (row, &n) in CLIENT_COUNTS.iter().enumerate() {
        let sessions: Vec<(u32, KeyId)> = (0..n)
            .map(|i| license_session(binder.as_ref(), &eco, &token, (row * 16 + i) as u8 + 1))
            .collect();
        // Warm-up: fault in threads and the per-kind counter handles.
        run_clients(&binder, &sessions, 2);
        let elapsed = run_clients(&binder, &sessions, iters);
        let total = (n * iters) as f64;
        let rate = total / elapsed.as_secs_f64();
        if row == 0 {
            baseline_rate = rate;
        }
        println!(
            "{:>8} {:>9.3}s {:>12.0} {:>12.2} {:>8.2}x",
            n,
            elapsed.as_secs_f64(),
            rate,
            rate * SAMPLE_BYTES as f64 / (1024.0 * 1024.0),
            rate / baseline_rate,
        );
        report
            .metric(format!("clients.{n}.decrypts_per_s"), rate)
            .metric(
                format!("clients.{n}.mib_per_s"),
                rate * SAMPLE_BYTES as f64 / (1024.0 * 1024.0),
            )
            .metric(format!("clients.{n}.speedup_vs_1"), rate / baseline_rate);
        for (sid, _) in sessions {
            binder.transact(DrmCall::CloseSession { session_id: sid }).unwrap();
        }
    }

    let snapshot = wideleak::telemetry::snapshot();
    if let Some((_, depth)) = snapshot.gauges.iter().find(|(n, _)| n == "binder.queue.depth.max") {
        println!("binder.queue.depth.max = {depth}");
        report.metric("binder.queue.depth.max", *depth as f64);
    }
    report.write();
}
