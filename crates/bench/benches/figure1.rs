//! F1 — regenerates **Figure 1** (the encrypted-content playback
//! sequence) and benchmarks the end-to-end protocol run over both Binder
//! transports.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench figure1
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::device::catalog::DeviceModel;
use wideleak_bench::bench_ecosystem;

fn bench_figure1(c: &mut Criterion) {
    let eco = bench_ecosystem();

    // Regenerate the figure: run one playback and print the sequence.
    let stack = eco.boot_device(DeviceModel::pixel_6(), false);
    let app = eco.install_app(&stack, "showtime", "fig1-bench");
    let outcome = app.play("title-001").expect("playback");
    let trace = outcome.trace.expect("platform trace");
    eprintln!("\n=== Figure 1 — Encrypted Content Playback in Android ===\n");
    for (i, step) in trace.steps().iter().enumerate() {
        eprintln!("  {:>2}. {step:?}", i + 1);
    }
    eprintln!("\nmatches the paper's sequence: {}\n", trace.matches_figure_1());

    // Benchmark the full sequence (session + license + decrypt) per
    // transport. Provisioning happened above, so this measures the
    // steady-state protocol.
    let mut group = c.benchmark_group("figure1");
    group.sample_size(20);
    group.bench_function("playback/in_process_binder", |b| {
        b.iter(|| app.play("title-001").unwrap());
    });

    let threaded_stack = eco.boot_device_threaded(DeviceModel::pixel_6(), false);
    let threaded_app = eco.install_app(&threaded_stack, "showtime", "fig1-threaded");
    threaded_app.play("title-001").expect("warm up provisioning");
    group.bench_function("playback/threaded_binder", |b| {
        b.iter(|| threaded_app.play("title-001").unwrap());
    });

    // L3 playback for comparison (no TEE world switches, sub-HD assets).
    let l3_stack = eco.boot_device(DeviceModel::nexus_5(), false);
    let l3_app = eco.install_app(&l3_stack, "showtime", "fig1-l3");
    l3_app.play("title-001").expect("warm up");
    group.bench_function("playback/l3_device", |b| {
        b.iter(|| l3_app.play("title-001").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
