//! P3 — key-ladder latency: the derive→load→decrypt cycle on the L3
//! (in-process) versus the L1 (TEE world-switch) backend.
//!
//! The comparison quantifies the world-switch overhead the paper's §II-C
//! architecture implies: every L1 operation crosses `liboemcrypto.so`.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench key_ladder
//! ```

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::bmff::types::KeyId;
use wideleak::cdm::ladder::{derive_provisioning_keys, derive_session_keys};
use wideleak::cdm::messages::{LicenseResponse, ProvisioningResponse};
use wideleak::cdm::oemcrypto::{L1OemCrypto, L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::device::catalog::CdmVersion;
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::tee::SecureWorld;
use wideleak_bench::bench_ecosystem;

/// Provisions and licenses a backend against the real servers, returning
/// the session and a usable key id plus encrypted payload.
fn primed(
    backend: &dyn OemCrypto,
    eco: &wideleak::ott::ecosystem::Ecosystem,
    device: &str,
) -> (u32, KeyId, Vec<u8>) {
    backend.install_keybox(eco.trust().issue_keybox(device)).unwrap();
    let preq = backend.provisioning_request([1; 16]).unwrap();
    let raw = eco.backend().handle("provision/showtime", &preq.to_bytes()).unwrap();
    backend.install_rsa_key([1; 16], &ProvisioningResponse::parse(&raw).unwrap()).unwrap();
    let token = eco.accounts().subscribe("showtime", device);
    let sid = backend.open_session([2; 16]).unwrap();
    let req = backend.license_request(sid, "title-001", &[]).unwrap();
    let mut w = wideleak::cdm::wire::TlvWriter::new();
    w.string(1, &token).bytes(2, &req.to_bytes());
    let raw = eco.backend().handle("license/showtime/title-001", &w.finish()).unwrap();
    let resp = LicenseResponse::parse(&raw).unwrap();
    let kids = backend.load_license(sid, &resp).unwrap();
    let kid = kids[0];
    // A one-block sample to decrypt.
    (sid, kid, vec![0xEE; 1024])
}

fn bench_ladder(c: &mut Criterion) {
    let eco = bench_ecosystem();

    // Pure derivation cost (what the attack replays offline).
    let mut group = c.benchmark_group("ladder");
    group.bench_function("derive_session_keys", |b| {
        b.iter(|| derive_session_keys(&[7; 16], b"ENC|app|title", b"MAC|app|title"));
    });
    group.bench_function("derive_provisioning_keys", |b| {
        b.iter(|| derive_provisioning_keys(&[7; 16], b"device-id-32-bytes-padded-to-32b"));
    });
    group.finish();

    // Per-sample decrypt latency: L3 in-process vs L1 world-switch.
    let mut group = c.benchmark_group("decrypt_1kib_sample");
    let hooks = Arc::new(HookEngine::new());

    let l3 = L3OemCrypto::new(
        CdmVersion::new(16, 0, 0),
        hooks.clone(),
        Arc::new(ProcessMemory::new("mediaserver")),
    );
    let (sid3, kid3, data) = primed(&l3, &eco, "ladder-l3");
    group.bench_function("l3_in_process", |b| {
        b.iter(|| {
            l3.decrypt_sample(sid3, &kid3, &SampleCrypto::Cenc { iv: [5; 8] }, &data, &[]).unwrap()
        });
    });

    let world = Arc::new(SecureWorld::new());
    let l1 = L1OemCrypto::new(CdmVersion::new(16, 0, 0), world.clone(), hooks);
    let (sid1, kid1, data) = primed(&l1, &eco, "ladder-l1");
    group.bench_function("l1_world_switch", |b| {
        b.iter(|| {
            l1.decrypt_sample(sid1, &kid1, &SampleCrypto::Cenc { iv: [5; 8] }, &data, &[]).unwrap()
        });
    });
    group.finish();

    eprintln!("\nworld switches performed by the L1 backend: {}", world.switch_count());
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
