//! Warm-vs-cold license path: the same playback + check-in traffic
//! against a cache-free ecosystem and one with all three hot-path
//! caches enabled (provisioning certificates, license-response plans,
//! per-session decrypt keys).
//!
//! Both ecosystems get one un-timed warm-up play first, so RSA keygen
//! and the provisioning server's issued-key map are warm on both sides;
//! the measured delta is the caches themselves: skipped key
//! derivation/blob serialization on check-in, skipped license plan
//! resolution per play, and reused AES key schedules per sample.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench license_path [-- --quick]
//! ```
//!
//! `--quick` (or `WIDELEAK_BENCH_QUICK=1`) shrinks the iteration count
//! so CI can smoke the comparison on every PR.

use std::time::Instant;

use wideleak::device::catalog::DeviceModel;
use wideleak::ott::apps::OttApp;
use wideleak::ott::cache::CacheConfig;
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak_bench::{BenchReport, BENCH_RSA_BITS};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Boots one ecosystem + device + app with the given cache setup and
/// runs the un-timed warm-up play.
fn boot(caches: CacheConfig) -> (Ecosystem, OttApp) {
    let eco =
        Ecosystem::new(EcosystemConfig { rsa_bits: BENCH_RSA_BITS, caches, ..Default::default() });
    let stack = eco.boot_device(DeviceModel::nexus_5(), false);
    let app = eco.install_app(&stack, "netflix", "bench-user");
    app.play("title-001").unwrap();
    (eco, app)
}

/// Times `iters` repetitions of one play plus one device check-in.
fn run(app: &OttApp, iters: usize) -> std::time::Duration {
    let start = Instant::now();
    for _ in 0..iters {
        app.play("title-001").unwrap();
        app.reprovision().unwrap();
    }
    start.elapsed()
}

fn main() {
    let iters = if quick_mode() { 3 } else { 25 };
    println!("license_path: {iters} plays+check-ins per side, {BENCH_RSA_BITS}-bit RSA");

    let (_cold_eco, cold_app) = boot(CacheConfig::none());
    let (warm_eco, warm_app) = boot(CacheConfig::all());

    let cold = run(&cold_app, iters);
    let warm = run(&warm_app, iters);

    let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / iters as f64;
    println!("{:>8} {:>14} {:>9}", "path", "us/play", "speedup");
    println!("{:>8} {:>14.1} {:>8.2}x", "cold", per(cold), 1.0);
    println!("{:>8} {:>14.1} {:>8.2}x", "warm", per(warm), cold.as_secs_f64() / warm.as_secs_f64());

    let lic = warm_eco.license_cache_stats().expect("license cache enabled");
    let prov = warm_eco.provisioning_cache_stats().expect("cert cache enabled");
    println!(
        "warm-side hit rates: license {}/{}  provisioning {}/{}",
        lic.hits,
        lic.lookups(),
        prov.hits,
        prov.lookups()
    );

    let mut report = BenchReport::new("license_path");
    report
        .label("mode", if quick_mode() { "quick" } else { "full" })
        .label("iters", iters.to_string())
        .metric("cold.us_per_play", per(cold))
        .metric("warm.us_per_play", per(warm))
        .metric("warm.speedup", cold.as_secs_f64() / warm.as_secs_f64())
        .metric("warm.license_cache_hits", lic.hits as f64)
        .metric("warm.license_cache_lookups", lic.lookups() as f64);
    report.write();
    // Smoke check, with headroom for scheduler noise at tiny --quick
    // iteration counts.
    assert!(
        warm.as_secs_f64() <= cold.as_secs_f64() * 1.10,
        "warm caches must not be slower: warm={warm:?} cold={cold:?}"
    );
}
