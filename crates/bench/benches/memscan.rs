//! P4 — keybox memory-scan cost as a function of process memory size.
//!
//! The paper scans the `mediaserver` process for the keybox magic; this
//! bench sweeps the scannable memory from 1 MiB to 64 MiB with the keybox
//! planted near the end (worst case for a left-to-right scan).
//!
//! ```text
//! cargo bench -p wideleak-bench --bench memscan
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wideleak::attack::memscan::recover_keybox;
use wideleak::cdm::keybox::Keybox;
use wideleak::device::memory::ProcessMemory;

fn planted_memory(total_bytes: usize) -> ProcessMemory {
    let mem = ProcessMemory::new("mediaserver");
    let keybox = Keybox::issue(b"memscan-bench-device", &[0x5A; 16]);
    // Noise that contains no spurious magic.
    let filler = |len: usize| vec![0x6Bu8; len]; // 'k' bytes but never "kbox"
    let before = total_bytes - 128 - 4096;
    mem.map_region("libc.so", filler(before / 2));
    mem.map_region("heap", filler(before - before / 2));
    let mut tail = filler(2048);
    tail.extend_from_slice(&keybox.to_bytes());
    tail.extend(filler(2048 - 128));
    mem.map_region("libwvdrmengine.so:.data", tail);
    mem
}

fn bench_memscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("memscan");
    group.sample_size(10);
    for mib in [1usize, 4, 16, 64] {
        let total = mib << 20;
        let mem = planted_memory(total);
        group.throughput(Throughput::Bytes(total as u64));
        group.bench_with_input(
            BenchmarkId::new("recover_keybox", format!("{mib}MiB")),
            &mem,
            |b, mem| {
                b.iter(|| recover_keybox(mem).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_memscan);
criterion_main!(benches);
