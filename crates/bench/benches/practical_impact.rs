//! E6/E7 — regenerates the **§IV-D practical impact** results (the
//! DRM-free recovery sweep) and benchmarks the attack pipeline stages.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench practical_impact
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::attack::recover::{attack_all, attack_app, keys_identical_across_subscribers};
use wideleak_bench::bench_ecosystem;

fn bench_practical_impact(c: &mut Criterion) {
    let eco = bench_ecosystem();

    // Regenerate the sweep table.
    eprintln!(
        "\n=== Practical impact (Section IV-D): attack sweep on the discontinued device ===\n"
    );
    eprintln!(
        "{:<22} {:>7} {:>8} {:>6} {:>12}  outcome",
        "app", "keybox", "RSA key", "keys", "best quality"
    );
    let outcomes = attack_all(&eco);
    let mut succeeded = 0;
    for o in &outcomes {
        let quality = o
            .media
            .as_ref()
            .and_then(|m| m.best_resolution())
            .map_or("-".to_owned(), |(w, h)| format!("{w}x{h}"));
        eprintln!(
            "{:<22} {:>7} {:>8} {:>6} {:>12}  {}",
            o.app_name,
            if o.keybox_recovered { "yes" } else { "no" },
            if o.rsa_key_recovered { "yes" } else { "no" },
            o.content_keys.len(),
            quality,
            if o.succeeded() { "DRM-free media" } else { "blocked" },
        );
        succeeded += o.succeeded() as usize;
    }
    eprintln!("\n{succeeded}/10 apps compromised (paper: 6/10, best quality 960x540 qHD)");
    eprintln!(
        "same keys across subscribers (Showtime probe): {}\n",
        keys_identical_across_subscribers(&eco, "showtime")
    );

    // Benchmark the full pipeline and a blocked path for contrast.
    let mut group = c.benchmark_group("practical_impact");
    group.sample_size(10);
    group.bench_function("attack_app/netflix (succeeds)", |b| {
        b.iter(|| attack_app(&eco, "netflix"));
    });
    group.bench_function("attack_app/disney (revoked)", |b| {
        b.iter(|| attack_app(&eco, "disney"));
    });
    group.finish();
}

criterion_group!(benches, bench_practical_impact);
criterion_main!(benches);
