//! E1 — regenerates **Table I** (Widevine usage and asset protections by
//! OTTs) and benchmarks the per-app study cost.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench table1
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use wideleak::monitor::report::{render_insights, render_table_1};
use wideleak::monitor::study::{run_study, study_app};
use wideleak_bench::bench_ecosystem;

fn bench_table1(c: &mut Criterion) {
    // Regenerate and print the paper's table once, up front.
    let eco = bench_ecosystem();
    let report = run_study(&eco).expect("study completes");
    eprintln!("\n=== Table I — Widevine usage and asset protections by OTTs ===\n");
    eprintln!("{}", render_table_1(&report));
    eprintln!("{}", render_insights(&report));

    // Benchmark: the full two-device study of a single app (the paper's
    // per-app manual effort, automated).
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for slug in ["netflix", "disney", "amazon"] {
        group.bench_function(format!("study_app/{slug}"), |b| {
            b.iter(|| study_app(&eco, slug).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
