//! Distributed-tracing overhead: the same license-path and
//! decrypt-path round trips over the framed TCP loopback transport,
//! with tracing off and on, so the cost of trace-context minting,
//! span recording, and the 24-byte frame extension is pinned as a
//! number instead of a hope.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench trace_overhead [-- --quick]
//! ```
//!
//! Emits `BENCH_trace_overhead.json` and fails when the p50 overhead
//! on the license path exceeds budget (5% in full mode; quick mode
//! widens it to 25% because 100-iteration medians jitter in CI).

use std::sync::Arc;
use std::time::{Duration, Instant};

use wideleak::android_drm::binder::{DrmCall, Transport};
use wideleak::android_drm::netserver::TcpBinder;
use wideleak::android_drm::server::MediaDrmServer;
use wideleak::bmff::types::{KeyId, WIDEVINE_SYSTEM_ID};
use wideleak::cdm::cdm::Cdm;
use wideleak::cdm::oemcrypto::{L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::cdm::wire::TlvWriter;
use wideleak::device::catalog::CdmVersion;
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::ecosystem::Ecosystem;
use wideleak::telemetry::trace;
use wideleak_bench::{bench_ecosystem, BenchReport};

const SAMPLE_BYTES: usize = 4 * 1024;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Boots an L3 CDM behind a loopback TCP media DRM server.
fn boot_tcp(eco: &Ecosystem) -> Arc<dyn Transport> {
    let backend = L3OemCrypto::new(
        CdmVersion::new(16, 0, 0),
        Arc::new(HookEngine::new()),
        Arc::new(ProcessMemory::new("mediaserver")),
    );
    backend.install_keybox(eco.trust().issue_keybox("bench-trace-overhead")).unwrap();
    let mut server = MediaDrmServer::new();
    let cdm = Cdm::builder().backend(Arc::new(backend)).build();
    server.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
    Arc::new(TcpBinder::loopback(server).build().unwrap())
}

/// Provisions and licenses one session; returns it with a usable kid.
fn license_session(binder: &dyn Transport, eco: &Ecosystem, token: &str) -> (u32, KeyId) {
    let req = binder
        .transact(DrmCall::GetProvisionRequest { nonce: [7; 16] })
        .unwrap()
        .into_bytes()
        .unwrap();
    let response = eco.backend().handle("provision/ocs", &req).unwrap();
    binder.transact(DrmCall::ProvideProvisionResponse { nonce: [7; 16], response }).unwrap();
    let sid = binder
        .transact(DrmCall::OpenSession { nonce: [9; 16] })
        .unwrap()
        .into_session_id()
        .unwrap();
    let req = binder
        .transact(DrmCall::GetKeyRequest {
            session_id: sid,
            content_id: "title-001".to_owned(),
            key_ids: vec![],
        })
        .unwrap()
        .into_bytes()
        .unwrap();
    let mut w = TlvWriter::new();
    w.string(1, token).bytes(2, &req);
    let response = eco.backend().handle("license/ocs/title-001", &w.finish()).unwrap();
    let kids = binder
        .transact(DrmCall::ProvideKeyResponse { session_id: sid, response })
        .unwrap()
        .into_key_ids()
        .unwrap();
    (sid, kids[0])
}

/// Times `iters` license-path round trips (the RSA-signing
/// `GetKeyRequest`, the paper's critical path) and returns sorted
/// per-call latencies.
fn measure_license(binder: &dyn Transport, sid: u32, iters: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let req = binder
            .transact(DrmCall::GetKeyRequest {
                session_id: sid,
                content_id: "title-001".to_owned(),
                key_ids: vec![],
            })
            .unwrap()
            .into_bytes()
            .unwrap();
        samples.push(start.elapsed());
        assert!(!req.is_empty());
    }
    samples.sort();
    samples
}

/// Times `iters` decrypt round trips and returns sorted latencies.
fn measure_decrypt(binder: &dyn Transport, sid: u32, kid: KeyId, iters: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(iters);
    for i in 0..iters {
        let data = vec![i as u8; SAMPLE_BYTES];
        let start = Instant::now();
        let out = binder
            .transact(DrmCall::DecryptSample {
                session_id: sid,
                kid,
                crypto: SampleCrypto::Cenc { iv: [1; 8] },
                data,
                subsamples: vec![],
            })
            .unwrap()
            .into_bytes()
            .unwrap();
        samples.push(start.elapsed());
        assert_eq!(out.len(), SAMPLE_BYTES);
    }
    samples.sort();
    samples
}

fn p50(sorted: &[Duration]) -> Duration {
    sorted[sorted.len() / 2]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let quick = quick_mode();
    let license_iters = if quick { 60 } else { 600 };
    let decrypt_iters = if quick { 300 } else { 3000 };
    let budget = if quick { 0.25 } else { 0.05 };

    let eco = bench_ecosystem();
    let token = eco.accounts().subscribe("ocs", "bench-user");
    let binder = boot_tcp(&eco);
    let (sid, kid) = license_session(binder.as_ref(), &eco, &token);

    println!(
        "trace_overhead: tcp loopback, {license_iters} license + {decrypt_iters} decrypt calls per side"
    );

    // Warm both paths before either timed side so neither inherits
    // cold-start costs.
    measure_license(binder.as_ref(), sid, 8);
    measure_decrypt(binder.as_ref(), sid, kid, 16);

    // Interleave off/on chunks: clock drift, thermal throttling and
    // scheduler bursts hit both sides equally instead of whichever
    // side happened to run second.
    const CHUNKS: usize = 6;
    let mut license_off = Vec::new();
    let mut license_on = Vec::new();
    let mut decrypt_off = Vec::new();
    let mut decrypt_on = Vec::new();
    for _ in 0..CHUNKS {
        trace::disable();
        license_off.extend(measure_license(binder.as_ref(), sid, license_iters / CHUNKS));
        decrypt_off.extend(measure_decrypt(binder.as_ref(), sid, kid, decrypt_iters / CHUNKS));
        trace::enable();
        license_on.extend(measure_license(binder.as_ref(), sid, license_iters / CHUNKS));
        decrypt_on.extend(measure_decrypt(binder.as_ref(), sid, kid, decrypt_iters / CHUNKS));
    }
    trace::disable();
    license_off.sort();
    license_on.sort();
    decrypt_off.sort();
    decrypt_on.sort();
    let recorded = trace::drain().len();

    let overhead = |off: &[Duration], on: &[Duration]| {
        (p50(on).as_secs_f64() - p50(off).as_secs_f64()) / p50(off).as_secs_f64()
    };
    let license_overhead = overhead(&license_off, &license_on);
    let decrypt_overhead = overhead(&decrypt_off, &decrypt_on);

    println!("{:>10} {:>14} {:>14} {:>10}", "path", "off p50 us", "on p50 us", "overhead");
    println!(
        "{:>10} {:>14.1} {:>14.1} {:>9.1}%",
        "license",
        micros(p50(&license_off)),
        micros(p50(&license_on)),
        license_overhead * 100.0
    );
    println!(
        "{:>10} {:>14.1} {:>14.1} {:>9.1}%",
        "decrypt",
        micros(p50(&decrypt_off)),
        micros(p50(&decrypt_on)),
        decrypt_overhead * 100.0
    );
    println!("{recorded} trace spans recorded on the traced side");

    let mut report = BenchReport::new("trace_overhead");
    report
        .label("mode", if quick { "quick" } else { "full" })
        .label("transport", "tcp")
        .metric("license.off_p50_us", micros(p50(&license_off)))
        .metric("license.on_p50_us", micros(p50(&license_on)))
        .metric("license.p50_overhead", license_overhead)
        .metric("decrypt.off_p50_us", micros(p50(&decrypt_off)))
        .metric("decrypt.on_p50_us", micros(p50(&decrypt_on)))
        .metric("decrypt.p50_overhead", decrypt_overhead)
        .metric("spans_recorded", recorded as f64);
    report.write();

    assert!(recorded > 0, "traced side must actually record spans");
    assert!(
        license_overhead < budget,
        "license-path tracing overhead {:.1}% exceeds the {:.0}% budget",
        license_overhead * 100.0,
        budget * 100.0
    );
}
