//! Transport comparison: the same licensed `DecryptSample` round trip
//! through all three binder transports — in-process dispatch, the
//! threaded worker pool, and framed TCP over loopback — plus pipelined
//! TCP (several calls in flight on one shared connection, correlated by
//! wire-v3 request ids), reporting per-call p50/p95/p99 so the cost of
//! each IPC boundary is visible.
//!
//! ```text
//! cargo bench -p wideleak-bench --bench transport_compare [-- --quick]
//! ```
//!
//! `--quick` (or `WIDELEAK_BENCH_QUICK=1`) shrinks the iteration count
//! so CI can compare the transports on every PR in a few seconds.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wideleak::android_drm::binder::{
    DrmCall, InProcessBinder, ThreadedBinder, Transport, TransportKind,
};
use wideleak::android_drm::netserver::TcpBinder;
use wideleak::android_drm::server::MediaDrmServer;
use wideleak::bmff::types::{KeyId, WIDEVINE_SYSTEM_ID};
use wideleak::cdm::cdm::Cdm;
use wideleak::cdm::oemcrypto::{L3OemCrypto, OemCrypto, SampleCrypto};
use wideleak::cdm::wire::TlvWriter;
use wideleak::device::catalog::CdmVersion;
use wideleak::device::hooks::HookEngine;
use wideleak::device::memory::ProcessMemory;
use wideleak::device::net::RemoteEndpoint;
use wideleak::ott::ecosystem::Ecosystem;
use wideleak_bench::{bench_ecosystem, BenchReport};

/// Audio-sized samples: small enough that the transport round trip is a
/// visible fraction of the total, the regime the comparison is about.
const SAMPLE_BYTES: usize = 4 * 1024;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("WIDELEAK_BENCH_QUICK").is_some()
}

/// Boots an L3 CDM behind a fresh media DRM server on one transport.
/// A `pipeline_depth` of 2+ puts the TCP binder in pipelined mode (it
/// is ignored by the in-process transports, matching the ecosystem
/// knob's semantics).
fn boot_binder(
    eco: &Ecosystem,
    transport: TransportKind,
    pipeline_depth: usize,
) -> Arc<dyn Transport> {
    let backend = L3OemCrypto::new(
        CdmVersion::new(16, 0, 0),
        Arc::new(HookEngine::new()),
        Arc::new(ProcessMemory::new("mediaserver")),
    );
    backend
        .install_keybox(
            eco.trust().issue_keybox(&format!("bench-transport-{transport}-{pipeline_depth}")),
        )
        .unwrap();
    let mut server = MediaDrmServer::new();
    let cdm = Cdm::builder().backend(Arc::new(backend)).build();
    server.register_plugin(WIDEVINE_SYSTEM_ID, Arc::new(cdm));
    match transport {
        TransportKind::InProcess => Arc::new(InProcessBinder::new(server)),
        TransportKind::Threaded => Arc::new(ThreadedBinder::builder(server).spawn()),
        TransportKind::Tcp => {
            Arc::new(TcpBinder::loopback(server).pipeline_depth(pipeline_depth).build().unwrap())
        }
    }
}

/// Provisions and licenses one session; returns it with a decryptable kid.
fn license_session(binder: &dyn Transport, eco: &Ecosystem, token: &str) -> (u32, KeyId) {
    let req = binder
        .transact(DrmCall::GetProvisionRequest { nonce: [7; 16] })
        .unwrap()
        .into_bytes()
        .unwrap();
    let response = eco.backend().handle("provision/ocs", &req).unwrap();
    binder.transact(DrmCall::ProvideProvisionResponse { nonce: [7; 16], response }).unwrap();
    let sid = binder
        .transact(DrmCall::OpenSession { nonce: [9; 16] })
        .unwrap()
        .into_session_id()
        .unwrap();
    let req = binder
        .transact(DrmCall::GetKeyRequest {
            session_id: sid,
            content_id: "title-001".to_owned(),
            key_ids: vec![],
        })
        .unwrap()
        .into_bytes()
        .unwrap();
    let mut w = TlvWriter::new();
    w.string(1, token).bytes(2, &req);
    let response = eco.backend().handle("license/ocs/title-001", &w.finish()).unwrap();
    let kids = binder
        .transact(DrmCall::ProvideKeyResponse { session_id: sid, response })
        .unwrap()
        .into_key_ids()
        .unwrap();
    (sid, kids[0])
}

/// Nearest-rank percentile over a sorted sample set.
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let n = sorted.len();
    sorted[((n * p).div_ceil(100)).max(1) - 1]
}

/// Times `iters` sequential decrypt round trips and returns the sorted
/// per-call latencies.
fn measure(binder: &dyn Transport, sid: u32, kid: KeyId, iters: usize) -> Vec<Duration> {
    let mut samples = Vec::with_capacity(iters);
    for i in 0..iters {
        let data = vec![i as u8; SAMPLE_BYTES];
        let start = Instant::now();
        let out = binder
            .transact(DrmCall::DecryptSample {
                session_id: sid,
                kid,
                crypto: SampleCrypto::Cenc { iv: [1; 8] },
                data,
                subsamples: vec![],
            })
            .unwrap()
            .into_bytes()
            .unwrap();
        samples.push(start.elapsed());
        assert_eq!(out.len(), SAMPLE_BYTES);
    }
    samples.sort();
    samples
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let iters = if quick_mode() { 300 } else { 5000 };
    wideleak::telemetry::enable();
    let eco = bench_ecosystem();
    let token = eco.accounts().subscribe("ocs", "bench-user");

    println!("transport_compare: {SAMPLE_BYTES}-byte cenc samples, {iters} decrypts per transport");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "transport", "mean us", "p50 us", "p95 us", "p99 us", "decrypts/s"
    );

    let mut report = BenchReport::new("transport_compare");
    report
        .label("mode", if quick_mode() { "quick" } else { "full" })
        .label("iters", iters.to_string())
        .label("sample_bytes", SAMPLE_BYTES.to_string());
    // The three one-call-per-roundtrip transports, then pipelined TCP:
    // the same calls over one shared connection with eight slots in
    // flight, replies correlated by request id.
    let mut rows: Vec<(&str, TransportKind, usize)> =
        TransportKind::ALL.iter().map(|&t| (t.label(), t, 1)).collect();
    rows.push(("tcp-pipe", TransportKind::Tcp, 8));
    for &(label, transport, depth) in &rows {
        let binder = boot_binder(&eco, transport, depth);
        let (sid, kid) = license_session(binder.as_ref(), &eco, &token);
        // Warm-up: connections dialed, threads faulted in, caches hot.
        measure(binder.as_ref(), sid, kid, 16);
        let samples = measure(binder.as_ref(), sid, kid, iters);
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        println!(
            "{:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12.0}",
            label,
            micros(mean),
            micros(percentile(&samples, 50)),
            micros(percentile(&samples, 95)),
            micros(percentile(&samples, 99)),
            samples.len() as f64 / total.as_secs_f64(),
        );
        report
            .metric(format!("{label}.mean_us"), micros(mean))
            .metric(format!("{label}.p50_us"), micros(percentile(&samples, 50)))
            .metric(format!("{label}.p95_us"), micros(percentile(&samples, 95)))
            .metric(format!("{label}.p99_us"), micros(percentile(&samples, 99)))
            .metric(format!("{label}.decrypts_per_s"), samples.len() as f64 / total.as_secs_f64());
        binder.transact(DrmCall::CloseSession { session_id: sid }).unwrap();
    }
    report.write();

    let counters = wideleak::telemetry::snapshot().counters;
    for name in ["binder.tcp.frames.sent", "binder.tcp.bytes.sent", "binder.tcp.reconnects"] {
        if let Some((_, v)) = counters.iter().find(|(n, _)| n == name) {
            println!("{name} = {v}");
        }
    }
}
