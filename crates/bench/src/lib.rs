//! Shared helpers for the WideLeak benchmark harness.
//!
//! Every table and figure of the paper has a bench target in
//! `benches/`; see `EXPERIMENTS.md` at the workspace root for the
//! experiment-to-target index.

use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

/// The RSA key size the benches use: large enough to exercise the real
/// code paths, small enough that Criterion iteration counts stay sane.
/// (Production Widevine uses 2048-bit keys; the asymmetric operations
/// scale cubically, the *shape* of every comparison is size-independent.)
pub const BENCH_RSA_BITS: usize = 1024;

/// The ecosystem configuration every bench shares.
pub fn bench_config() -> EcosystemConfig {
    EcosystemConfig { rsa_bits: BENCH_RSA_BITS, ..Default::default() }
}

/// Boots a bench ecosystem.
pub fn bench_ecosystem() -> Ecosystem {
    Ecosystem::new(bench_config())
}
