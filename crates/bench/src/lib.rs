//! Shared helpers for the WideLeak benchmark harness.
//!
//! Every table and figure of the paper has a bench target in
//! `benches/`; see `EXPERIMENTS.md` at the workspace root for the
//! experiment-to-target index.

use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};

/// The RSA key size the benches use: large enough to exercise the real
/// code paths, small enough that Criterion iteration counts stay sane.
/// (Production Widevine uses 2048-bit keys; the asymmetric operations
/// scale cubically, the *shape* of every comparison is size-independent.)
pub const BENCH_RSA_BITS: usize = 1024;

/// The ecosystem configuration every bench shares.
pub fn bench_config() -> EcosystemConfig {
    EcosystemConfig { rsa_bits: BENCH_RSA_BITS, ..Default::default() }
}

/// Boots a bench ecosystem.
pub fn bench_ecosystem() -> Ecosystem {
    Ecosystem::new(bench_config())
}

/// Where `BENCH_*.json` result files land: `$WIDELEAK_BENCH_OUT` when
/// set, the current directory otherwise.
pub fn bench_out_dir() -> std::path::PathBuf {
    std::env::var_os("WIDELEAK_BENCH_OUT")
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from)
}

/// A machine-readable bench result, persisted as `BENCH_<name>.json`
/// so successive PRs can read the perf trajectory without scraping
/// stdout. JSON is hand-rolled (flat: one `metrics` object of numbers,
/// one `labels` object of strings) to keep the harness vendor-light.
pub struct BenchReport {
    name: &'static str,
    metrics: Vec<(String, f64)>,
    labels: Vec<(String, String)>,
}

fn push_json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl BenchReport {
    /// Starts a report for the named bench target.
    #[must_use]
    pub fn new(name: &'static str) -> BenchReport {
        BenchReport { name, metrics: Vec::new(), labels: Vec::new() }
    }

    /// Records one numeric metric (dotted keys, e.g. `tcp.p50_us`).
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// Records one string label (run parameters: mode, iteration count).
    pub fn label(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":");
        push_json_escaped(self.name, &mut out);
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_escaped(k, &mut out);
            out.push(':');
            push_json_escaped(v, &mut out);
        }
        out.push_str("},\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_escaped(k, &mut out);
            // Finite shortest-round-trip floats; non-finite values have
            // no JSON spelling, so they degrade to null.
            if v.is_finite() {
                out.push_str(&format!(":{v}"));
            } else {
                out.push_str(":null");
            }
        }
        out.push_str("}}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into [`bench_out_dir`], returning
    /// the path. Failures print to stderr rather than panic: a bench
    /// run's numbers on stdout still count when the disk does not.
    pub fn write(&self) -> Option<std::path::PathBuf> {
        let path = bench_out_dir().join(format!("BENCH_{}.json", self.name));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                eprintln!("bench: wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("bench: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_renders_flat_json() {
        let mut report = BenchReport::new("unit");
        report.label("mode", "quick").metric("tcp.p50_us", 12.5).metric("bad", f64::NAN);
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"bench\":\"unit\",\"labels\":{\"mode\":\"quick\"},\
             \"metrics\":{\"tcp.p50_us\":12.5,\"bad\":null}}\n"
        );
    }

    #[test]
    fn bench_report_escapes_strings() {
        let mut report = BenchReport::new("unit");
        report.label("note", "a\"b\\c");
        assert!(report.to_json().contains("\"a\\\"b\\\\c\""));
    }
}
