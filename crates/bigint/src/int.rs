//! Signed arbitrary-precision integers (sign-magnitude over [`BigUint`]).
//!
//! Only the operations needed by the extended Euclidean algorithm are
//! provided; the unsigned type is the workhorse everywhere else.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::BigUint;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero (magnitude is zero).
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer in sign-magnitude form.
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{BigInt, BigUint};
///
/// let a = BigInt::from(-5i64);
/// let b = BigInt::from(3i64);
/// assert_eq!(&a + &b, BigInt::from(-2i64));
/// assert_eq!((&a * &b).magnitude(), &BigUint::from_u64(15));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, mag: BigUint::one() }
    }

    /// Builds a non-negative integer from an unsigned magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { Sign::Positive };
        BigInt { sign, mag }
    }

    /// Builds a value with an explicit sign; a zero magnitude forces
    /// [`Sign::Zero`].
    pub fn with_sign(sign: Sign, mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { sign };
        BigInt { sign, mag }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value).
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Converts to the unsigned type, if non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// Euclidean remainder in `[0, m)`, used to canonicalize the output of
    /// the extended Euclidean algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        match self.sign {
            Sign::Negative if !r.is_zero() => m - &r,
            _ => r,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Less => {
                BigInt::with_sign(Sign::Negative, BigUint::from_u64(v.unsigned_abs()))
            }
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::with_sign(Sign::Positive, BigUint::from_u64(v as u64)),
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_biguint(mag)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt { sign, mag: self.mag.clone() }
    }
}

impl Neg for BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        -&self
    }
}

impl Add for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::with_sign(a, &self.mag + &rhs.mag),
            _ => {
                // Opposite signs: subtract the smaller magnitude.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::with_sign(self.sign, &self.mag - &rhs.mag),
                    Ordering::Less => BigInt::with_sign(rhs.sign, &rhs.mag - &self.mag),
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;

    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::with_sign(sign, &self.mag * &rhs.mag)
    }
}

macro_rules! forward_owned_binop_int {
    ($($trait:ident :: $method:ident),+) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
    )+};
}

forward_owned_binop_int!(Add::add, Sub::sub, Mul::mul);

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Negative => write!(f, "BigInt(-0x{})", self.mag.to_hex()),
            _ => write!(f, "BigInt(0x{})", self.mag.to_hex()),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            f.write_str("-")?;
        }
        fmt::Display::fmt(&self.mag, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn from_i64_signs() {
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5).sign(), Sign::Positive);
        assert_eq!(int(-5).sign(), Sign::Negative);
        assert_eq!(int(i64::MIN).magnitude(), &BigUint::from_u64(1u64 << 63));
    }

    #[test]
    fn addition_sign_cases() {
        assert_eq!(&int(5) + &int(3), int(8));
        assert_eq!(&int(-5) + &int(-3), int(-8));
        assert_eq!(&int(5) + &int(-3), int(2));
        assert_eq!(&int(-5) + &int(3), int(-2));
        assert_eq!(&int(5) + &int(-5), int(0));
        assert_eq!(&int(0) + &int(-7), int(-7));
        assert_eq!(&int(7) + &int(0), int(7));
    }

    #[test]
    fn subtraction() {
        assert_eq!(&int(5) - &int(8), int(-3));
        assert_eq!(&int(-5) - &int(-8), int(3));
        assert_eq!(int(10) - int(10), int(0));
    }

    #[test]
    fn multiplication_signs() {
        assert_eq!(&int(4) * &int(-3), int(-12));
        assert_eq!(&int(-4) * &int(-3), int(12));
        assert_eq!(&int(-4) * &int(0), int(0));
        assert_eq!((&int(-4) * &int(0)).sign(), Sign::Zero);
    }

    #[test]
    fn negation() {
        assert_eq!(-int(5), int(-5));
        assert_eq!(-int(0), int(0));
        assert_eq!(-(-int(9)), int(9));
    }

    #[test]
    fn rem_euclid_canonicalizes() {
        let m = BigUint::from_u64(7);
        assert_eq!(int(10).rem_euclid(&m), BigUint::from_u64(3));
        assert_eq!(int(-10).rem_euclid(&m), BigUint::from_u64(4));
        assert_eq!(int(-7).rem_euclid(&m), BigUint::zero());
        assert_eq!(int(0).rem_euclid(&m), BigUint::zero());
    }

    #[test]
    fn zero_magnitude_forces_zero_sign() {
        let z = BigInt::with_sign(Sign::Negative, BigUint::zero());
        assert_eq!(z.sign(), Sign::Zero);
        assert!(!z.is_negative());
    }

    #[test]
    fn to_biguint() {
        assert_eq!(int(5).to_biguint(), Some(BigUint::from_u64(5)));
        assert_eq!(int(-5).to_biguint(), None);
        assert_eq!(int(0).to_biguint(), Some(BigUint::zero()));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(42).to_string(), "42");
        assert_eq!(format!("{:?}", int(-1)), "BigInt(-0x1)");
    }
}
