//! Arbitrary-precision unsigned and signed integer arithmetic.
//!
//! This crate is the numeric substrate for the WideLeak reproduction's RSA
//! implementation (`wideleak-crypto`). It provides [`BigUint`], a
//! little-endian limb-based unsigned integer, a signed companion
//! [`BigInt`] used by the extended Euclidean algorithm, modular arithmetic
//! helpers in [`modular`], and probabilistic primality testing plus prime
//! generation in [`prime`].
//!
//! The implementation favours clarity and testability over raw speed: all
//! algorithms are textbook (schoolbook multiplication, Knuth Algorithm D
//! division, square-and-multiply exponentiation). At the workspace's
//! test/bench optimisation levels this comfortably handles the 2048-bit RSA
//! moduli used by the simulated Widevine CDM.
//!
//! # Examples
//!
//! ```
//! use wideleak_bigint::BigUint;
//!
//! let a = BigUint::from_u64(0xdead_beef);
//! let b = BigUint::from_u64(0x1234_5678);
//! let product = &a * &b;
//! assert_eq!(product, BigUint::from_u128(0xdead_beef * 0x1234_5678));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
pub mod modular;
pub mod prime;
mod uint;

pub use int::{BigInt, Sign};
pub use uint::{BigUint, ParseBigUintError};
