//! Arbitrary-precision unsigned and signed integer arithmetic.
//!
//! This crate is the numeric substrate for the WideLeak reproduction's RSA
//! implementation (`wideleak-crypto`). It provides [`BigUint`], a
//! little-endian limb-based unsigned integer, a signed companion
//! [`BigInt`] used by the extended Euclidean algorithm, modular arithmetic
//! helpers in [`modular`], precomputed Montgomery/CRT contexts for the
//! exponentiation hot path in [`montgomery`], and probabilistic primality
//! testing plus prime generation in [`prime`].
//!
//! The base arithmetic favours clarity and testability (schoolbook
//! multiplication, Knuth Algorithm D division); the [`montgomery`]
//! contexts layer REDC-based fixed-window exponentiation on top for the
//! repeated-modulus workloads (RSA private ops, Miller–Rabin), with the
//! schoolbook path kept as the differential reference. This comfortably
//! handles the 2048-bit RSA moduli used by the simulated Widevine CDM.
//!
//! # Examples
//!
//! ```
//! use wideleak_bigint::BigUint;
//!
//! let a = BigUint::from_u64(0xdead_beef);
//! let b = BigUint::from_u64(0x1234_5678);
//! let product = &a * &b;
//! assert_eq!(product, BigUint::from_u128(0xdead_beef * 0x1234_5678));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod int;
pub mod modular;
pub mod montgomery;
pub mod prime;
mod uint;

pub use int::{BigInt, Sign};
pub use uint::{BigUint, ParseBigUintError};
