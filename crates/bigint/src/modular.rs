//! Modular arithmetic: addition, multiplication, exponentiation, inversion,
//! greatest common divisor, and CRT recombination.
//!
//! These free functions operate on [`BigUint`] values and back the RSA
//! implementation in `wideleak-crypto`.

use crate::{BigInt, BigUint, Sign};

/// Computes `(a + b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(&(a % m) + &(b % m)) % m
}

/// Computes `(a - b) mod m` with a non-negative result.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    let a = a % m;
    let b = b % m;
    if a >= b {
        &a - &b
    } else {
        &(&a + m) - &b
    }
}

/// Computes `(a * b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(&(a % m) * &(b % m)) % m
}

/// Computes `base^exp mod m`.
///
/// Deprecated thin wrapper over [`crate::montgomery::ModExpContext`],
/// kept so the pre-context API surface still compiles. It rebuilds the
/// per-modulus precomputation on every call; hot paths should build a
/// context once and reuse it.
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields zero.
#[deprecated(
    note = "build a `wideleak_bigint::montgomery::ModExpContext` once and call `pow` on it"
)]
pub fn mod_pow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    crate::montgomery::ModExpContext::new(m).pow(base, exp)
}

/// Computes `base^exp mod m` by left-to-right square-and-multiply.
///
/// This is the reference implementation the Montgomery fast path is
/// differentially tested against, and the fallback
/// [`crate::montgomery::ModExpContext`] uses for even moduli.
///
/// # Panics
///
/// Panics if `m` is zero. `m == 1` yields zero.
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{modular::mod_pow_schoolbook, BigUint};
///
/// let r = mod_pow_schoolbook(
///     &BigUint::from_u64(4),
///     &BigUint::from_u64(13),
///     &BigUint::from_u64(497),
/// );
/// assert_eq!(r, BigUint::from_u64(445));
/// ```
pub fn mod_pow_schoolbook(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus is zero");
    if m.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let base = base % m;
    if exp.is_zero() {
        return result;
    }
    for i in (0..exp.bit_len()).rev() {
        result = &(&result * &result) % m;
        if exp.bit(i) {
            result = &(&result * &base) % m;
        }
    }
    result
}

/// Computes the greatest common divisor of `a` and `b`.
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y == g == gcd(a, b)`.
pub fn extended_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut old_r = BigInt::from_biguint(a.clone());
    let mut r = BigInt::from_biguint(b.clone());
    let mut old_s = BigInt::one();
    let mut s = BigInt::zero();
    let mut old_t = BigInt::zero();
    let mut t = BigInt::one();

    while !r.is_zero() {
        let (q, rem) = old_r.magnitude().div_rem(r.magnitude());
        // Signs: our remainders stay non-negative because we always divide
        // magnitudes; track coefficient signs explicitly.
        let q = BigInt::with_sign(Sign::Positive, q);
        let new_r = BigInt::with_sign(Sign::Positive, rem);
        old_r = std::mem::replace(&mut r, new_r);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }

    (old_r.to_biguint().expect("gcd is non-negative"), old_s, old_t)
}

/// Computes the modular inverse of `a` modulo `m`, if it exists.
///
/// Returns `None` when `gcd(a, m) != 1`.
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{modular::mod_inv, BigUint};
///
/// let inv = mod_inv(&BigUint::from_u64(3), &BigUint::from_u64(11)).unwrap();
/// assert_eq!(inv, BigUint::from_u64(4));
/// assert!(mod_inv(&BigUint::from_u64(4), &BigUint::from_u64(8)).is_none());
/// ```
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() {
        return None;
    }
    let (g, x, _) = extended_gcd(a, m);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(m))
}

/// Chinese-remainder recombination for a two-prime RSA private operation:
/// given residues `(mp mod p, mq mod q)` and `q_inv = q^-1 mod p`, returns
/// the unique value modulo `p*q`.
///
/// Deprecated: [`crate::montgomery::CrtContext`] precomputes the
/// per-prime exponentiation contexts and performs the recombination in
/// one call.
#[deprecated(note = "build a `wideleak_bigint::montgomery::CrtContext` and call `exp` on it")]
pub fn crt_combine(
    mp: &BigUint,
    mq: &BigUint,
    p: &BigUint,
    q: &BigUint,
    q_inv: &BigUint,
) -> BigUint {
    // h = q_inv * (mp - mq) mod p
    let h = mod_mul(q_inv, &mod_sub(mp, mq, p), p);
    mq + &(q * &h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn mod_add_wraps() {
        assert_eq!(mod_add(&n(9), &n(5), &n(7)), n(0));
        assert_eq!(mod_add(&n(3), &n(5), &n(7)), n(1));
    }

    #[test]
    fn mod_sub_stays_non_negative() {
        assert_eq!(mod_sub(&n(3), &n(5), &n(7)), n(5));
        assert_eq!(mod_sub(&n(5), &n(3), &n(7)), n(2));
        assert_eq!(mod_sub(&n(5), &n(5), &n(7)), n(0));
    }

    #[test]
    fn mod_mul_reduces_inputs() {
        assert_eq!(mod_mul(&n(100), &n(100), &n(7)), n(10_000 % 7));
    }

    #[test]
    fn mod_pow_basics() {
        assert_eq!(mod_pow_schoolbook(&n(2), &n(10), &n(1_000_000)), n(1024));
        assert_eq!(mod_pow_schoolbook(&n(2), &n(0), &n(97)), n(1));
        assert_eq!(mod_pow_schoolbook(&n(0), &n(5), &n(97)), n(0));
        assert_eq!(mod_pow_schoolbook(&n(5), &n(3), &n(1)), n(0));
    }

    #[test]
    fn mod_pow_fermat_little_theorem() {
        // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(mod_pow_schoolbook(&n(a), &(&p - &BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn mod_pow_large_operands() {
        // 2^2048 mod (2^61 - 1): Mersenne prime arithmetic is easy to check:
        // 2^61 = 1 mod p, so 2^2048 = 2^(2048 mod 61) = 2^35.
        let p = n((1u64 << 61) - 1);
        let e = BigUint::from_u64(2048);
        assert_eq!(mod_pow_schoolbook(&n(2), &e, &p), n(1u64 << 35));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_match() {
        // The compatibility surface must agree with the context API and
        // the schoolbook reference for both odd and even moduli.
        for m in [7u64, 97, 4096, 1_000_000_007] {
            assert_eq!(mod_pow(&n(123), &n(45), &n(m)), mod_pow_schoolbook(&n(123), &n(45), &n(m)));
        }
        assert_eq!(mod_pow(&n(5), &n(3), &n(1)), n(0));
        let (p, q) = (n(3), n(5));
        let q_inv = mod_inv(&q, &p).unwrap();
        let via_ctx = crate::montgomery::CrtContext::new(&p, &q, &n(1), &n(1), &q_inv);
        assert_eq!(
            &crt_combine(&n(2), &n(3), &p, &q, &q_inv) % &n(15),
            &via_ctx.exp(&n(8)) % &n(15)
        );
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(&n(12), &n(18)), n(6));
        assert_eq!(gcd(&n(17), &n(31)), n(1));
        assert_eq!(gcd(&n(0), &n(5)), n(5));
        assert_eq!(gcd(&n(5), &n(0)), n(5));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = n(240);
        let b = n(46);
        let (g, x, y) = extended_gcd(&a, &b);
        assert_eq!(g, n(2));
        // a*x + b*y == g
        let lhs = &(&BigInt::from_biguint(a) * &x) + &(&BigInt::from_biguint(b) * &y);
        assert_eq!(lhs, BigInt::from_biguint(g));
    }

    #[test]
    fn mod_inv_round_trip() {
        let m = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            let inv = mod_inv(&n(a), &m).unwrap();
            assert_eq!(mod_mul(&n(a), &inv, &m), BigUint::one());
        }
    }

    #[test]
    fn mod_inv_nonexistent() {
        assert!(mod_inv(&n(6), &n(9)).is_none());
        assert!(mod_inv(&n(2), &BigUint::zero()).is_none());
    }

    #[test]
    #[allow(deprecated)]
    fn crt_recombines() {
        // x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15.
        let p = n(3);
        let q = n(5);
        let q_inv = mod_inv(&q, &p).unwrap();
        let x = crt_combine(&n(2), &n(3), &p, &q, &q_inv);
        assert_eq!(&x % &n(15), n(8));
    }
}
