//! Precomputed modular-arithmetic contexts: Montgomery multiplication,
//! fixed-window exponentiation and CRT recombination.
//!
//! The stateless helpers in [`crate::modular`] recompute everything per
//! call; RSA performs hundreds of modular multiplications against the
//! *same* modulus per private operation, so this module front-loads the
//! per-modulus work into context types built once and reused:
//!
//! - [`Montgomery`] — an odd-modulus context holding `-n^-1 mod 2^64`,
//!   `R^2 mod n` (with `R = 2^(64k)` for a `k`-limb modulus) and the
//!   Montgomery form of 1. Multiplication uses REDC, exponentiation a
//!   fixed 4-bit window with an on-context table of base powers.
//! - [`ModExpContext`] — the public entry point: Montgomery for odd
//!   moduli `> 1`, automatic schoolbook fallback otherwise, preserving
//!   the exact semantics of the deprecated `modular::mod_pow`.
//! - [`CrtContext`] — a two-prime RSA private-operation context: one
//!   `ModExpContext` per prime plus Garner recombination.

use crate::modular;
use crate::BigUint;

/// Window width (bits) for fixed-window exponentiation.
const WINDOW: usize = 4;

/// A Montgomery-multiplication context for a fixed odd modulus `n > 1`.
///
/// Values are converted into Montgomery form (`x * R mod n`), multiplied
/// with REDC (one interleaved reduction per limb instead of a full
/// division per product), and converted back on the way out. All the
/// per-modulus constants are computed once in [`Montgomery::new`].
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{montgomery::Montgomery, BigUint};
///
/// let m = Montgomery::new(&BigUint::from_u64(497)).unwrap();
/// let r = m.pow(&BigUint::from_u64(4), &BigUint::from_u64(13));
/// assert_eq!(r, BigUint::from_u64(445));
/// ```
#[derive(Clone)]
pub struct Montgomery {
    /// The modulus.
    n: BigUint,
    /// The modulus as exactly `k` little-endian limbs.
    n_limbs: Vec<u64>,
    /// `-n^-1 mod 2^64`, the REDC folding constant.
    n0_inv: u64,
    /// `R^2 mod n` as `k` limbs; multiplying by it converts into
    /// Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` as `k` limbs: the Montgomery form of 1.
    one: Vec<u64>,
}

impl std::fmt::Debug for Montgomery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Montgomery({} bits)", self.n.bit_len())
    }
}

impl Montgomery {
    /// Builds a context for `n`. Returns `None` unless `n` is odd and
    /// greater than 1 (the REDC constant only exists for odd moduli).
    pub fn new(n: &BigUint) -> Option<Self> {
        if n.is_even() || n.is_zero() || n.is_one() {
            return None;
        }
        let n_limbs = n.limbs().to_vec();
        let k = n_limbs.len();
        // Newton's method for the inverse of n[0] mod 2^64: an odd number
        // is its own inverse mod 8, and each step doubles the valid bits.
        let n0 = n_limbs[0];
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        let r2 = to_limbs(&(&(&BigUint::one() << (128 * k)) % n), k);
        let one = to_limbs(&(&(&BigUint::one() << (64 * k)) % n), k);
        Some(Montgomery { n: n.clone(), n_limbs, n0_inv, r2, one })
    }

    /// The modulus this context was built for.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Computes `base^exp mod n` by fixed-window exponentiation in
    /// Montgomery form. `exp == 0` yields 1; `base` is reduced first.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let base_m = self.to_mont(&(base % &self.n));
        // Table of base^0 .. base^(2^WINDOW - 1) in Montgomery form.
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(self.one.clone());
        table.push(base_m.clone());
        for i in 2..1usize << WINDOW {
            table.push(self.mont_mul(&table[i - 1], &base_m));
        }
        let bits = exp.bit_len();
        let mut acc = self.one.clone();
        for w in (0..bits.div_ceil(WINDOW)).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut val = 0usize;
            for b in (0..WINDOW).rev() {
                val <<= 1;
                if exp.bit(w * WINDOW + b) {
                    val |= 1;
                }
            }
            if val != 0 {
                acc = self.mont_mul(&acc, &table[val]);
            }
        }
        self.demont(&acc)
    }

    /// Computes `(a * b) mod n` with two REDC passes (no full division).
    ///
    /// `mont_mul(a, b)` yields `a*b*R^-1`; a second pass against `R^2`
    /// restores the plain representation.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.n_limbs.len();
        let t = self.mont_mul(&to_limbs(&(a % &self.n), k), &to_limbs(&(b % &self.n), k));
        BigUint::from_limbs(self.mont_mul(&t, &self.r2))
    }

    /// Converts `x < n` into Montgomery form.
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        self.mont_mul(&to_limbs(x, self.n_limbs.len()), &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain integer.
    fn demont(&self, xm: &[u64]) -> BigUint {
        let mut plain_one = vec![0u64; self.n_limbs.len()];
        plain_one[0] = 1;
        BigUint::from_limbs(self.mont_mul(xm, &plain_one))
    }

    /// Montgomery product `a * b * R^-1 mod n` over `k`-limb operands.
    ///
    /// Schoolbook product into a `2k+1`-limb buffer, then the textbook
    /// REDC loop: fold one low limb to zero per iteration by adding a
    /// multiple of `n`, and shift the whole buffer down `k` limbs at the
    /// end. Both inputs must be `< n`, so one conditional final subtract
    /// suffices.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n_limbs.len();
        let mut t = vec![0u64; 2 * k + 1];
        for i in 0..k {
            let ai = a[i] as u128;
            let mut carry = 0u64;
            for j in 0..k {
                let v = t[i + j] as u128 + ai * b[j] as u128 + carry as u128;
                t[i + j] = v as u64;
                carry = (v >> 64) as u64;
            }
            propagate_carry(&mut t[i + k..], carry);
        }
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n0_inv) as u128;
            let mut carry = 0u64;
            for j in 0..k {
                let v = t[i + j] as u128 + m * self.n_limbs[j] as u128 + carry as u128;
                t[i + j] = v as u64;
                carry = (v >> 64) as u64;
            }
            propagate_carry(&mut t[i + k..], carry);
        }
        let mut r = t[k..2 * k].to_vec();
        if t[2 * k] != 0 || ge(&r, &self.n_limbs) {
            sub_in_place(&mut r, &self.n_limbs);
        }
        r
    }
}

/// Pads the limbs of `x` (which must fit) to exactly `k` limbs.
fn to_limbs(x: &BigUint, k: usize) -> Vec<u64> {
    let mut limbs = x.limbs().to_vec();
    debug_assert!(limbs.len() <= k, "operand wider than modulus");
    limbs.resize(k, 0);
    limbs
}

/// Adds `carry` into the little-endian slice `t`, rippling as needed.
fn propagate_carry(t: &mut [u64], mut carry: u64) {
    let mut idx = 0;
    while carry != 0 {
        let v = t[idx] as u128 + carry as u128;
        t[idx] = v as u64;
        carry = (v >> 64) as u64;
        idx += 1;
    }
}

/// Compares equal-length little-endian slices: `a >= b`.
fn ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Subtracts `b` from `a` in place (equal-length slices); the final
/// borrow, if any, is absorbed by the caller's overflow limb.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (v, b1) = a[i].overflowing_sub(b[i]);
        let (v, b2) = v.overflowing_sub(borrow);
        a[i] = v;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

/// A precomputed modular-exponentiation context for an arbitrary modulus.
///
/// Odd moduli `> 1` get a [`Montgomery`] fast path; everything else falls
/// back to schoolbook square-and-multiply so the semantics of the
/// deprecated `modular::mod_pow` are preserved exactly (`m == 1` yields
/// zero, `exp == 0` yields one).
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{montgomery::ModExpContext, BigUint};
///
/// let ctx = ModExpContext::new(&BigUint::from_u64(497));
/// assert!(ctx.is_accelerated());
/// let r = ctx.pow(&BigUint::from_u64(4), &BigUint::from_u64(13));
/// assert_eq!(r, BigUint::from_u64(445));
/// ```
#[derive(Clone)]
pub struct ModExpContext {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Mont(Montgomery),
    Schoolbook(BigUint),
}

impl std::fmt::Debug for ModExpContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_accelerated() { "montgomery" } else { "schoolbook" };
        write!(f, "ModExpContext({} bits, {kind})", self.modulus().bit_len())
    }
}

impl ModExpContext {
    /// Builds a context for `m`, choosing Montgomery or schoolbook.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero, matching `mod_pow`.
    pub fn new(m: &BigUint) -> Self {
        assert!(!m.is_zero(), "modulus is zero");
        let inner = match Montgomery::new(m) {
            Some(mont) => Inner::Mont(mont),
            None => Inner::Schoolbook(m.clone()),
        };
        ModExpContext { inner }
    }

    /// The modulus this context was built for.
    pub fn modulus(&self) -> &BigUint {
        match &self.inner {
            Inner::Mont(mont) => mont.modulus(),
            Inner::Schoolbook(m) => m,
        }
    }

    /// Whether the Montgomery fast path is active (odd modulus `> 1`).
    pub fn is_accelerated(&self) -> bool {
        matches!(self.inner, Inner::Mont(_))
    }

    /// Computes `base^exp mod m` with the same semantics as the
    /// deprecated `modular::mod_pow`.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match &self.inner {
            Inner::Mont(mont) => mont.pow(base, exp),
            Inner::Schoolbook(m) => modular::mod_pow_schoolbook(base, exp, m),
        }
    }

    /// Computes `(a * b) mod m`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        match &self.inner {
            Inner::Mont(mont) => mont.mul_mod(a, b),
            Inner::Schoolbook(m) => modular::mod_mul(a, b, m),
        }
    }
}

/// A two-prime CRT context for the RSA private operation.
///
/// Holds one [`ModExpContext`] per prime plus the CRT exponents
/// (`d_p = d mod p-1`, `d_q = d mod q-1`) and `q_inv = q^-1 mod p`, so a
/// private operation costs two half-width exponentiations against
/// prebuilt contexts plus a recombination.
///
/// The `Debug` impl redacts the exponents: they are equivalent to the
/// private key.
#[derive(Clone)]
pub struct CrtContext {
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
    p_ctx: ModExpContext,
    q_ctx: ModExpContext,
}

impl std::fmt::Debug for CrtContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CrtContext({} bits, <crt exponents redacted>)", (&self.p * &self.q).bit_len())
    }
}

impl CrtContext {
    /// Builds a CRT context from the private-key components. RSA primes
    /// are odd, so both per-prime contexts take the Montgomery path; the
    /// schoolbook fallback keeps degenerate test moduli working.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is zero.
    pub fn new(p: &BigUint, q: &BigUint, d_p: &BigUint, d_q: &BigUint, q_inv: &BigUint) -> Self {
        CrtContext {
            p: p.clone(),
            q: q.clone(),
            d_p: d_p.clone(),
            d_q: d_q.clone(),
            q_inv: q_inv.clone(),
            p_ctx: ModExpContext::new(p),
            q_ctx: ModExpContext::new(q),
        }
    }

    /// The RSA private operation `c^d mod p*q` via CRT: two half-width
    /// exponentiations and a Garner recombination.
    pub fn exp(&self, c: &BigUint) -> BigUint {
        let mp = self.p_ctx.pow(&(c % &self.p), &self.d_p);
        let mq = self.q_ctx.pow(&(c % &self.q), &self.d_q);
        // h = q_inv * (mp - mq) mod p ; result = mq + q * h
        let h = modular::mod_mul(&self.q_inv, &modular::mod_sub(&mp, &mq, &self.p), &self.p);
        &mq + &(&self.q * &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{mod_inv, mod_pow_schoolbook};

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    /// A 256-bit odd modulus built from a deterministic byte pattern.
    fn wide_odd() -> BigUint {
        let bytes: Vec<u8> = (0..32).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)).collect();
        let mut m = BigUint::from_bytes_be(&bytes);
        if m.is_even() {
            m = &m + &BigUint::one();
        }
        m
    }

    #[test]
    fn rejects_even_zero_and_one_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&n(4096)).is_none());
        assert!(Montgomery::new(&n(3)).is_some());
    }

    #[test]
    fn pow_matches_schoolbook_single_limb() {
        let m = n(1_000_000_007);
        let mont = Montgomery::new(&m).unwrap();
        for (b, e) in [(0u64, 5u64), (2, 0), (2, 10), (4, 13), (65537, 65537), (u64::MAX, 12345)] {
            let got = mont.pow(&n(b), &n(e));
            let want = mod_pow_schoolbook(&n(b), &n(e), &m);
            assert_eq!(got, want, "{b}^{e}");
        }
    }

    #[test]
    fn pow_matches_schoolbook_multi_limb() {
        let m = wide_odd();
        let mont = Montgomery::new(&m).unwrap();
        let base = &m - &n(12345);
        let exp = &m >> 3;
        assert_eq!(mont.pow(&base, &exp), mod_pow_schoolbook(&base, &exp, &m));
    }

    #[test]
    fn pow_reduces_oversized_base() {
        let m = n(97);
        let mont = Montgomery::new(&m).unwrap();
        let big_base = &wide_odd() * &wide_odd();
        assert_eq!(mont.pow(&big_base, &n(41)), mod_pow_schoolbook(&big_base, &n(41), &m));
    }

    #[test]
    fn mul_mod_matches_modular() {
        let m = wide_odd();
        let mont = Montgomery::new(&m).unwrap();
        let a = &m - &n(1);
        let b = &m - &n(2);
        assert_eq!(mont.mul_mod(&a, &b), modular::mod_mul(&a, &b, &m));
        assert_eq!(mont.mul_mod(&BigUint::zero(), &a), BigUint::zero());
        assert_eq!(mont.mul_mod(&BigUint::one(), &a), a);
    }

    #[test]
    fn fermat_little_theorem_holds() {
        let p = n(1_000_000_007);
        let mont = Montgomery::new(&p).unwrap();
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(mont.pow(&n(a), &(&p - &BigUint::one())), BigUint::one());
        }
    }

    #[test]
    fn context_falls_back_on_even_modulus() {
        let ctx = ModExpContext::new(&n(4096));
        assert!(!ctx.is_accelerated());
        assert_eq!(ctx.pow(&n(3), &n(5)), mod_pow_schoolbook(&n(3), &n(5), &n(4096)));
        assert_eq!(ctx.mul_mod(&n(100), &n(100)), n(10_000 % 4096));
    }

    #[test]
    fn context_preserves_mod_pow_semantics() {
        // m == 1 -> 0, exp == 0 -> 1, base == 0 -> 0.
        assert_eq!(ModExpContext::new(&n(1)).pow(&n(5), &n(3)), n(0));
        assert_eq!(ModExpContext::new(&n(97)).pow(&n(2), &n(0)), n(1));
        assert_eq!(ModExpContext::new(&n(97)).pow(&n(0), &n(5)), n(0));
        assert_eq!(ModExpContext::new(&n(1_000_000)).pow(&n(2), &n(10)), n(1024));
    }

    #[test]
    #[should_panic(expected = "modulus is zero")]
    fn context_panics_on_zero_modulus() {
        ModExpContext::new(&BigUint::zero());
    }

    #[test]
    fn crt_matches_direct_exponentiation() {
        // p = 61, q = 53: the classic RSA toy example (n = 3233).
        let (p, q) = (n(61), n(53));
        let d = n(413); // e = 17; e*d = 1 mod lcm(60, 52) = 780
        let d_p = &d % &n(60);
        let d_q = &d % &n(52);
        let q_inv = mod_inv(&q, &p).unwrap();
        let crt = CrtContext::new(&p, &q, &d_p, &d_q, &q_inv);
        let m = &p * &q;
        for c in [0u64, 1, 2, 65, 123, 3232] {
            let got = &crt.exp(&n(c)) % &m;
            assert_eq!(got, mod_pow_schoolbook(&n(c), &d, &m), "c={c}");
        }
    }

    #[test]
    fn debug_redacts_crt_exponents() {
        let crt = CrtContext::new(&n(61), &n(53), &n(53), &n(49), &n(38));
        let s = format!("{crt:?}");
        assert!(s.contains("redacted"), "got {s}");
        assert!(!s.contains("53"), "got {s}");
    }
}
