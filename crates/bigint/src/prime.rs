//! Probabilistic primality testing and prime search.
//!
//! This crate deliberately has no dependency on a random-number generator:
//! Miller–Rabin witnesses are derived deterministically (small primes plus a
//! xorshift stream seeded from the candidate), and callers supply random
//! *candidates* themselves (see `wideleak_crypto::rsa`). This keeps the
//! whole stack reproducible from a single seed.

use crate::montgomery::ModExpContext;
use crate::BigUint;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Default number of Miller–Rabin rounds; gives an error probability well
/// below `2^-80` for the sizes used by the simulated CDM.
pub const DEFAULT_ROUNDS: u32 = 40;

/// Tests `n` for primality with trial division followed by `rounds` rounds
/// of Miller–Rabin with deterministically derived witnesses.
///
/// # Examples
///
/// ```
/// use wideleak_bigint::{prime::is_prime, BigUint};
///
/// assert!(is_prime(&BigUint::from_u64(104_729), 16)); // 10000th prime
/// assert!(!is_prime(&BigUint::from_u64(104_730), 16));
/// ```
pub fn is_prime(n: &BigUint, rounds: u32) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        if *n == p_big {
            return true;
        }
        if (n % &p_big).is_zero() {
            return false;
        }
    }
    miller_rabin(n, rounds)
}

/// Runs `rounds` Miller–Rabin rounds on odd `n > 3`.
fn miller_rabin(n: &BigUint, rounds: u32) -> bool {
    debug_assert!(n.is_odd());
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let n_minus_2 = &n_minus_1 - &one;

    // n - 1 = d * 2^s with d odd.
    let mut s = 0usize;
    let mut d = n_minus_1.clone();
    while d.is_even() {
        d = &d >> 1;
        s += 1;
    }

    // One Montgomery context per candidate: every witness exponentiation
    // and squaring below shares the same odd modulus.
    let ctx = ModExpContext::new(n);
    let mut witness_stream = WitnessStream::new(n);
    'rounds: for _ in 0..rounds {
        let a = witness_stream.next_witness(&n_minus_2);
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = ctx.mul_mod(&x, &x);
            if x == n_minus_1 {
                continue 'rounds;
            }
        }
        return false;
    }
    true
}

/// Deterministic stream of Miller–Rabin witnesses: the small primes first,
/// then xorshift-derived values seeded from the candidate.
struct WitnessStream {
    index: usize,
    state: u64,
}

impl WitnessStream {
    fn new(n: &BigUint) -> Self {
        // Seed from the candidate so distinct candidates see distinct
        // witness tails; keep it non-zero for xorshift.
        let seed = n.low_u64() ^ (n.bit_len() as u64) | 1;
        WitnessStream { index: 0, state: seed }
    }

    /// Produces a witness in `[2, n-2]` (caller passes `n - 2` as `max`).
    fn next_witness(&mut self, max: &BigUint) -> BigUint {
        let two = BigUint::from_u64(2);
        if self.index < SMALL_PRIMES.len() {
            let w = BigUint::from_u64(SMALL_PRIMES[self.index]);
            self.index += 1;
            if &w <= max {
                return w;
            }
        }
        // xorshift64*
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let span = max.checked_sub(&two).unwrap_or_else(BigUint::zero);
        if span.is_zero() {
            return two;
        }
        &(&BigUint::from_u64(self.state) % &span) + &two
    }
}

/// Finds the smallest probable prime `>= candidate`, forcing oddness first.
///
/// Used by RSA key generation: the caller draws a random candidate of the
/// right bit length and this routine walks forward to a prime.
///
/// # Panics
///
/// Panics if `candidate` is zero or one (no meaningful search start).
pub fn next_prime_from(candidate: &BigUint, rounds: u32) -> BigUint {
    assert!(!candidate.is_zero() && !candidate.is_one(), "prime search requires a candidate >= 2");
    let two = BigUint::from_u64(2);
    if *candidate == two {
        return two;
    }
    let mut n = candidate.clone();
    if n.is_even() {
        n = &n + &BigUint::one();
    }
    loop {
        if is_prime(&n, rounds) {
            return n;
        }
        n = &n + &two;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_primes_recognized() {
        for p in [2u64, 3, 5, 7, 199, 211, 104_729] {
            assert!(is_prime(&n(p), 16), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [0u64, 1, 4, 9, 15, 21, 100, 104_730, 1_000_000] {
            assert!(!is_prime(&n(c), 16), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825_265] {
            assert!(!is_prime(&n(c), 16), "Carmichael {c} should be composite");
        }
    }

    #[test]
    fn known_large_primes() {
        // 2^61 - 1 is a Mersenne prime.
        assert!(is_prime(&n((1u64 << 61) - 1), 16));
        // 2^89 - 1 is a Mersenne prime.
        let m89 = &(&BigUint::one() << 89) - &BigUint::one();
        assert!(is_prime(&m89, 16));
        // 2^67 - 1 = 193707721 * 761838257287 (famously composite).
        let m67 = &(&BigUint::one() << 67) - &BigUint::one();
        assert!(!is_prime(&m67, 16));
    }

    #[test]
    fn semiprime_rejected() {
        // Product of two 32-bit primes.
        let p = n(4_294_967_291); // 2^32 - 5, prime
        let q = n(4_294_967_279); // prime
        assert!(!is_prime(&(&p * &q), 16));
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime_from(&n(2), 16), n(2));
        assert_eq!(next_prime_from(&n(14), 16), n(17));
        assert_eq!(next_prime_from(&n(17), 16), n(17));
        assert_eq!(next_prime_from(&n(90), 16), n(97));
    }

    #[test]
    #[should_panic(expected = "candidate >= 2")]
    fn next_prime_rejects_zero() {
        next_prime_from(&BigUint::zero(), 16);
    }

    #[test]
    fn prime_density_sanity() {
        // Count primes below 1000: should be exactly 168.
        let count = (2u64..1000).filter(|&v| is_prime(&n(v), 8)).count();
        assert_eq!(count, 168);
    }
}
