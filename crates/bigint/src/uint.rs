//! Unsigned arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Rem, Shl, Shr, Sub};

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs
/// (the canonical representation of zero is an empty limb vector).
///
/// # Examples
///
/// ```
/// use wideleak_bigint::BigUint;
///
/// let n = BigUint::from_bytes_be(&[0x01, 0x00]);
/// assert_eq!(n, BigUint::from_u64(256));
/// assert_eq!(n.to_bytes_be(), vec![0x01, 0x00]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid digit {:?} in big integer literal", self.offending)
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// The value zero.
    ///
    /// # Examples
    ///
    /// ```
    /// # use wideleak_bigint::BigUint;
    /// assert!(BigUint::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint { limbs: vec![v] };
        n.normalize();
        n
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut n = BigUint { limbs: vec![v as u64, (v >> 64) as u64] };
        n.normalize();
        n
    }

    /// Builds a value from raw little-endian limbs.
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// The raw little-endian limbs (normalized: no trailing zeros).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Parses a big-endian byte string (the usual cryptographic encoding).
    ///
    /// Leading zero bytes are accepted and ignored.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to the minimal big-endian byte string.
    ///
    /// Zero serializes to an empty vector; use [`BigUint::to_bytes_be_padded`]
    /// when a fixed width is required.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to a big-endian byte string left-padded with zeros to
    /// exactly `width` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bytes.
    pub fn to_bytes_be_padded(&self, width: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= width, "value of {} bytes does not fit in {} bytes", raw.len(), width);
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if a non-hex character is present.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let digits: Vec<u8> = s
            .chars()
            .map(|c| c.to_digit(16).map(|d| d as u8).ok_or(ParseBigUintError { offending: c }))
            .collect::<Result<_, _>>()?;
        let mut iter = digits.iter();
        if digits.len() % 2 == 1 {
            bytes.push(*iter.next().expect("odd-length digit string is non-empty"));
        }
        while let (Some(hi), Some(lo)) = (iter.next(), iter.next()) {
            bytes.push(hi << 4 | lo);
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Formats as a minimal lowercase hexadecimal string (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the representation if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// The lowest 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Checked subtraction: `self - rhs`, or `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let r = *rhs.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 | b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Division by a single limb.
    fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb divisors.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        let shift = divisor.limbs.last().expect("divisor is multi-limb").leading_zeros() as usize;
        let v = divisor << shift;
        let mut u = (self << shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0);

        let v_hi = v.limbs[n - 1];
        let v_lo = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            let u_hi2 = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut qhat: u128 = u_hi2 / v_hi as u128;
            let mut rhat: u128 = u_hi2 % v_hi as u128;
            while qhat >> 64 != 0 || qhat * v_lo as u128 > (rhat << 64 | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply and subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = t as u64;
                borrow = t >> 64;
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;

            if t < 0 {
                // qhat was one too large; add back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v.limbs[i] as u128 + carry;
                    u[j + i] = s as u64;
                    carry = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        u.truncate(n);
        let rem = &BigUint::from_limbs(u) >> shift;
        (BigUint::from_limbs(q), rem)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal conversion via repeated division by 10^19 (largest power
        // of ten in a u64).
        if self.is_zero() {
            return f.write_str("0");
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.div_rem_u64(CHUNK);
            parts.push(r);
            n = q;
        }
        let mut s = String::new();
        for (i, p) in parts.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&p.to_string());
            } else {
                s.push_str(&format!("{p:019}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl Add for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) =
            if self.limbs.len() >= rhs.limbs.len() { (self, rhs) } else { (rhs, self) };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let s = *short.limbs.get(i).unwrap_or(&0);
            let (r1, c1) = long.limbs[i].overflowing_add(s);
            let (r2, c2) = r1.overflowing_add(carry);
            out.push(r2);
            carry = (c1 | c2) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }
}

impl Sub for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] for a fallible form.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Div for &BigUint {
    type Output = BigUint;

    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;

    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push(l << bit_shift | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = if i + 1 < src.len() { src[i + 1] << (64 - bit_shift) } else { 0 };
            out.push(src[i] >> bit_shift | hi);
        }
        BigUint::from_limbs(out)
    }
}

impl BitAnd for &BigUint {
    type Output = BigUint;

    fn bitand(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().min(rhs.limbs.len());
        BigUint::from_limbs((0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect())
    }
}

impl BitOr for &BigUint {
    type Output = BigUint;

    fn bitor(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        BigUint::from_limbs(
            (0..n)
                .map(|i| self.limbs.get(i).unwrap_or(&0) | rhs.limbs.get(i).unwrap_or(&0))
                .collect(),
        )
    }
}

impl BitXor for &BigUint {
    type Output = BigUint;

    fn bitxor(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        BigUint::from_limbs(
            (0..n)
                .map(|i| self.limbs.get(i).unwrap_or(&0) ^ rhs.limbs.get(i).unwrap_or(&0))
                .collect(),
        )
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident :: $method:ident),+) => {$(
        impl $trait for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
    )+};
}

forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_identities() {
        let zero = BigUint::zero();
        let one = BigUint::one();
        assert!(zero.is_zero());
        assert!(one.is_one());
        assert!(!one.is_zero());
        assert_eq!(&zero + &one, one);
        assert_eq!(&one * &zero, zero);
        assert_eq!(BigUint::default(), zero);
    }

    #[test]
    fn bytes_round_trip() {
        let n = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(n.to_bytes_be(), vec![0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05]);
    }

    #[test]
    fn bytes_ignores_leading_zeros() {
        let n = BigUint::from_bytes_be(&[0, 0, 0x12, 0x34]);
        assert_eq!(n, BigUint::from_u64(0x1234));
        assert_eq!(n.to_bytes_be(), vec![0x12, 0x34]);
    }

    #[test]
    fn padded_bytes() {
        let n = BigUint::from_u64(0xabcd);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        BigUint::from_u64(0x1_0000).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_round_trip() {
        let n = BigUint::from_hex("deadbeef0102030405").unwrap();
        assert_eq!(n.to_hex(), "deadbeef0102030405");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::zero().to_hex(), "0");
        // Odd-length strings are accepted.
        assert_eq!(BigUint::from_hex("f00").unwrap(), BigUint::from_u64(0xf00));
    }

    #[test]
    fn hex_rejects_garbage() {
        let err = BigUint::from_hex("12g4").unwrap_err();
        assert_eq!(err, ParseBigUintError { offending: 'g' });
        assert!(err.to_string().contains('g'));
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum, BigUint::from_u128(1u128 << 64));
        assert_eq!(sum.bit_len(), 65);
    }

    #[test]
    fn subtraction_borrows_across_limbs() {
        let a = BigUint::from_u128(1u128 << 64);
        let b = BigUint::one();
        assert_eq!(&a - &b, BigUint::from_u64(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(BigUint::one().checked_sub(&BigUint::from_u64(2)), None);
        assert_eq!(BigUint::from_u64(5).checked_sub(&BigUint::from_u64(5)), Some(BigUint::zero()));
    }

    #[test]
    fn multiplication_matches_u128() {
        let a = 0xffff_ffff_ffffu64;
        let b = 0x1234_5678_9abcu64;
        let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
        assert_eq!(prod, BigUint::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn division_small() {
        let (q, r) = BigUint::from_u64(100).div_rem(&BigUint::from_u64(7));
        assert_eq!(q, BigUint::from_u64(14));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn division_multi_limb() {
        let a = BigUint::from_hex("1fffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("ffffffffffffffffffff").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_knuth_add_back_case() {
        // Crafted to exercise the rare "add back" branch: u = b^2/2 - 1,
        // v = b/2 where b = 2^64 requires correction in Algorithm D.
        let u = BigUint::from_hex("7fffffffffffffffffffffffffffffff").unwrap();
        let v = BigUint::from_hex("80000000000000000000000000000001").unwrap();
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let n = BigUint::from_u64(0b1011);
        assert_eq!(&n << 1, BigUint::from_u64(0b10110));
        assert_eq!(&n << 64, BigUint::from_u128(0b1011u128 << 64));
        assert_eq!(&(&n << 64) >> 64, n);
        assert_eq!(&n >> 2, BigUint::from_u64(0b10));
        assert_eq!(&n >> 200, BigUint::zero());
        assert_eq!(&n << 0, n);
    }

    #[test]
    fn bit_access() {
        let mut n = BigUint::zero();
        n.set_bit(0, true);
        n.set_bit(100, true);
        assert!(n.bit(0));
        assert!(n.bit(100));
        assert!(!n.bit(50));
        assert_eq!(n.bit_len(), 101);
        n.set_bit(100, false);
        assert_eq!(n, BigUint::one());
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from_u64(42).is_even());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1u128 << 80);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from_u64(1234567890).to_string(), "1234567890");
        // 2^64 = 18446744073709551616
        let n = &BigUint::from_u64(u64::MAX) + &BigUint::one();
        assert_eq!(n.to_string(), "18446744073709551616");
        // 10^19 boundary padding
        let big = BigUint::from_hex("8ac7230489e800000").unwrap(); // 16 * 10^19
        assert_eq!(big.to_string(), "160000000000000000000");
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", BigUint::zero()), "BigUint(0x0)");
    }

    #[test]
    fn bit_ops() {
        let a = BigUint::from_u64(0b1100);
        let b = BigUint::from_u64(0b1010);
        assert_eq!(&a & &b, BigUint::from_u64(0b1000));
        assert_eq!(&a | &b, BigUint::from_u64(0b1110));
        assert_eq!(&a ^ &b, BigUint::from_u64(0b0110));
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(BigUint::zero().to_u64(), Some(0));
        assert_eq!(BigUint::from_u64(7).to_u64(), Some(7));
        assert_eq!(BigUint::from_u128(1u128 << 64).to_u64(), None);
        assert_eq!(BigUint::from_u128(1u128 << 64).low_u64(), 0);
    }
}
