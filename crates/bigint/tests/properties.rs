//! Property-based tests for the big-integer substrate: ring axioms,
//! division invariants, codec round-trips, and modular-arithmetic laws.

use proptest::prelude::*;
use wideleak_bigint::modular::{gcd, mod_inv, mod_mul, mod_pow_schoolbook};
use wideleak_bigint::montgomery::{ModExpContext, Montgomery};
use wideleak_bigint::{BigInt, BigUint};

/// Strategy producing BigUints of up to ~4 limbs from random byte strings.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| BigUint::from_bytes_be(&b))
}

/// Non-zero variant.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|n| if n.is_zero() { BigUint::one() } else { n })
}

/// Odd modulus > 1: the domain of the Montgomery fast path.
fn biguint_odd() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|n| {
        let mut n = n;
        if n.is_even() {
            n = &n + &BigUint::one();
        }
        if n.is_one() {
            n = BigUint::from_u64(3);
        }
        n
    })
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_invariant(a in biguint(), d in biguint_nonzero()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let round = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, round);
    }

    #[test]
    fn hex_round_trip(a in biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn padded_bytes_parse_back(a in biguint()) {
        let padded = a.to_bytes_be_padded(40);
        prop_assert_eq!(padded.len(), 40);
        prop_assert_eq!(BigUint::from_bytes_be(&padded), a);
    }

    #[test]
    fn shl_shr_round_trip(a in biguint(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint(), s in 0usize..100) {
        let mut pow2 = BigUint::one();
        pow2 = &pow2 << s;
        prop_assert_eq!(&a << s, &a * &pow2);
    }

    #[test]
    fn mod_pow_multiplicative(a in biguint(), b in biguint(), m in biguint_nonzero()) {
        // (a*b) mod m == (a mod m)(b mod m) mod m
        prop_assert_eq!(mod_mul(&a, &b, &m), &(&a * &b) % &m);
    }

    #[test]
    fn mod_pow_exponent_addition(
        a in biguint_nonzero(),
        e1 in 0u64..64,
        e2 in 0u64..64,
        m in biguint_nonzero(),
    ) {
        // a^(e1+e2) == a^e1 * a^e2 (mod m)
        let ctx = ModExpContext::new(&m);
        let lhs = ctx.pow(&a, &BigUint::from_u64(e1 + e2));
        let rhs = mod_mul(
            &ctx.pow(&a, &BigUint::from_u64(e1)),
            &ctx.pow(&a, &BigUint::from_u64(e2)),
            &m,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn montgomery_pow_matches_schoolbook(
        a in biguint(),
        e in biguint(),
        m in biguint_odd(),
    ) {
        // The Montgomery fast path is differentially pinned to the
        // schoolbook reference over random odd moduli.
        let mont = Montgomery::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(mont.pow(&a, &e), mod_pow_schoolbook(&a, &e, &m));
    }

    #[test]
    fn montgomery_mul_matches_plain_reduction(
        a in biguint(),
        b in biguint(),
        m in biguint_odd(),
    ) {
        let mont = Montgomery::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(mont.mul_mod(&a, &b), &(&a * &b) % &m);
    }

    #[test]
    fn context_matches_schoolbook_on_any_modulus(
        a in biguint(),
        e in 0u64..512,
        m in biguint_nonzero(),
    ) {
        // Even moduli take the schoolbook fallback; odd ones take
        // Montgomery. Both must agree with the reference everywhere.
        let ctx = ModExpContext::new(&m);
        prop_assert_eq!(ctx.is_accelerated(), m.is_odd() && !m.is_one());
        let e = BigUint::from_u64(e);
        prop_assert_eq!(ctx.pow(&a, &e), mod_pow_schoolbook(&a, &e, &m));
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn mod_inv_is_inverse(a in biguint_nonzero(), m in biguint_nonzero()) {
        if let Some(inv) = mod_inv(&a, &m) {
            if !m.is_one() {
                prop_assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
            }
        }
    }

    #[test]
    fn signed_add_sub_round_trip(a in any::<i64>(), b in any::<i64>()) {
        let ba = BigInt::from(a);
        let bb = BigInt::from(b);
        prop_assert_eq!(&(&ba + &bb) - &bb, ba);
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint(), b in biguint()) {
        if a >= b {
            prop_assert!(a.checked_sub(&b).is_some());
        } else {
            prop_assert!(a.checked_sub(&b).is_none());
        }
    }
}
