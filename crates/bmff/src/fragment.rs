//! Fragmented-MP4 builders and parsers.
//!
//! A DASH representation as packaged by the simulated CDN consists of an
//! [`InitSegment`] (ftyp + moov, carrying `pssh` and `tenc`) followed by
//! [`MediaSegment`]s (moof carrying `senc`/`trun` + mdat). These are the
//! byte streams the OTT apps download, the monitor inspects, and the
//! attack PoC decrypts.

use crate::types::{Frma, Pssh, Schm, Senc, Tenc, Trun};
use crate::{find_in, BmffError, FourCc, Mp4Box};

/// Track content kind, mirrored in the `hdlr` box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackKind {
    /// A video track.
    Video,
    /// An audio track.
    Audio,
    /// A subtitle/text track.
    Subtitle,
}

impl TrackKind {
    /// The `hdlr` handler type fourcc.
    pub fn handler(self) -> FourCc {
        match self {
            TrackKind::Video => FourCc(*b"vide"),
            TrackKind::Audio => FourCc(*b"soun"),
            TrackKind::Subtitle => FourCc(*b"text"),
        }
    }

    /// The unencrypted sample-entry format.
    pub fn sample_format(self) -> FourCc {
        match self {
            TrackKind::Video => FourCc(*b"avc1"),
            TrackKind::Audio => FourCc(*b"mp4a"),
            TrackKind::Subtitle => FourCc(*b"wvtt"),
        }
    }

    /// The encrypted sample-entry format (`encv`/`enca`/`enct`).
    pub fn encrypted_format(self) -> FourCc {
        match self {
            TrackKind::Video => FourCc(*b"encv"),
            TrackKind::Audio => FourCc(*b"enca"),
            TrackKind::Subtitle => FourCc(*b"enct"),
        }
    }

    /// Parses a handler fourcc back to a kind.
    pub fn from_handler(h: FourCc) -> Option<Self> {
        match &h.0 {
            b"vide" => Some(TrackKind::Video),
            b"soun" => Some(TrackKind::Audio),
            b"text" => Some(TrackKind::Subtitle),
            _ => None,
        }
    }
}

/// An initialization segment: `ftyp` + `moov` with protection signalling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitSegment {
    /// Track id referenced by media segments.
    pub track_id: u32,
    /// What kind of track this is.
    pub kind: TrackKind,
    /// Protection defaults; `None` for clear tracks.
    pub tenc: Option<Tenc>,
    /// Protection scheme (`cenc`/`cbcs`); `None` for clear tracks.
    pub scheme: Option<FourCc>,
    /// DRM headers; empty for clear tracks.
    pub pssh: Vec<Pssh>,
}

impl InitSegment {
    /// Builds a clear (unprotected) init segment.
    pub fn clear(track_id: u32, kind: TrackKind) -> Self {
        InitSegment { track_id, kind, tenc: None, scheme: None, pssh: Vec::new() }
    }

    /// Builds a protected init segment.
    pub fn protected(
        track_id: u32,
        kind: TrackKind,
        scheme: FourCc,
        tenc: Tenc,
        pssh: Vec<Pssh>,
    ) -> Self {
        InitSegment { track_id, kind, tenc: Some(tenc), scheme: Some(scheme), pssh }
    }

    /// Whether the track is signalled as encrypted.
    pub fn is_protected(&self) -> bool {
        self.tenc.as_ref().is_some_and(|t| t.is_protected)
    }

    /// Serializes to the full init-segment byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ftyp = {
            let mut payload = b"isom".to_vec();
            payload.extend_from_slice(&0u32.to_be_bytes());
            payload.extend_from_slice(b"isomiso2");
            Mp4Box::leaf(FourCc(*b"ftyp"), payload)
        };

        let tkhd = {
            let mut payload = vec![0u8; 4];
            payload.extend_from_slice(&self.track_id.to_be_bytes());
            Mp4Box::leaf(FourCc(*b"tkhd"), payload)
        };
        let hdlr = Mp4Box::leaf(FourCc(*b"hdlr"), self.kind.handler().0.to_vec());

        // Sample description: for protected tracks the entry is enc* with a
        // sinf carrying frma/schm/schi(tenc).
        let stsd = match (&self.tenc, self.scheme) {
            (Some(tenc), Some(scheme)) => {
                let sinf = Mp4Box::container(
                    FourCc(*b"sinf"),
                    vec![
                        Frma { original_format: self.kind.sample_format() }.to_box(),
                        Schm { scheme, version: 0x0001_0000 }.to_box(),
                        Mp4Box::container(FourCc(*b"schi"), vec![tenc.to_box()]),
                    ],
                );
                // Encode the sample entry as a leaf that embeds the sinf
                // bytes (real stsd entries carry codec config too; the
                // simulator keeps only the protection data).
                Mp4Box::leaf(self.kind.encrypted_format(), sinf.to_bytes())
            }
            _ => Mp4Box::leaf(self.kind.sample_format(), Vec::new()),
        };
        let stbl = Mp4Box::container(FourCc(*b"stbl"), vec![stsd]);
        let minf = Mp4Box::container(FourCc(*b"minf"), vec![stbl]);
        let mdia = Mp4Box::container(FourCc(*b"mdia"), vec![hdlr, minf]);
        let trak = Mp4Box::container(FourCc(*b"trak"), vec![tkhd, mdia]);

        let mut moov_children = vec![trak];
        for p in &self.pssh {
            moov_children.push(p.to_box());
        }
        let moov = Mp4Box::container(FourCc(*b"moov"), moov_children);

        let mut out = ftyp.to_bytes();
        out.extend(moov.to_bytes());
        out
    }

    /// Parses an init segment from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError`] when required boxes are missing or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BmffError> {
        let boxes = Mp4Box::parse_sequence(bytes)?;
        let moov = find_in(&boxes, FourCc(*b"moov"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"moov") })?;

        let tkhd = moov
            .find(FourCc(*b"tkhd"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"tkhd") })?;
        let tkhd_payload = tkhd.payload().expect("tkhd is a leaf");
        if tkhd_payload.len() < 8 {
            return Err(BmffError::Truncated { context: "tkhd" });
        }
        let track_id = u32::from_be_bytes(tkhd_payload[4..8].try_into().expect("4 bytes"));

        let hdlr = moov
            .find(FourCc(*b"hdlr"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"hdlr") })?;
        let handler_bytes: [u8; 4] = hdlr
            .payload()
            .and_then(|p| p.get(..4))
            .ok_or(BmffError::Truncated { context: "hdlr" })?
            .try_into()
            .expect("4 bytes");
        let kind = TrackKind::from_handler(FourCc(handler_bytes))
            .ok_or(BmffError::Malformed { reason: "unknown handler type" })?;

        // Protection data lives inside the sample entry payload.
        let stsd_entry = moov
            .find(FourCc(*b"stbl"))
            .and_then(|stbl| match &stbl.data {
                crate::BoxData::Container(children) => children.first(),
                crate::BoxData::Leaf(_) => None,
            })
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"stbl") })?;

        let (tenc, scheme) = if stsd_entry.typ == kind.encrypted_format() {
            let sinf_bytes = stsd_entry.payload().expect("sample entry is a leaf");
            let (sinf, _) = Mp4Box::parse(sinf_bytes)?;
            let schm = sinf
                .find(FourCc(*b"schm"))
                .ok_or(BmffError::MissingBox { expected: FourCc(*b"schm") })?;
            let schm = Schm::from_payload(schm.payload().expect("schm is a leaf"))?;
            let tenc_box = sinf
                .find(FourCc(*b"tenc"))
                .ok_or(BmffError::MissingBox { expected: FourCc(*b"tenc") })?;
            let tenc = Tenc::from_payload(tenc_box.payload().expect("tenc is a leaf"))?;
            (Some(tenc), Some(schm.scheme))
        } else {
            (None, None)
        };

        let pssh = match &moov.data {
            crate::BoxData::Container(children) => children
                .iter()
                .filter(|c| c.typ == FourCc(*b"pssh"))
                .map(|c| Pssh::from_payload(c.payload().expect("pssh is a leaf")))
                .collect::<Result<Vec<_>, _>>()?,
            crate::BoxData::Leaf(_) => Vec::new(),
        };

        Ok(InitSegment { track_id, kind, tenc, scheme, pssh })
    }
}

/// A media segment: `moof` (mfhd/traf with trun + optional senc) + `mdat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaSegment {
    /// Fragment sequence number.
    pub sequence_number: u32,
    /// Track id, must match the init segment.
    pub track_id: u32,
    /// Per-sample sizes describing how `data` splits into samples.
    pub sample_sizes: Vec<u32>,
    /// Sample encryption info; `None` for clear segments.
    pub senc: Option<Senc>,
    /// The (possibly encrypted) concatenated sample payload.
    pub data: Vec<u8>,
}

impl MediaSegment {
    /// Splits `data` into per-sample slices according to `sample_sizes`.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Malformed`] when sizes do not cover the data.
    pub fn samples(&self) -> Result<Vec<&[u8]>, BmffError> {
        let mut out = Vec::with_capacity(self.sample_sizes.len());
        let mut offset = 0usize;
        for &size in &self.sample_sizes {
            let end = offset + size as usize;
            if end > self.data.len() {
                return Err(BmffError::Malformed { reason: "sample sizes exceed mdat" });
            }
            out.push(&self.data[offset..end]);
            offset = end;
        }
        if offset != self.data.len() {
            return Err(BmffError::Malformed { reason: "sample sizes do not cover mdat" });
        }
        Ok(out)
    }

    /// Serializes to the full media-segment byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mfhd = crate::types::Mfhd { sequence_number: self.sequence_number }.to_box();
        let tfhd = crate::types::Tfhd { track_id: self.track_id }.to_box();
        let trun = Trun { sample_sizes: self.sample_sizes.clone() }.to_box();
        let mut traf_children = vec![tfhd, trun];
        if let Some(senc) = &self.senc {
            traf_children.push(senc.to_box());
        }
        let traf = Mp4Box::container(FourCc(*b"traf"), traf_children);
        let moof = Mp4Box::container(FourCc(*b"moof"), vec![mfhd, traf]);
        let mdat = Mp4Box::leaf(FourCc(*b"mdat"), self.data.clone());

        let mut out = moof.to_bytes();
        out.extend(mdat.to_bytes());
        out
    }

    /// Parses a media segment from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError`] when required boxes are missing or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BmffError> {
        let boxes = Mp4Box::parse_sequence(bytes)?;
        let moof = find_in(&boxes, FourCc(*b"moof"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"moof") })?;
        let mdat = find_in(&boxes, FourCc(*b"mdat"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"mdat") })?;

        let mfhd = moof
            .find(FourCc(*b"mfhd"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"mfhd") })?;
        let mfhd = crate::types::Mfhd::from_payload(mfhd.payload().expect("mfhd is a leaf"))?;

        let tfhd = moof
            .find(FourCc(*b"tfhd"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"tfhd") })?;
        let tfhd = crate::types::Tfhd::from_payload(tfhd.payload().expect("tfhd is a leaf"))?;

        let trun = moof
            .find(FourCc(*b"trun"))
            .ok_or(BmffError::MissingBox { expected: FourCc(*b"trun") })?;
        let trun = Trun::from_payload(trun.payload().expect("trun is a leaf"))?;

        let senc = moof
            .find(FourCc(*b"senc"))
            .map(|b| Senc::from_payload(b.payload().expect("senc is a leaf")))
            .transpose()?;

        Ok(MediaSegment {
            sequence_number: mfhd.sequence_number,
            track_id: tfhd.track_id,
            sample_sizes: trun.sample_sizes,
            senc,
            data: mdat.payload().expect("mdat is a leaf").to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{KeyId, SampleEncryption, Subsample};

    fn kid(b: u8) -> KeyId {
        KeyId([b; 16])
    }

    #[test]
    fn track_kind_mappings() {
        assert_eq!(TrackKind::Video.handler(), FourCc(*b"vide"));
        assert_eq!(TrackKind::Audio.sample_format(), FourCc(*b"mp4a"));
        assert_eq!(TrackKind::Subtitle.encrypted_format(), FourCc(*b"enct"));
        for kind in [TrackKind::Video, TrackKind::Audio, TrackKind::Subtitle] {
            assert_eq!(TrackKind::from_handler(kind.handler()), Some(kind));
        }
        assert_eq!(TrackKind::from_handler(FourCc(*b"meta")), None);
    }

    #[test]
    fn clear_init_round_trip() {
        let init = InitSegment::clear(1, TrackKind::Audio);
        let parsed = InitSegment::from_bytes(&init.to_bytes()).unwrap();
        assert_eq!(parsed, init);
        assert!(!parsed.is_protected());
    }

    #[test]
    fn protected_init_round_trip() {
        let init = InitSegment::protected(
            2,
            TrackKind::Video,
            FourCc(*b"cenc"),
            Tenc::cenc(kid(5)),
            vec![Pssh::widevine(vec![kid(5)], b"req".to_vec())],
        );
        let parsed = InitSegment::from_bytes(&init.to_bytes()).unwrap();
        assert_eq!(parsed, init);
        assert!(parsed.is_protected());
        assert_eq!(parsed.scheme, Some(FourCc(*b"cenc")));
        assert_eq!(parsed.tenc.unwrap().default_kid, kid(5));
    }

    #[test]
    fn protected_cbcs_init_round_trip() {
        let init = InitSegment::protected(
            3,
            TrackKind::Audio,
            FourCc(*b"cbcs"),
            Tenc::cbcs(kid(8), [1; 16]),
            vec![],
        );
        let parsed = InitSegment::from_bytes(&init.to_bytes()).unwrap();
        assert_eq!(parsed.scheme, Some(FourCc(*b"cbcs")));
        assert_eq!(parsed.tenc.unwrap().constant_iv, Some([1; 16]));
    }

    #[test]
    fn init_missing_moov_rejected() {
        let only_ftyp = Mp4Box::leaf(FourCc(*b"ftyp"), b"isom".to_vec()).to_bytes();
        assert_eq!(
            InitSegment::from_bytes(&only_ftyp),
            Err(BmffError::MissingBox { expected: FourCc(*b"moov") })
        );
    }

    #[test]
    fn media_segment_round_trip_clear() {
        let seg = MediaSegment {
            sequence_number: 1,
            track_id: 1,
            sample_sizes: vec![3, 4],
            senc: None,
            data: b"aaabbbb".to_vec(),
        };
        let parsed = MediaSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(parsed, seg);
        let samples = parsed.samples().unwrap();
        assert_eq!(samples, vec![&b"aaa"[..], &b"bbbb"[..]]);
    }

    #[test]
    fn media_segment_round_trip_encrypted() {
        let seg = MediaSegment {
            sequence_number: 7,
            track_id: 2,
            sample_sizes: vec![10],
            senc: Some(Senc {
                entries: vec![SampleEncryption {
                    iv: vec![1; 8],
                    subsamples: vec![Subsample { clear_bytes: 2, encrypted_bytes: 8 }],
                }],
            }),
            data: vec![0xaa; 10],
        };
        let parsed = MediaSegment::from_bytes(&seg.to_bytes()).unwrap();
        assert_eq!(parsed, seg);
    }

    #[test]
    fn samples_validate_sizes() {
        let mut seg = MediaSegment {
            sequence_number: 1,
            track_id: 1,
            sample_sizes: vec![5],
            senc: None,
            data: vec![0; 4],
        };
        assert!(seg.samples().is_err(), "sizes exceed data");
        seg.sample_sizes = vec![2];
        assert!(seg.samples().is_err(), "sizes undershoot data");
        seg.sample_sizes = vec![2, 2];
        assert!(seg.samples().is_ok());
    }

    #[test]
    fn media_segment_missing_mdat_rejected() {
        let moof = Mp4Box::container(
            FourCc(*b"moof"),
            vec![crate::types::Mfhd { sequence_number: 1 }.to_box()],
        );
        assert_eq!(
            MediaSegment::from_bytes(&moof.to_bytes()),
            Err(BmffError::MissingBox { expected: FourCc(*b"mdat") })
        );
    }
}
