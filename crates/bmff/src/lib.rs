//! ISO Base Media File Format (ISO/IEC 14496-12) box codec.
//!
//! The WideLeak CDN packager stores media in fragmented MP4 files, the
//! standard container for MPEG-DASH delivery. This crate implements the
//! subset of ISO-BMFF that content protection needs:
//!
//! - a generic box tree ([`Mp4Box`]) with parse/serialize round-tripping,
//! - the CENC signalling boxes: `pssh` (protection system specific header,
//!   [`types::Pssh`]), `tenc` (track encryption defaults, [`types::Tenc`]),
//!   `senc` (per-sample IVs and subsample maps, [`types::Senc`]),
//!   `schm`/`frma` (scheme signalling),
//! - fragment builders/parsers ([`fragment`]) that the CDN and the attack
//!   PoC use to package and to reconstruct media.
//!
//! # Examples
//!
//! ```
//! use wideleak_bmff::{BoxData, FourCc, Mp4Box};
//!
//! let mdat = Mp4Box::leaf(FourCc(*b"mdat"), b"payload".to_vec());
//! let bytes = mdat.to_bytes();
//! let (parsed, used) = Mp4Box::parse(&bytes).unwrap();
//! assert_eq!(used, bytes.len());
//! assert_eq!(parsed, mdat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fragment;
mod reader;
pub mod types;

pub use reader::ByteReader;

use std::fmt;

/// A four-character box type code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourCc(pub [u8; 4]);

impl fmt::Debug for FourCc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FourCc({self})")
    }
}

impl fmt::Display for FourCc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

impl From<&[u8; 4]> for FourCc {
    fn from(v: &[u8; 4]) -> Self {
        FourCc(*v)
    }
}

/// Container box types: their payload is a sequence of child boxes.
pub const CONTAINER_TYPES: [&[u8; 4]; 12] = [
    b"moov", b"trak", b"mdia", b"minf", b"stbl", b"moof", b"traf", b"sinf", b"schi", b"edts",
    b"dinf", b"udta",
];

/// Errors produced when decoding box structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmffError {
    /// The byte stream ended before the structure was complete.
    Truncated {
        /// What was being parsed when the data ran out.
        context: &'static str,
    },
    /// A size field is inconsistent (smaller than the header, or past EOF).
    BadSize {
        /// The offending declared size.
        size: u64,
    },
    /// A versioned box carried an unsupported version.
    UnsupportedVersion {
        /// The version encountered.
        version: u8,
    },
    /// A box of an expected type was not found.
    MissingBox {
        /// The box type that was required.
        expected: FourCc,
    },
    /// A structural invariant of a typed payload was violated.
    Malformed {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
}

impl fmt::Display for BmffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmffError::Truncated { context } => {
                write!(f, "truncated input while parsing {context}")
            }
            BmffError::BadSize { size } => write!(f, "inconsistent box size {size}"),
            BmffError::UnsupportedVersion { version } => {
                write!(f, "unsupported box version {version}")
            }
            BmffError::MissingBox { expected } => write!(f, "missing required box {expected}"),
            BmffError::Malformed { reason } => write!(f, "malformed box payload: {reason}"),
        }
    }
}

impl std::error::Error for BmffError {}

/// Payload of a box: either child boxes or raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxData {
    /// A container whose payload is a sequence of child boxes.
    Container(Vec<Mp4Box>),
    /// A leaf carrying opaque payload bytes.
    Leaf(Vec<u8>),
}

/// A single box in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mp4Box {
    /// The four-character type code.
    pub typ: FourCc,
    /// The payload.
    pub data: BoxData,
}

impl Mp4Box {
    /// Creates a leaf box from raw payload bytes.
    pub fn leaf(typ: FourCc, payload: Vec<u8>) -> Self {
        Mp4Box { typ, data: BoxData::Leaf(payload) }
    }

    /// Creates a container box from children.
    pub fn container(typ: FourCc, children: Vec<Mp4Box>) -> Self {
        Mp4Box { typ, data: BoxData::Container(children) }
    }

    /// Whether `typ` is one of the known container types.
    pub fn is_container_type(typ: FourCc) -> bool {
        CONTAINER_TYPES.iter().any(|&t| FourCc(*t) == typ)
    }

    /// Parses one box from the front of `input`; returns it with the number
    /// of bytes consumed.
    ///
    /// Known container types are parsed recursively; everything else stays
    /// a leaf. Only the 32-bit size form is supported, which is ample for
    /// simulated segments.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] or [`BmffError::BadSize`] on
    /// malformed input.
    pub fn parse(input: &[u8]) -> Result<(Mp4Box, usize), BmffError> {
        if input.len() < 8 {
            return Err(BmffError::Truncated { context: "box header" });
        }
        let size = u32::from_be_bytes(input[..4].try_into().expect("4 bytes")) as usize;
        let typ = FourCc(input[4..8].try_into().expect("4 bytes"));
        if size < 8 || size > input.len() {
            return Err(BmffError::BadSize { size: size as u64 });
        }
        let payload = &input[8..size];
        let data = if Self::is_container_type(typ) {
            BoxData::Container(Self::parse_sequence(payload)?)
        } else {
            BoxData::Leaf(payload.to_vec())
        };
        Ok((Mp4Box { typ, data }, size))
    }

    /// Parses a back-to-back sequence of boxes covering all of `input`.
    ///
    /// # Errors
    ///
    /// Propagates the first structural error encountered.
    pub fn parse_sequence(mut input: &[u8]) -> Result<Vec<Mp4Box>, BmffError> {
        let mut boxes = Vec::new();
        while !input.is_empty() {
            let (b, used) = Self::parse(input)?;
            boxes.push(b);
            input = &input[used..];
        }
        Ok(boxes)
    }

    /// Serializes the box (and its subtree) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = match &self.data {
            BoxData::Leaf(bytes) => bytes.clone(),
            BoxData::Container(children) => children.iter().flat_map(|c| c.to_bytes()).collect(),
        };
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&((payload.len() + 8) as u32).to_be_bytes());
        out.extend_from_slice(&self.typ.0);
        out.extend_from_slice(&payload);
        out
    }

    /// Finds the first direct child of the given type (containers only).
    pub fn child(&self, typ: FourCc) -> Option<&Mp4Box> {
        match &self.data {
            BoxData::Container(children) => children.iter().find(|c| c.typ == typ),
            BoxData::Leaf(_) => None,
        }
    }

    /// Depth-first search for the first box of the given type in the
    /// subtree rooted at `self` (including `self`).
    pub fn find(&self, typ: FourCc) -> Option<&Mp4Box> {
        if self.typ == typ {
            return Some(self);
        }
        match &self.data {
            BoxData::Container(children) => children.iter().find_map(|c| c.find(typ)),
            BoxData::Leaf(_) => None,
        }
    }

    /// Leaf payload bytes, if this is a leaf.
    pub fn payload(&self) -> Option<&[u8]> {
        match &self.data {
            BoxData::Leaf(bytes) => Some(bytes),
            BoxData::Container(_) => None,
        }
    }
}

/// Finds the first box of `typ` in a box sequence (depth-first).
pub fn find_in(boxes: &[Mp4Box], typ: FourCc) -> Option<&Mp4Box> {
    boxes.iter().find_map(|b| b.find(typ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourcc_display() {
        assert_eq!(FourCc(*b"moov").to_string(), "moov");
        assert_eq!(FourCc([0x01, b'a', b'b', b'c']).to_string(), "\\x01abc");
        assert_eq!(format!("{:?}", FourCc(*b"mdat")), "FourCc(mdat)");
    }

    #[test]
    fn leaf_round_trip() {
        let b = Mp4Box::leaf(FourCc(*b"mdat"), vec![1, 2, 3, 4, 5]);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), 13);
        assert_eq!(&bytes[..4], &13u32.to_be_bytes());
        let (parsed, used) = Mp4Box::parse(&bytes).unwrap();
        assert_eq!(used, 13);
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_leaf_round_trip() {
        let b = Mp4Box::leaf(FourCc(*b"free"), vec![]);
        let (parsed, used) = Mp4Box::parse(&b.to_bytes()).unwrap();
        assert_eq!(used, 8);
        assert_eq!(parsed.payload(), Some(&[][..]));
    }

    #[test]
    fn container_round_trip() {
        let tree = Mp4Box::container(
            FourCc(*b"moov"),
            vec![
                Mp4Box::leaf(FourCc(*b"mvhd"), vec![0; 20]),
                Mp4Box::container(
                    FourCc(*b"trak"),
                    vec![Mp4Box::leaf(FourCc(*b"tkhd"), vec![7; 12])],
                ),
            ],
        );
        let bytes = tree.to_bytes();
        let (parsed, used) = Mp4Box::parse(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, tree);
    }

    #[test]
    fn nested_search() {
        let tree = Mp4Box::container(
            FourCc(*b"moov"),
            vec![Mp4Box::container(
                FourCc(*b"trak"),
                vec![Mp4Box::container(
                    FourCc(*b"mdia"),
                    vec![Mp4Box::leaf(FourCc(*b"hdlr"), b"vide".to_vec())],
                )],
            )],
        );
        let hdlr = tree.find(FourCc(*b"hdlr")).unwrap();
        assert_eq!(hdlr.payload(), Some(&b"vide"[..]));
        assert!(tree.find(FourCc(*b"zzzz")).is_none());
        assert!(tree.child(FourCc(*b"trak")).is_some());
        assert!(tree.child(FourCc(*b"hdlr")).is_none(), "child() is not recursive");
    }

    #[test]
    fn parse_sequence_covers_input() {
        let a = Mp4Box::leaf(FourCc(*b"ftyp"), b"isom".to_vec());
        let b = Mp4Box::leaf(FourCc(*b"mdat"), vec![9; 3]);
        let mut bytes = a.to_bytes();
        bytes.extend(b.to_bytes());
        let seq = Mp4Box::parse_sequence(&bytes).unwrap();
        assert_eq!(seq, vec![a, b]);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Mp4Box::parse(&[0, 0, 0]), Err(BmffError::Truncated { context: "box header" }));
    }

    #[test]
    fn size_smaller_than_header_rejected() {
        let mut bytes = vec![0, 0, 0, 4];
        bytes.extend_from_slice(b"mdat");
        assert_eq!(Mp4Box::parse(&bytes), Err(BmffError::BadSize { size: 4 }));
    }

    #[test]
    fn size_past_eof_rejected() {
        let mut bytes = vec![0, 0, 1, 0];
        bytes.extend_from_slice(b"mdat");
        assert_eq!(Mp4Box::parse(&bytes), Err(BmffError::BadSize { size: 256 }));
    }

    #[test]
    fn garbage_inside_container_rejected() {
        // A moov whose payload is not a valid box sequence.
        let mut bytes = vec![0, 0, 0, 11];
        bytes.extend_from_slice(b"moov");
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(Mp4Box::parse(&bytes).is_err());
    }

    #[test]
    fn find_in_sequence() {
        let seq = vec![
            Mp4Box::leaf(FourCc(*b"ftyp"), vec![]),
            Mp4Box::container(FourCc(*b"moov"), vec![Mp4Box::leaf(FourCc(*b"pssh"), vec![1])]),
        ];
        assert!(find_in(&seq, FourCc(*b"pssh")).is_some());
        assert!(find_in(&seq, FourCc(*b"moof")).is_none());
    }

    #[test]
    fn error_display() {
        assert!(BmffError::Truncated { context: "x" }.to_string().contains("truncated"));
        assert!(BmffError::MissingBox { expected: FourCc(*b"tenc") }.to_string().contains("tenc"));
    }
}
