//! A checked cursor over a byte slice, used by the typed box payload
//! codecs in [`crate::types`].

use crate::BmffError;

/// A forward-only reader that fails (rather than panicking) on underflow.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a slice.
    pub fn new(input: &'a [u8]) -> Self {
        ByteReader { input, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], BmffError> {
        if self.remaining() < n {
            return Err(BmffError::Truncated { context: "payload bytes" });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on underflow.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], BmffError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    /// Reads a big-endian `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on underflow.
    pub fn u8(&mut self) -> Result<u8, BmffError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on underflow.
    pub fn u16(&mut self) -> Result<u16, BmffError> {
        Ok(u16::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on underflow.
    pub fn u32(&mut self) -> Result<u32, BmffError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on underflow.
    pub fn u64(&mut self) -> Result<u64, BmffError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Takes everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.input[self.pos..];
        self.pos = self.input.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_integers_in_order() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.u8().unwrap(), 0x01);
        assert_eq!(r.u16().unwrap(), 0x0203);
        assert_eq!(r.u32().unwrap(), 0x04050607);
        assert!(r.is_empty());
    }

    #[test]
    fn u64_read() {
        let data = 0xdead_beef_0102_0304u64.to_be_bytes();
        assert_eq!(ByteReader::new(&data).u64().unwrap(), 0xdead_beef_0102_0304);
    }

    #[test]
    fn underflow_is_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Failed reads do not consume.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u16().unwrap(), 0x0102);
    }

    #[test]
    fn take_and_rest() {
        let data = [1, 2, 3, 4, 5];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.rest(), &[3, 4, 5]);
        assert!(r.is_empty());
        assert_eq!(r.rest(), &[] as &[u8]);
    }

    #[test]
    fn take_array() {
        let mut r = ByteReader::new(&[9, 8, 7]);
        let a: [u8; 2] = r.take_array().unwrap();
        assert_eq!(a, [9, 8]);
        assert!(r.take_array::<2>().is_err());
    }
}
