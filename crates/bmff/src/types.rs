//! Typed payload codecs for the content-protection boxes.
//!
//! Each type converts to and from the leaf payload bytes of the
//! corresponding ISO-BMFF box: [`Pssh`] ⇄ `pssh`, [`Tenc`] ⇄ `tenc`,
//! [`Senc`] ⇄ `senc`, [`Schm`] ⇄ `schm`, [`Frma`] ⇄ `frma`,
//! [`Trun`] ⇄ `trun`, [`Tfhd`] ⇄ `tfhd`, [`Mfhd`] ⇄ `mfhd`.

use crate::{BmffError, ByteReader, FourCc, Mp4Box};

/// The Widevine DRM system identifier used in `pssh` boxes and DASH
/// `ContentProtection` descriptors (a public, registered UUID).
pub const WIDEVINE_SYSTEM_ID: [u8; 16] = [
    0xed, 0xef, 0x8b, 0xa9, 0x79, 0xd6, 0x4a, 0xce, 0xa3, 0xc8, 0x27, 0xdc, 0xd5, 0x1d, 0x21, 0xed,
];

/// A 16-byte content key identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub [u8; 16]);

impl std::fmt::Debug for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyId({self})")
    }
}

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl KeyId {
    /// Parses the canonical 32-hex-digit form produced by [`Display`].
    ///
    /// [`Display`]: std::fmt::Display
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn from_hex(s: &str) -> Result<Self, String> {
        if s.len() != 32 {
            return Err(format!("key id must be 32 hex digits, got {}", s.len()));
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).ok_or("non-hex digit")?;
            let lo = (chunk[1] as char).to_digit(16).ok_or("non-hex digit")?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Ok(KeyId(out))
    }
}

/// `pssh` — Protection System Specific Header (version 1: with key IDs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pssh {
    /// The DRM system this header addresses.
    pub system_id: [u8; 16],
    /// Key IDs the associated content needs.
    pub key_ids: Vec<KeyId>,
    /// System-specific opaque data (the real Widevine uses a protobuf; the
    /// simulator stores its TLV license-request seed here).
    pub data: Vec<u8>,
}

impl Pssh {
    /// Builds a Widevine pssh for the given key IDs.
    pub fn widevine(key_ids: Vec<KeyId>, data: Vec<u8>) -> Self {
        Pssh { system_id: WIDEVINE_SYSTEM_ID, key_ids, data }
    }

    /// Serializes to `pssh` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(1u8); // version 1 carries key ids
        out.extend_from_slice(&[0, 0, 0]); // flags
        out.extend_from_slice(&self.system_id);
        out.extend_from_slice(&(self.key_ids.len() as u32).to_be_bytes());
        for kid in &self.key_ids {
            out.extend_from_slice(&kid.0);
        }
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses `pssh` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError`] on truncation or unsupported version.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version > 1 {
            return Err(BmffError::UnsupportedVersion { version });
        }
        r.take(3)?; // flags
        let system_id = r.take_array()?;
        let mut key_ids = Vec::new();
        if version == 1 {
            let count = r.u32()? as usize;
            for _ in 0..count {
                key_ids.push(KeyId(r.take_array()?));
            }
        }
        let data_len = r.u32()? as usize;
        let data = r.take(data_len)?.to_vec();
        Ok(Pssh { system_id, key_ids, data })
    }

    /// Wraps into a full `pssh` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"pssh"), self.to_payload())
    }
}

/// Encryption pattern for `cbcs` (crypt/skip ten-block pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptPattern {
    /// Number of encrypted 16-byte blocks per pattern repetition.
    pub crypt_blocks: u8,
    /// Number of clear blocks following them.
    pub skip_blocks: u8,
}

/// `tenc` — track encryption defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenc {
    /// Whether samples are protected by default.
    pub is_protected: bool,
    /// Per-sample IV size in bytes (0 for `cbcs` constant IVs).
    pub per_sample_iv_size: u8,
    /// The default key ID for the track.
    pub default_kid: KeyId,
    /// Constant IV when `per_sample_iv_size == 0`.
    pub constant_iv: Option<[u8; 16]>,
    /// Pattern encryption parameters (present for `cbcs`).
    pub pattern: Option<CryptPattern>,
}

impl Tenc {
    /// A `cenc` (AES-CTR) track default with 8-byte per-sample IVs.
    pub fn cenc(default_kid: KeyId) -> Self {
        Tenc {
            is_protected: true,
            per_sample_iv_size: 8,
            default_kid,
            constant_iv: None,
            pattern: None,
        }
    }

    /// A `cbcs` (AES-CBC 1:9 pattern) track default with a constant IV.
    pub fn cbcs(default_kid: KeyId, constant_iv: [u8; 16]) -> Self {
        Tenc {
            is_protected: true,
            per_sample_iv_size: 0,
            default_kid,
            constant_iv: Some(constant_iv),
            pattern: Some(CryptPattern { crypt_blocks: 1, skip_blocks: 9 }),
        }
    }

    /// Serializes to `tenc` leaf payload bytes (version 1 when a pattern is
    /// present, else version 0).
    pub fn to_payload(&self) -> Vec<u8> {
        let version: u8 = if self.pattern.is_some() { 1 } else { 0 };
        let mut out = vec![version, 0, 0, 0];
        out.push(0); // reserved
        match self.pattern {
            Some(p) => out.push(p.crypt_blocks << 4 | (p.skip_blocks & 0x0f)),
            None => out.push(0),
        }
        out.push(self.is_protected as u8);
        out.push(self.per_sample_iv_size);
        out.extend_from_slice(&self.default_kid.0);
        if self.is_protected && self.per_sample_iv_size == 0 {
            let iv = self.constant_iv.unwrap_or([0u8; 16]);
            out.push(16);
            out.extend_from_slice(&iv);
        }
        out
    }

    /// Parses `tenc` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError`] on truncation or version > 1.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version > 1 {
            return Err(BmffError::UnsupportedVersion { version });
        }
        r.take(3)?; // flags
        r.u8()?; // reserved
        let pattern_byte = r.u8()?;
        let pattern = if version == 1 && pattern_byte != 0 {
            Some(CryptPattern { crypt_blocks: pattern_byte >> 4, skip_blocks: pattern_byte & 0x0f })
        } else {
            None
        };
        let is_protected = r.u8()? != 0;
        let per_sample_iv_size = r.u8()?;
        let default_kid = KeyId(r.take_array()?);
        let constant_iv = if is_protected && per_sample_iv_size == 0 {
            let len = r.u8()? as usize;
            if len != 16 {
                return Err(BmffError::Malformed { reason: "constant IV must be 16 bytes" });
            }
            Some(r.take_array()?)
        } else {
            None
        };
        Ok(Tenc { is_protected, per_sample_iv_size, default_kid, constant_iv, pattern })
    }

    /// Wraps into a full `tenc` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"tenc"), self.to_payload())
    }
}

/// One subsample: a clear prefix followed by encrypted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subsample {
    /// Bytes left in the clear (headers, NAL prefixes).
    pub clear_bytes: u16,
    /// Bytes that are encrypted.
    pub encrypted_bytes: u32,
}

/// Per-sample encryption info inside `senc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleEncryption {
    /// The per-sample IV (8 bytes for `cenc`; empty for constant-IV `cbcs`).
    pub iv: Vec<u8>,
    /// Subsample map; empty means the whole sample is encrypted.
    pub subsamples: Vec<Subsample>,
}

/// `senc` — sample encryption box.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Senc {
    /// Entries, one per sample in the fragment.
    pub entries: Vec<SampleEncryption>,
}

impl Senc {
    /// Serializes to `senc` leaf payload bytes. The subsample flag (0x2) is
    /// set when any entry carries subsamples; `iv_size` is inferred from
    /// the first entry (all entries must agree).
    ///
    /// # Panics
    ///
    /// Panics if entries disagree on IV size (a builder bug, not input
    /// data).
    pub fn to_payload(&self) -> Vec<u8> {
        let iv_size = self.entries.first().map_or(0, |e| e.iv.len());
        assert!(
            self.entries.iter().all(|e| e.iv.len() == iv_size),
            "senc entries must share one IV size"
        );
        let has_subsamples = self.entries.iter().any(|e| !e.subsamples.is_empty());
        let flags: u32 = if has_subsamples { 0x2 } else { 0x0 };
        let mut out = Vec::new();
        out.push(0u8); // version
        out.extend_from_slice(&flags.to_be_bytes()[1..]);
        out.push(iv_size as u8); // simulator extension: explicit IV size
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.iv);
            if has_subsamples {
                out.extend_from_slice(&(e.subsamples.len() as u16).to_be_bytes());
                for s in &e.subsamples {
                    out.extend_from_slice(&s.clear_bytes.to_be_bytes());
                    out.extend_from_slice(&s.encrypted_bytes.to_be_bytes());
                }
            }
        }
        out
    }

    /// Parses `senc` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError`] on truncation.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version != 0 {
            return Err(BmffError::UnsupportedVersion { version });
        }
        let flags = {
            let b = r.take(3)?;
            u32::from_be_bytes([0, b[0], b[1], b[2]])
        };
        let has_subsamples = flags & 0x2 != 0;
        let iv_size = r.u8()? as usize;
        let count = r.u32()? as usize;
        // `count` is attacker-controlled; an entry needs at least
        // `iv_size` (+2 for a subsample count) bytes, so anything the
        // remaining payload cannot hold is a truncation, not an
        // allocation request.
        let min_entry = iv_size + if has_subsamples { 2 } else { 0 };
        if count > r.remaining() / min_entry.max(1) {
            return Err(BmffError::Truncated { context: "senc sample count" });
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let iv = r.take(iv_size)?.to_vec();
            let subsamples = if has_subsamples {
                let n = r.u16()? as usize;
                let mut subs = Vec::with_capacity(n);
                for _ in 0..n {
                    subs.push(Subsample { clear_bytes: r.u16()?, encrypted_bytes: r.u32()? });
                }
                subs
            } else {
                Vec::new()
            };
            entries.push(SampleEncryption { iv, subsamples });
        }
        Ok(Senc { entries })
    }

    /// Wraps into a full `senc` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"senc"), self.to_payload())
    }
}

/// `schm` — scheme type box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schm {
    /// The protection scheme (`cenc` or `cbcs`).
    pub scheme: FourCc,
    /// Scheme version (`0x0001_0000` for both CENC schemes).
    pub version: u32,
}

impl Schm {
    /// Serializes to `schm` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = vec![0u8; 4]; // version/flags
        out.extend_from_slice(&self.scheme.0);
        out.extend_from_slice(&self.version.to_be_bytes());
        out
    }

    /// Parses `schm` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on short input.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        r.take(4)?;
        Ok(Schm { scheme: FourCc(r.take_array()?), version: r.u32()? })
    }

    /// Wraps into a full `schm` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"schm"), self.to_payload())
    }
}

/// `frma` — original format box (what the track was before encryption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frma {
    /// The original sample entry format, e.g. `avc1` or `mp4a`.
    pub original_format: FourCc,
}

impl Frma {
    /// Serializes to `frma` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        self.original_format.0.to_vec()
    }

    /// Parses `frma` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on short input.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        Ok(Frma { original_format: FourCc(r.take_array()?) })
    }

    /// Wraps into a full `frma` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"frma"), self.to_payload())
    }
}

/// `mfhd` — movie fragment header (sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mfhd {
    /// Fragment sequence number, starting at 1.
    pub sequence_number: u32,
}

impl Mfhd {
    /// Serializes to `mfhd` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = vec![0u8; 4];
        out.extend_from_slice(&self.sequence_number.to_be_bytes());
        out
    }

    /// Parses `mfhd` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on short input.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        r.take(4)?;
        Ok(Mfhd { sequence_number: r.u32()? })
    }

    /// Wraps into a full `mfhd` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"mfhd"), self.to_payload())
    }
}

/// `tfhd` — track fragment header (track id only in this subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tfhd {
    /// The track this fragment belongs to.
    pub track_id: u32,
}

impl Tfhd {
    /// Serializes to `tfhd` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = vec![0u8; 4];
        out.extend_from_slice(&self.track_id.to_be_bytes());
        out
    }

    /// Parses `tfhd` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on short input.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        r.take(4)?;
        Ok(Tfhd { track_id: r.u32()? })
    }

    /// Wraps into a full `tfhd` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"tfhd"), self.to_payload())
    }
}

/// `trun` — track run box (sample sizes only in this subset).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trun {
    /// Size in bytes of each sample in the fragment's `mdat`, in order.
    pub sample_sizes: Vec<u32>,
}

impl Trun {
    /// Serializes to `trun` leaf payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = vec![0u8, 0, 0x02, 0x00]; // version 0, sample-size-present flag
        out.extend_from_slice(&(self.sample_sizes.len() as u32).to_be_bytes());
        for s in &self.sample_sizes {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// Parses `trun` leaf payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BmffError::Truncated`] on short input.
    pub fn from_payload(payload: &[u8]) -> Result<Self, BmffError> {
        let mut r = ByteReader::new(payload);
        r.take(4)?;
        let count = r.u32()? as usize;
        // Attacker-controlled count: every sample size is 4 bytes, so a
        // count the payload cannot hold is a truncation.
        if count > r.remaining() / 4 {
            return Err(BmffError::Truncated { context: "trun sample count" });
        }
        let mut sample_sizes = Vec::with_capacity(count);
        for _ in 0..count {
            sample_sizes.push(r.u32()?);
        }
        Ok(Trun { sample_sizes })
    }

    /// Wraps into a full `trun` box.
    pub fn to_box(&self) -> Mp4Box {
        Mp4Box::leaf(FourCc(*b"trun"), self.to_payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kid(b: u8) -> KeyId {
        KeyId([b; 16])
    }

    #[test]
    fn keyid_hex_round_trip() {
        let k = KeyId([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let s = k.to_string();
        assert_eq!(s, "00112233445566778899aabbccddeeff");
        assert_eq!(KeyId::from_hex(&s).unwrap(), k);
        assert!(KeyId::from_hex("123").is_err());
        assert!(KeyId::from_hex(&"zz".repeat(16)).is_err());
    }

    #[test]
    fn pssh_round_trip_with_key_ids() {
        let p = Pssh::widevine(vec![kid(1), kid(2)], b"init-data".to_vec());
        let parsed = Pssh::from_payload(&p.to_payload()).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.system_id, WIDEVINE_SYSTEM_ID);
    }

    #[test]
    fn pssh_round_trip_empty() {
        let p = Pssh::widevine(vec![], vec![]);
        assert_eq!(Pssh::from_payload(&p.to_payload()).unwrap(), p);
    }

    #[test]
    fn pssh_box_wrapping() {
        let p = Pssh::widevine(vec![kid(9)], vec![1, 2, 3]);
        let b = p.to_box();
        assert_eq!(b.typ, FourCc(*b"pssh"));
        assert_eq!(Pssh::from_payload(b.payload().unwrap()).unwrap(), p);
    }

    #[test]
    fn pssh_rejects_future_version() {
        let mut payload = Pssh::widevine(vec![], vec![]).to_payload();
        payload[0] = 2;
        assert_eq!(Pssh::from_payload(&payload), Err(BmffError::UnsupportedVersion { version: 2 }));
    }

    #[test]
    fn pssh_rejects_truncation() {
        let payload = Pssh::widevine(vec![kid(1)], b"data".to_vec()).to_payload();
        for cut in [0, 5, 20, payload.len() - 1] {
            assert!(Pssh::from_payload(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn tenc_cenc_round_trip() {
        let t = Tenc::cenc(kid(7));
        let parsed = Tenc::from_payload(&t.to_payload()).unwrap();
        assert_eq!(parsed, t);
        assert_eq!(parsed.per_sample_iv_size, 8);
        assert!(parsed.pattern.is_none());
    }

    #[test]
    fn tenc_cbcs_round_trip() {
        let t = Tenc::cbcs(kid(3), [0xaa; 16]);
        let parsed = Tenc::from_payload(&t.to_payload()).unwrap();
        assert_eq!(parsed, t);
        let p = parsed.pattern.unwrap();
        assert_eq!((p.crypt_blocks, p.skip_blocks), (1, 9));
        assert_eq!(parsed.constant_iv, Some([0xaa; 16]));
    }

    #[test]
    fn tenc_unprotected() {
        let t = Tenc {
            is_protected: false,
            per_sample_iv_size: 0,
            default_kid: kid(0),
            constant_iv: None,
            pattern: None,
        };
        assert_eq!(Tenc::from_payload(&t.to_payload()).unwrap(), t);
    }

    #[test]
    fn senc_round_trip_with_subsamples() {
        let s = Senc {
            entries: vec![
                SampleEncryption {
                    iv: vec![1, 2, 3, 4, 5, 6, 7, 8],
                    subsamples: vec![
                        Subsample { clear_bytes: 16, encrypted_bytes: 4000 },
                        Subsample { clear_bytes: 0, encrypted_bytes: 128 },
                    ],
                },
                SampleEncryption { iv: vec![9, 9, 9, 9, 9, 9, 9, 9], subsamples: vec![] },
            ],
        };
        assert_eq!(Senc::from_payload(&s.to_payload()).unwrap(), s);
    }

    #[test]
    fn senc_round_trip_full_sample_encryption() {
        let s = Senc { entries: vec![SampleEncryption { iv: vec![0; 8], subsamples: vec![] }] };
        assert_eq!(Senc::from_payload(&s.to_payload()).unwrap(), s);
    }

    #[test]
    fn senc_empty() {
        let s = Senc::default();
        assert_eq!(Senc::from_payload(&s.to_payload()).unwrap(), s);
    }

    #[test]
    #[should_panic(expected = "share one IV size")]
    fn senc_mixed_iv_sizes_panics() {
        Senc {
            entries: vec![
                SampleEncryption { iv: vec![0; 8], subsamples: vec![] },
                SampleEncryption { iv: vec![0; 16], subsamples: vec![] },
            ],
        }
        .to_payload();
    }

    #[test]
    fn schm_round_trip() {
        for scheme in [b"cenc", b"cbcs"] {
            let s = Schm { scheme: FourCc(*scheme), version: 0x0001_0000 };
            assert_eq!(Schm::from_payload(&s.to_payload()).unwrap(), s);
        }
    }

    #[test]
    fn frma_round_trip() {
        let f = Frma { original_format: FourCc(*b"avc1") };
        assert_eq!(Frma::from_payload(&f.to_payload()).unwrap(), f);
    }

    #[test]
    fn mfhd_tfhd_round_trip() {
        let m = Mfhd { sequence_number: 42 };
        assert_eq!(Mfhd::from_payload(&m.to_payload()).unwrap(), m);
        let t = Tfhd { track_id: 2 };
        assert_eq!(Tfhd::from_payload(&t.to_payload()).unwrap(), t);
    }

    #[test]
    fn trun_round_trip() {
        let t = Trun { sample_sizes: vec![100, 200, 50] };
        assert_eq!(Trun::from_payload(&t.to_payload()).unwrap(), t);
        assert_eq!(Trun::from_payload(&Trun::default().to_payload()).unwrap(), Trun::default());
    }
}
