//! The top-level CDM object: the Widevine HAL plugin for one device.
//!
//! [`Cdm`] selects the right [`OemCrypto`] backend for the device model
//! (L1 TEE-backed when the hardware supports it, L3 software otherwise),
//! installs the factory keybox, and exposes the backend to the Android
//! DRM framework (`wideleak-android-drm`).

use std::sync::Arc;

use wideleak_device::catalog::{CdmVersion, SecurityLevel};
use wideleak_device::Device;
use wideleak_tee::SecureWorld;

use crate::keybox::Keybox;
use crate::oemcrypto::{L1OemCrypto, L3OemCrypto, OemCrypto};
use crate::CdmError;

/// The Widevine HAL plugin instance for one device.
pub struct Cdm {
    backend: Arc<dyn OemCrypto + Sync>,
    secure_world: Option<Arc<SecureWorld>>,
}

impl std::fmt::Debug for Cdm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cdm(v{}, {}, provisioned: {})",
            self.backend.cdm_version(),
            self.backend.security_level(),
            self.backend.is_provisioned()
        )
    }
}

/// Configures and boots a [`Cdm`]. Obtained from [`Cdm::builder`].
///
/// Two terminal operations exist: [`boot`](CdmBuilder::boot) selects the
/// backend from a device model and needs a keybox, while
/// [`build`](CdmBuilder::build) wraps a pre-made backend (instrumented or
/// faulty ones in tests) without touching any device.
#[derive(Default)]
pub struct CdmBuilder {
    keybox: Option<Keybox>,
    backend: Option<Arc<dyn OemCrypto + Sync>>,
    force_l3: bool,
    decrypt_cache: bool,
}

impl CdmBuilder {
    /// The factory keybox to install at boot. Required by
    /// [`boot`](Self::boot).
    #[must_use]
    pub fn keybox(mut self, keybox: Keybox) -> Self {
        self.keybox = Some(keybox);
        self
    }

    /// Uses an already-built backend instead of selecting one from the
    /// device model. Terminalised by [`build`](Self::build).
    #[must_use]
    pub fn backend(mut self, backend: Arc<dyn OemCrypto + Sync>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Forces the software L3 engine even on L1-capable hardware — the
    /// degraded-playback path apps fall back to when HD keeps failing.
    #[must_use]
    pub fn force_l3(mut self, force: bool) -> Self {
        self.force_l3 = force;
        self
    }

    /// Enables the per-session decrypt cache (derived key schedules +
    /// `cenc` keystream prefixes). Off by default; backends without a
    /// normal-world core — the L1 trustlet path — ignore the flag.
    #[must_use]
    pub fn decrypt_cache(mut self, enabled: bool) -> Self {
        self.decrypt_cache = enabled;
        self
    }

    /// Boots the CDM on a device and installs its factory keybox.
    ///
    /// The backend follows the device model: L1 hardware boots a secure
    /// world and loads the Widevine trustlet; everything else runs the
    /// software L3 engine inside the media DRM process.
    ///
    /// # Errors
    ///
    /// Propagates keybox installation failures.
    ///
    /// # Panics
    ///
    /// Panics if no keybox was supplied (a configuration bug, not a
    /// runtime condition).
    pub fn boot(self, device: &Device) -> Result<Cdm, CdmError> {
        let keybox = self.keybox.expect("CdmBuilder::boot requires a keybox");
        let model = device.model();
        let level = if self.force_l3 { SecurityLevel::L3 } else { model.security_level };
        let (backend, secure_world): (Arc<dyn OemCrypto + Sync>, Option<Arc<SecureWorld>>) =
            match level {
                SecurityLevel::L1 => {
                    let world = Arc::new(SecureWorld::new());
                    let backend = L1OemCrypto::new(
                        model.cdm_version,
                        world.clone(),
                        device.hook_engine().clone(),
                    );
                    (Arc::new(backend), Some(world))
                }
                SecurityLevel::L2 | SecurityLevel::L3 => {
                    let backend = L3OemCrypto::new(
                        model.cdm_version,
                        device.hook_engine().clone(),
                        device.drm_process_memory().clone(),
                    );
                    (Arc::new(backend), None)
                }
            };
        backend.install_keybox(keybox)?;
        if self.decrypt_cache {
            backend.set_decrypt_cache(true);
        }
        Ok(Cdm { backend, secure_world })
    }

    /// Wraps the supplied backend directly (no device, no keybox).
    ///
    /// # Panics
    ///
    /// Panics if no backend was supplied.
    #[must_use]
    pub fn build(self) -> Cdm {
        let backend = self.backend.expect("CdmBuilder::build requires a backend");
        if self.decrypt_cache {
            backend.set_decrypt_cache(true);
        }
        Cdm { backend, secure_world: None }
    }
}

impl Cdm {
    /// Starts configuring a CDM.
    #[must_use]
    pub fn builder() -> CdmBuilder {
        CdmBuilder::default()
    }

    /// The active OEMCrypto backend.
    pub fn oemcrypto(&self) -> &Arc<dyn OemCrypto + Sync> {
        &self.backend
    }

    /// The security level the backend provides.
    pub fn security_level(&self) -> SecurityLevel {
        self.backend.security_level()
    }

    /// The CDM version.
    pub fn version(&self) -> CdmVersion {
        self.backend.cdm_version()
    }

    /// The secure world, present only on L1 devices (used by tests and the
    /// world-switch latency bench).
    pub fn secure_world(&self) -> Option<&Arc<SecureWorld>> {
        self.secure_world.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_device::catalog::DeviceModel;

    fn keybox() -> Keybox {
        Keybox::issue(b"cdm-boot-test", &[0x77; 16])
    }

    #[test]
    fn boot_l3_on_nexus_5() {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm = Cdm::builder().keybox(keybox()).boot(&device).unwrap();
        assert_eq!(cdm.security_level(), SecurityLevel::L3);
        assert_eq!(cdm.version(), CdmVersion::new(3, 1, 0));
        assert!(cdm.secure_world().is_none());
        // The keybox leaked into the media process (unpatched CDM).
        assert!(!device.drm_process_memory().scan(b"kbox").is_empty());
    }

    #[test]
    fn boot_l1_on_pixel_6() {
        let device = Device::new(DeviceModel::pixel_6());
        let cdm = Cdm::builder().keybox(keybox()).boot(&device).unwrap();
        assert_eq!(cdm.security_level(), SecurityLevel::L1);
        assert!(cdm.secure_world().is_some());
        assert!(cdm.secure_world().unwrap().has_trustlet("widevine"));
        // Nothing leaked into normal-world memory.
        assert!(device.drm_process_memory().scan(b"kbox").is_empty());
    }

    #[test]
    fn force_l3_downgrades_l1_hardware() {
        let device = Device::new(DeviceModel::pixel_6());
        let cdm = Cdm::builder().keybox(keybox()).force_l3(true).boot(&device).unwrap();
        assert_eq!(cdm.security_level(), SecurityLevel::L3);
        assert!(cdm.secure_world().is_none(), "no secure world booted for forced L3");
    }

    #[test]
    fn debug_output() {
        let device = Device::new(DeviceModel::nexus_5());
        let cdm = Cdm::builder().keybox(keybox()).boot(&device).unwrap();
        let s = format!("{cdm:?}");
        assert!(s.contains("3.1.0") && s.contains("L3"));
    }
}
