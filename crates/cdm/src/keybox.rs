//! The Widevine keybox: the device root of trust.
//!
//! Per the paper's reverse engineering (§IV-D), the keybox is a 128-byte
//! structure containing a device identifier, a 128-bit AES device key, key
//! data, a magic number, and a CRC-32. It is installed by the manufacturer
//! and initiates the key ladder. The memory-scanning attack recognizes
//! keybox candidates by the magic number and validates them with the CRC —
//! both reproduced faithfully here so the attack code path is identical.

use wideleak_crypto::crc32::crc32;

use crate::CdmError;

/// Total serialized keybox size in bytes.
pub const KEYBOX_LEN: usize = 128;

/// The keybox magic number (`"kbox"`).
pub const KEYBOX_MAGIC: [u8; 4] = *b"kbox";

const DEVICE_ID_LEN: usize = 32;
const DEVICE_KEY_LEN: usize = 16;
const KEY_DATA_LEN: usize = 72;

/// The 128-byte device root-of-trust structure.
///
/// Layout: `device_id[32] || device_key[16] || key_data[72] || magic[4]
/// || crc32[4]`.
#[derive(Clone, PartialEq, Eq)]
pub struct Keybox {
    device_id: [u8; DEVICE_ID_LEN],
    device_key: [u8; DEVICE_KEY_LEN],
    key_data: [u8; KEY_DATA_LEN],
}

impl std::fmt::Debug for Keybox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The device id is not secret; the device key very much is.
        write!(
            f,
            "Keybox(device_id: {:?}, device_key: <redacted>)",
            String::from_utf8_lossy(&self.device_id)
        )
    }
}

impl Keybox {
    /// Issues a keybox for a device (the factory-installation step).
    ///
    /// The device id is truncated or zero-padded to 32 bytes.
    pub fn issue(device_id: &[u8], device_key: &[u8; DEVICE_KEY_LEN]) -> Self {
        let mut id = [0u8; DEVICE_ID_LEN];
        let n = device_id.len().min(DEVICE_ID_LEN);
        id[..n].copy_from_slice(&device_id[..n]);
        // Key data carries a provisioning token derived from the id; the
        // real contents are opaque, only the size matters to the attack.
        let mut key_data = [0u8; KEY_DATA_LEN];
        for (i, b) in key_data.iter_mut().enumerate() {
            *b = id[i % DEVICE_ID_LEN].wrapping_mul(59).wrapping_add(i as u8);
        }
        Keybox { device_id: id, device_key: *device_key, key_data }
    }

    /// The device identifier (zero-padded to 32 bytes).
    pub fn device_id(&self) -> &[u8; DEVICE_ID_LEN] {
        &self.device_id
    }

    /// The AES-128 device key — the root of the key ladder.
    pub fn device_key(&self) -> &[u8; DEVICE_KEY_LEN] {
        &self.device_key
    }

    /// The opaque key-data field.
    pub fn key_data(&self) -> &[u8; KEY_DATA_LEN] {
        &self.key_data
    }

    /// Serializes to the 128-byte wire/storage form, appending magic and
    /// CRC-32 (over the first 124 bytes).
    pub fn to_bytes(&self) -> [u8; KEYBOX_LEN] {
        let mut out = [0u8; KEYBOX_LEN];
        out[..32].copy_from_slice(&self.device_id);
        out[32..48].copy_from_slice(&self.device_key);
        out[48..120].copy_from_slice(&self.key_data);
        out[120..124].copy_from_slice(&KEYBOX_MAGIC);
        let crc = crc32(&out[..124]);
        out[124..].copy_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parses and validates a 128-byte keybox.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadKeybox`] when the length, magic number or
    /// CRC is wrong — the same checks the memory-scanning attack uses to
    /// discard false positives.
    pub fn parse(bytes: &[u8]) -> Result<Self, CdmError> {
        if bytes.len() != KEYBOX_LEN {
            return Err(CdmError::BadKeybox { reason: "keybox must be exactly 128 bytes" });
        }
        if bytes[120..124] != KEYBOX_MAGIC {
            return Err(CdmError::BadKeybox { reason: "magic number mismatch" });
        }
        let expected = u32::from_be_bytes(bytes[124..128].try_into().expect("4 bytes"));
        if crc32(&bytes[..124]) != expected {
            return Err(CdmError::BadKeybox { reason: "CRC-32 mismatch" });
        }
        Ok(Keybox {
            device_id: bytes[..32].try_into().expect("32 bytes"),
            device_key: bytes[32..48].try_into().expect("16 bytes"),
            key_data: bytes[48..120].try_into().expect("72 bytes"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> Keybox {
        Keybox::issue(b"WIDEVINE-TEST-DEVICE-0001", &[0x2b; 16])
    }

    #[test]
    fn round_trip() {
        let k = kb();
        let bytes = k.to_bytes();
        assert_eq!(bytes.len(), KEYBOX_LEN);
        assert_eq!(Keybox::parse(&bytes).unwrap(), k);
    }

    #[test]
    fn layout_offsets() {
        let bytes = kb().to_bytes();
        assert_eq!(&bytes[..25], b"WIDEVINE-TEST-DEVICE-0001");
        assert_eq!(&bytes[32..48], &[0x2b; 16]);
        assert_eq!(&bytes[120..124], b"kbox");
    }

    #[test]
    fn long_device_id_truncated() {
        let k = Keybox::issue(&[b'x'; 100], &[1; 16]);
        assert_eq!(k.device_id(), &[b'x'; 32]);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(matches!(
            Keybox::parse(&[0u8; 127]),
            Err(CdmError::BadKeybox { reason }) if reason.contains("128")
        ));
        assert!(Keybox::parse(&[0u8; 129]).is_err());
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut bytes = kb().to_bytes();
        bytes[121] = b'X';
        assert!(matches!(
            Keybox::parse(&bytes),
            Err(CdmError::BadKeybox { reason }) if reason.contains("magic")
        ));
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let mut bytes = kb().to_bytes();
        bytes[40] ^= 0x01; // flip one device-key bit
        assert!(matches!(
            Keybox::parse(&bytes),
            Err(CdmError::BadKeybox { reason }) if reason.contains("CRC")
        ));
    }

    #[test]
    fn corrupted_crc_rejected() {
        let mut bytes = kb().to_bytes();
        bytes[127] ^= 0xFF;
        assert!(Keybox::parse(&bytes).is_err());
    }

    #[test]
    fn distinct_devices_distinct_keyboxes() {
        let a = Keybox::issue(b"device-a", &[1; 16]);
        let b = Keybox::issue(b"device-b", &[1; 16]);
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn debug_redacts_device_key() {
        let s = format!("{:?}", kb());
        assert!(s.contains("WIDEVINE-TEST-DEVICE"));
        assert!(s.contains("redacted"));
        assert!(!s.contains("2b"));
    }

    #[test]
    fn key_data_is_deterministic() {
        assert_eq!(
            Keybox::issue(b"d", &[0; 16]).key_data(),
            Keybox::issue(b"d", &[0; 16]).key_data()
        );
    }
}
