//! The Widevine key ladder: AES-CMAC key derivation.
//!
//! The CDM never uses the keybox device key (or an RSA-unwrapped session
//! key) directly. It derives purpose-specific keys with AES-CMAC over a
//! structured buffer `counter || label || 0x00 || context || bit_length`,
//! in the style of NIST SP 800-108 counter-mode KDFs. The attack PoC
//! re-implements exactly this function over the derivation buffers it
//! dumps from the hooked `_oecc` calls — which is why the function lives
//! in its own module with a stable, documented layout.

use wideleak_crypto::cmac::aes_cmac_with_key;

/// Derivation labels used by the simulated CDM, mirroring the purposes in
/// the real key ladder.
pub mod labels {
    /// Derives the key that encrypts content keys in license responses.
    pub const ENCRYPTION: &str = "ENCRYPTION";
    /// Derives the client-side request-signing MAC key.
    pub const AUTHENTICATION: &str = "AUTHENTICATION";
    /// Derives the provisioning-response protection key.
    pub const PROVISIONING: &str = "PROVISIONING";
}

/// Computes one derivation step: `AES-CMAC(key, counter || label || 0x00
/// || context || bits)` where `bits` is the output bit length as a
/// big-endian u32.
pub fn derive_block(
    key: &[u8; 16],
    counter: u8,
    label: &str,
    context: &[u8],
    bits: u32,
) -> [u8; 16] {
    let mut buf = derivation_buffer(counter, label, context, bits);
    let mac = aes_cmac_with_key(key, &buf);
    buf.clear(); // derivation buffers are not secret, but keep tidy
    mac
}

/// Builds the derivation buffer without MACing it — exposed so the hooked
/// `_oecc` functions can dump the exact bytes the ladder consumes (the
/// attack replays these).
pub fn derivation_buffer(counter: u8, label: &str, context: &[u8], bits: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + label.len() + 1 + context.len() + 4);
    buf.push(counter);
    buf.extend_from_slice(label.as_bytes());
    buf.push(0x00);
    buf.extend_from_slice(context);
    buf.extend_from_slice(&bits.to_be_bytes());
    buf
}

/// Derives a 128-bit key (one CMAC block).
pub fn derive_key_128(key: &[u8; 16], label: &str, context: &[u8]) -> [u8; 16] {
    derive_block(key, 1, label, context, 128)
}

/// Derives a 256-bit key (two CMAC blocks, counters 1 and 2).
pub fn derive_key_256(key: &[u8; 16], label: &str, context: &[u8]) -> [u8; 32] {
    let lo = derive_block(key, 1, label, context, 256);
    let hi = derive_block(key, 2, label, context, 256);
    let mut out = [0u8; 32];
    out[..16].copy_from_slice(&lo);
    out[16..].copy_from_slice(&hi);
    out
}

/// The derived key set of a license session.
#[derive(Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// AES-128 key that unwraps content keys in the license response.
    pub enc_key: [u8; 16],
    /// HMAC-SHA256 key the server signs the license response with.
    pub mac_key_server: [u8; 32],
    /// HMAC-SHA256 key the client signs license requests with (when the
    /// RSA path is not used).
    pub mac_key_client: [u8; 32],
}

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SessionKeys(<redacted>)")
    }
}

/// Runs the session key ladder: from a 128-bit session key plus the
/// encryption and MAC derivation contexts to the full [`SessionKeys`].
///
/// Both the CDM and the license server run this; the attack runs it a
/// third time with dumped inputs.
pub fn derive_session_keys(
    session_key: &[u8; 16],
    enc_context: &[u8],
    mac_context: &[u8],
) -> SessionKeys {
    let _span = wideleak_telemetry::span!("cdm.ladder.derive_session_keys");
    let enc_key = derive_key_128(session_key, labels::ENCRYPTION, enc_context);
    let mac = derive_key_256(session_key, labels::AUTHENTICATION, mac_context);
    // Server and client halves come from distinct counters (3 and 4).
    let server_lo = derive_block(session_key, 3, labels::AUTHENTICATION, mac_context, 256);
    let server_hi = derive_block(session_key, 4, labels::AUTHENTICATION, mac_context, 256);
    let mut mac_key_server = [0u8; 32];
    mac_key_server[..16].copy_from_slice(&server_lo);
    mac_key_server[16..].copy_from_slice(&server_hi);
    SessionKeys { enc_key, mac_key_server, mac_key_client: mac }
}

/// Runs the provisioning ladder: from the keybox device key and the device
/// id to the AES key protecting the provisioning response and the MAC key
/// signing it.
pub fn derive_provisioning_keys(device_key: &[u8; 16], device_id: &[u8]) -> ([u8; 16], [u8; 32]) {
    let _span = wideleak_telemetry::span!("cdm.ladder.derive_provisioning_keys");
    let enc = derive_key_128(device_key, labels::PROVISIONING, device_id);
    let mac = derive_key_256(device_key, labels::AUTHENTICATION, device_id);
    (enc, mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_buffer_layout() {
        let buf = derivation_buffer(1, "ENCRYPTION", b"ctx", 128);
        assert_eq!(buf[0], 1);
        assert_eq!(&buf[1..11], b"ENCRYPTION");
        assert_eq!(buf[11], 0);
        assert_eq!(&buf[12..15], b"ctx");
        assert_eq!(&buf[15..], &128u32.to_be_bytes());
    }

    #[test]
    fn derive_is_deterministic() {
        let k = [9u8; 16];
        assert_eq!(
            derive_key_128(&k, labels::ENCRYPTION, b"c"),
            derive_key_128(&k, labels::ENCRYPTION, b"c")
        );
    }

    #[test]
    fn labels_separate_keys() {
        let k = [9u8; 16];
        assert_ne!(
            derive_key_128(&k, labels::ENCRYPTION, b"c"),
            derive_key_128(&k, labels::AUTHENTICATION, b"c")
        );
    }

    #[test]
    fn contexts_separate_keys() {
        let k = [9u8; 16];
        assert_ne!(
            derive_key_128(&k, labels::ENCRYPTION, b"session-1"),
            derive_key_128(&k, labels::ENCRYPTION, b"session-2")
        );
    }

    #[test]
    fn counters_separate_halves() {
        let k = [9u8; 16];
        let wide = derive_key_256(&k, labels::AUTHENTICATION, b"c");
        assert_ne!(wide[..16], wide[16..], "the two CMAC blocks differ");
    }

    #[test]
    fn session_keys_are_pairwise_distinct() {
        let sk = derive_session_keys(&[1u8; 16], b"enc-ctx", b"mac-ctx");
        assert_ne!(sk.mac_key_client, sk.mac_key_server);
        assert_ne!(&sk.enc_key[..], &sk.mac_key_client[..16]);
    }

    #[test]
    fn session_ladder_matches_manual_composition() {
        // The attack recomputes the ladder from primitives; keep the
        // composition stable.
        let session_key = [5u8; 16];
        let sk = derive_session_keys(&session_key, b"E", b"M");
        assert_eq!(sk.enc_key, derive_key_128(&session_key, labels::ENCRYPTION, b"E"));
        assert_eq!(sk.mac_key_client, derive_key_256(&session_key, labels::AUTHENTICATION, b"M"));
    }

    #[test]
    fn provisioning_ladder() {
        let (enc, mac) = derive_provisioning_keys(&[3u8; 16], b"device-1");
        let (enc2, mac2) = derive_provisioning_keys(&[3u8; 16], b"device-1");
        assert_eq!(enc, enc2);
        assert_eq!(mac, mac2);
        let (enc3, _) = derive_provisioning_keys(&[3u8; 16], b"device-2");
        assert_ne!(enc, enc3, "device id separates provisioning keys");
    }

    #[test]
    fn session_keys_debug_redacts() {
        let sk = derive_session_keys(&[1u8; 16], b"e", b"m");
        assert_eq!(format!("{sk:?}"), "SessionKeys(<redacted>)");
    }
}
