//! A simulated Widevine Content Decryption Module (CDM).
//!
//! Reproduces, from the paper's §IV-D reverse engineering, the structures
//! and protocol of the real CDM:
//!
//! - [`keybox`] — the 128-byte root-of-trust structure (device ID, AES-128
//!   device key, magic number, CRC-32);
//! - [`ladder`] — the AES-CMAC key-derivation ladder from the keybox (or a
//!   session key) down to usable encryption/MAC keys;
//! - [`wire`] + [`messages`] — a TLV message codec standing in for the
//!   proprietary protobuf protocol: provisioning and license exchanges;
//! - [`provisioning`] — installation of the Device RSA Key, protected by
//!   keybox-derived keys;
//! - [`session`] — license sessions: request generation, response
//!   verification, content-key loading;
//! - [`oemcrypto`] — the `_oeccXX` entry-point surface, with an **L3**
//!   backend that stores the keybox insecurely in process memory
//!   (CWE-922 / CVE-2021-0639) and an **L1** backend that keeps every
//!   secret inside a TEE trustlet;
//! - [`cdm`] — the top-level [`cdm::Cdm`] object the Android DRM framework
//!   drives, including the generic (non-DASH) crypto API that Netflix uses
//!   as a secure channel.
//!
//! # Examples
//!
//! ```
//! use wideleak_cdm::keybox::Keybox;
//!
//! let kb = Keybox::issue(b"unit-test-device", &[7u8; 16]);
//! let bytes = kb.to_bytes();
//! assert_eq!(bytes.len(), 128);
//! assert_eq!(Keybox::parse(&bytes).unwrap(), kb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdm;
pub mod keybox;
pub mod ladder;
pub mod messages;
pub mod oemcrypto;
pub mod provisioning;
pub mod session;
pub mod wire;

use std::fmt;

/// Errors surfaced by the CDM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdmError {
    /// A keybox failed structural validation.
    BadKeybox {
        /// What was wrong.
        reason: &'static str,
    },
    /// The device has not been provisioned with an RSA key yet.
    NotProvisioned,
    /// A wire message failed to decode.
    BadMessage {
        /// What was wrong.
        reason: &'static str,
    },
    /// A signature or MAC failed verification.
    BadSignature,
    /// A cryptographic operation failed.
    Crypto(wideleak_crypto::CryptoError),
    /// A TEE call failed (L1 backend).
    Tee(wideleak_tee::TeeError),
    /// No session with the given id.
    NoSuchSession {
        /// The session id requested.
        session_id: u32,
    },
    /// The concurrent-session cap was reached (real OEMCrypto enforces
    /// one; opens are rejected until a session closes).
    SessionLimit {
        /// The configured maximum number of open sessions.
        max: u32,
    },
    /// The 32-bit session-id space is exhausted; ids must never wrap
    /// into live sessions.
    SessionIdsExhausted,
    /// No key loaded for the requested key ID.
    KeyNotLoaded,
    /// The key's license duration has lapsed (renewal required).
    KeyExpired,
    /// The server rejected the request (revocation, policy).
    Rejected {
        /// Server-provided reason.
        reason: String,
    },
}

impl CdmError {
    /// A stable lowercase label for telemetry error-class counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            CdmError::BadKeybox { .. } => "bad_keybox",
            CdmError::NotProvisioned => "not_provisioned",
            CdmError::BadMessage { .. } => "bad_message",
            CdmError::BadSignature => "bad_signature",
            CdmError::Crypto(_) => "crypto",
            CdmError::Tee(_) => "tee",
            CdmError::NoSuchSession { .. } => "no_such_session",
            CdmError::SessionLimit { .. } => "session_limit",
            CdmError::SessionIdsExhausted => "session_ids_exhausted",
            CdmError::KeyNotLoaded => "key_not_loaded",
            CdmError::KeyExpired => "key_expired",
            CdmError::Rejected { .. } => "rejected",
        }
    }
}

impl wideleak_faults::ErrorClass for CdmError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

impl fmt::Display for CdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdmError::BadKeybox { reason } => write!(f, "bad keybox: {reason}"),
            CdmError::NotProvisioned => f.write_str("device has no provisioned RSA key"),
            CdmError::BadMessage { reason } => write!(f, "bad message: {reason}"),
            CdmError::BadSignature => f.write_str("signature verification failed"),
            CdmError::Crypto(e) => write!(f, "crypto error: {e}"),
            CdmError::Tee(e) => write!(f, "TEE error: {e}"),
            CdmError::NoSuchSession { session_id } => write!(f, "no session {session_id}"),
            CdmError::SessionLimit { max } => {
                write!(f, "session limit reached ({max} open sessions)")
            }
            CdmError::SessionIdsExhausted => f.write_str("session id space exhausted"),
            CdmError::KeyNotLoaded => f.write_str("content key not loaded"),
            CdmError::KeyExpired => f.write_str("content key license expired"),
            CdmError::Rejected { reason } => write!(f, "request rejected: {reason}"),
        }
    }
}

impl std::error::Error for CdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdmError::Crypto(e) => Some(e),
            CdmError::Tee(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wideleak_crypto::CryptoError> for CdmError {
    fn from(e: wideleak_crypto::CryptoError) -> Self {
        CdmError::Crypto(e)
    }
}

impl From<wideleak_tee::TeeError> for CdmError {
    fn from(e: wideleak_tee::TeeError) -> Self {
        CdmError::Tee(e)
    }
}
