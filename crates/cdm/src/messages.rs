//! Protocol messages for provisioning and license exchanges, encoded with
//! the TLV wire codec.
//!
//! Tag space: `0x01xx` provisioning, `0x02xx` license request, `0x03xx`
//! license response, `0x04xx` key entries and control blocks.

use wideleak_bmff::types::KeyId;
use wideleak_device::catalog::{CdmVersion, SecurityLevel};

use crate::wire::{TlvReader, TlvWriter, WireError};
use crate::CdmError;

fn security_level_code(level: SecurityLevel) -> u32 {
    match level {
        SecurityLevel::L1 => 1,
        SecurityLevel::L2 => 2,
        SecurityLevel::L3 => 3,
    }
}

fn security_level_from_code(code: u32) -> Result<SecurityLevel, CdmError> {
    match code {
        1 => Ok(SecurityLevel::L1),
        2 => Ok(SecurityLevel::L2),
        3 => Ok(SecurityLevel::L3),
        _ => Err(CdmError::BadMessage { reason: "unknown security level" }),
    }
}

fn encode_version(v: CdmVersion) -> u64 {
    (v.major as u64) << 32 | (v.minor as u64) << 16 | v.patch as u64
}

fn decode_version(raw: u64) -> CdmVersion {
    CdmVersion::new((raw >> 32) as u16, (raw >> 16) as u16, raw as u16)
}

impl From<WireError> for CdmError {
    fn from(_: WireError) -> Self {
        CdmError::BadMessage { reason: "TLV decode failure" }
    }
}

/// A provisioning request: asks the provisioning server for a Device RSA
/// Key. Authenticated with a CMAC under a keybox-derived key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningRequest {
    /// The 32-byte keybox device id.
    pub device_id: Vec<u8>,
    /// CDM version of the requesting device.
    pub cdm_version: CdmVersion,
    /// Security level of the requesting device.
    pub security_level: SecurityLevel,
    /// Anti-replay nonce.
    pub nonce: [u8; 16],
    /// AES-CMAC over the body under the provisioning MAC key (first half).
    pub signature: [u8; 16],
}

impl ProvisioningRequest {
    /// The signed portion of the message.
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0101, &self.device_id)
            .u64(0x0102, encode_version(self.cdm_version))
            .u32(0x0103, security_level_code(self.security_level))
            .bytes(0x0104, &self.nonce);
        w.finish()
    }

    /// Serializes the full message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0100, &self.body_bytes()).bytes(0x01FF, &self.signature);
        w.finish()
    }

    /// Parses the full message.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadMessage`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, CdmError> {
        let outer = TlvReader::parse(bytes)?;
        let body = outer.require(0x0100)?;
        let signature = outer.require_array(0x01FF)?;
        let r = TlvReader::parse(body)?;
        Ok(ProvisioningRequest {
            device_id: r.require(0x0101)?.to_vec(),
            cdm_version: decode_version(r.require_u64(0x0102)?),
            security_level: security_level_from_code(r.require_u32(0x0103)?)?,
            nonce: r.require_array(0x0104)?,
            signature,
        })
    }
}

/// A provisioning response: the Device RSA Key, AES-CBC-encrypted under
/// the keybox-derived provisioning key and MACed under the provisioning
/// MAC key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisioningResponse {
    /// CBC IV for the encrypted key blob.
    pub iv: [u8; 16],
    /// The encrypted serialized RSA private key.
    pub encrypted_rsa_key: Vec<u8>,
    /// Echoed request nonce (anti-replay).
    pub nonce: [u8; 16],
    /// HMAC-SHA256 over the body under the provisioning MAC key.
    pub signature: Vec<u8>,
}

impl ProvisioningResponse {
    /// The signed portion of the message.
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0111, &self.iv).bytes(0x0112, &self.encrypted_rsa_key).bytes(0x0113, &self.nonce);
        w.finish()
    }

    /// Serializes the full message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0110, &self.body_bytes()).bytes(0x011F, &self.signature);
        w.finish()
    }

    /// Parses the full message.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadMessage`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, CdmError> {
        let outer = TlvReader::parse(bytes)?;
        let body = outer.require(0x0110)?;
        let signature = outer.require(0x011F)?.to_vec();
        let r = TlvReader::parse(body)?;
        Ok(ProvisioningResponse {
            iv: r.require_array(0x0111)?,
            encrypted_rsa_key: r.require(0x0112)?.to_vec(),
            nonce: r.require_array(0x0113)?,
            signature,
        })
    }
}

/// A license request for one piece of content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LicenseRequest {
    /// The keybox device id.
    pub device_id: Vec<u8>,
    /// Content identifier (what the MPD/pssh called the title/asset).
    pub content_id: String,
    /// The key IDs the player needs.
    pub key_ids: Vec<KeyId>,
    /// Anti-replay nonce; also the derivation context seed.
    pub nonce: [u8; 16],
    /// CDM version (servers apply revocation rules to this).
    pub cdm_version: CdmVersion,
    /// Security level (servers gate HD keys on this).
    pub security_level: SecurityLevel,
    /// RSA PKCS#1 v1.5 signature over the body with the Device RSA Key.
    pub rsa_signature: Vec<u8>,
}

impl LicenseRequest {
    /// The signed portion of the message.
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0201, &self.device_id).string(0x0202, &self.content_id);
        for kid in &self.key_ids {
            w.bytes(0x0203, &kid.0);
        }
        w.bytes(0x0204, &self.nonce)
            .u64(0x0205, encode_version(self.cdm_version))
            .u32(0x0206, security_level_code(self.security_level));
        w.finish()
    }

    /// Serializes the full message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0200, &self.body_bytes()).bytes(0x02FF, &self.rsa_signature);
        w.finish()
    }

    /// Parses the full message.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadMessage`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, CdmError> {
        let outer = TlvReader::parse(bytes)?;
        let body = outer.require(0x0200)?;
        let rsa_signature = outer.require(0x02FF)?.to_vec();
        let r = TlvReader::parse(body)?;
        let key_ids = r
            .get_all(0x0203)
            .into_iter()
            .map(|raw| {
                raw.try_into()
                    .map(KeyId)
                    .map_err(|_| CdmError::BadMessage { reason: "key id must be 16 bytes" })
            })
            .collect::<Result<_, _>>()?;
        Ok(LicenseRequest {
            device_id: r.require(0x0201)?.to_vec(),
            content_id: r.require_string(0x0202)?,
            key_ids,
            nonce: r.require_array(0x0204)?,
            cdm_version: decode_version(r.require_u64(0x0205)?),
            security_level: security_level_from_code(r.require_u32(0x0206)?)?,
            rsa_signature,
        })
    }
}

/// Usage restrictions attached to one content key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyControl {
    /// Highest vertical resolution this key may decrypt.
    pub max_resolution_height: u32,
    /// Minimum security level required to use the key.
    pub min_security_level: SecurityLevel,
    /// Seconds the key stays usable after loading (0 = unlimited).
    pub duration_seconds: u32,
}

impl KeyControl {
    fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.u32(0x0401, self.max_resolution_height)
            .u32(0x0402, security_level_code(self.min_security_level))
            .u32(0x0403, self.duration_seconds);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, CdmError> {
        let r = TlvReader::parse(bytes)?;
        Ok(KeyControl {
            max_resolution_height: r.require_u32(0x0401)?,
            min_security_level: security_level_from_code(r.require_u32(0x0402)?)?,
            duration_seconds: r.require_u32(0x0403)?,
        })
    }
}

/// One content key in a license response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEntry {
    /// The key ID.
    pub kid: KeyId,
    /// CBC IV for the wrapped key.
    pub iv: [u8; 16],
    /// The content key, AES-CBC-encrypted under the session `enc_key`.
    pub encrypted_key: Vec<u8>,
    /// The usage-control block.
    pub control: KeyControl,
}

impl KeyEntry {
    fn encode(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0411, &self.kid.0)
            .bytes(0x0412, &self.iv)
            .bytes(0x0413, &self.encrypted_key)
            .bytes(0x0414, &self.control.encode());
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, CdmError> {
        let r = TlvReader::parse(bytes)?;
        Ok(KeyEntry {
            kid: KeyId(r.require_array(0x0411)?),
            iv: r.require_array(0x0412)?,
            encrypted_key: r.require(0x0413)?.to_vec(),
            control: KeyControl::decode(r.require(0x0414)?)?,
        })
    }
}

/// A license response carrying wrapped content keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LicenseResponse {
    /// The request nonce, echoed for anti-replay binding to the session.
    pub nonce: [u8; 16],
    /// The session key, RSA-OAEP-encrypted to the Device RSA Key.
    pub encrypted_session_key: Vec<u8>,
    /// Derivation context for the encryption key.
    pub enc_context: Vec<u8>,
    /// Derivation context for the MAC keys.
    pub mac_context: Vec<u8>,
    /// The wrapped content keys.
    pub key_entries: Vec<KeyEntry>,
    /// HMAC-SHA256 over the body under the server MAC key.
    pub signature: Vec<u8>,
}

impl LicenseResponse {
    /// The signed portion of the message.
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0305, &self.nonce)
            .bytes(0x0301, &self.encrypted_session_key)
            .bytes(0x0302, &self.enc_context)
            .bytes(0x0303, &self.mac_context);
        for entry in &self.key_entries {
            w.bytes(0x0304, &entry.encode());
        }
        w.finish()
    }

    /// Serializes the full message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.bytes(0x0300, &self.body_bytes()).bytes(0x03FF, &self.signature);
        w.finish()
    }

    /// Parses the full message.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadMessage`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Self, CdmError> {
        let outer = TlvReader::parse(bytes)?;
        let body = outer.require(0x0300)?;
        let signature = outer.require(0x03FF)?.to_vec();
        let r = TlvReader::parse(body)?;
        let key_entries =
            r.get_all(0x0304).into_iter().map(KeyEntry::decode).collect::<Result<_, _>>()?;
        Ok(LicenseResponse {
            nonce: r.require_array(0x0305)?,
            encrypted_session_key: r.require(0x0301)?.to_vec(),
            enc_context: r.require(0x0302)?.to_vec(),
            mac_context: r.require(0x0303)?.to_vec(),
            key_entries,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn version() -> CdmVersion {
        CdmVersion::new(16, 0, 0)
    }

    #[test]
    fn provisioning_request_round_trip() {
        let req = ProvisioningRequest {
            device_id: vec![1; 32],
            cdm_version: version(),
            security_level: SecurityLevel::L1,
            nonce: [2; 16],
            signature: [3; 16],
        };
        assert_eq!(ProvisioningRequest::parse(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn provisioning_response_round_trip() {
        let resp = ProvisioningResponse {
            iv: [1; 16],
            encrypted_rsa_key: vec![9; 300],
            nonce: [2; 16],
            signature: vec![4; 32],
        };
        assert_eq!(ProvisioningResponse::parse(&resp.to_bytes()).unwrap(), resp);
    }

    #[test]
    fn license_request_round_trip() {
        let req = LicenseRequest {
            device_id: vec![7; 32],
            content_id: "title-42".into(),
            key_ids: vec![KeyId([1; 16]), KeyId([2; 16])],
            nonce: [5; 16],
            cdm_version: CdmVersion::new(3, 1, 0),
            security_level: SecurityLevel::L3,
            rsa_signature: vec![0xAB; 96],
        };
        let parsed = LicenseRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.key_ids.len(), 2);
    }

    #[test]
    fn license_request_no_key_ids() {
        let req = LicenseRequest {
            device_id: vec![7; 32],
            content_id: "t".into(),
            key_ids: vec![],
            nonce: [0; 16],
            cdm_version: version(),
            security_level: SecurityLevel::L1,
            rsa_signature: vec![1],
        };
        assert_eq!(LicenseRequest::parse(&req.to_bytes()).unwrap().key_ids, vec![]);
    }

    #[test]
    fn license_response_round_trip() {
        let resp = LicenseResponse {
            nonce: [6; 16],
            encrypted_session_key: vec![1; 96],
            enc_context: b"enc-ctx".to_vec(),
            mac_context: b"mac-ctx".to_vec(),
            key_entries: vec![
                KeyEntry {
                    kid: KeyId([1; 16]),
                    iv: [2; 16],
                    encrypted_key: vec![3; 32],
                    control: KeyControl {
                        max_resolution_height: 540,
                        min_security_level: SecurityLevel::L3,
                        duration_seconds: 86_400,
                    },
                },
                KeyEntry {
                    kid: KeyId([4; 16]),
                    iv: [5; 16],
                    encrypted_key: vec![6; 32],
                    control: KeyControl {
                        max_resolution_height: 1080,
                        min_security_level: SecurityLevel::L1,
                        duration_seconds: 0,
                    },
                },
            ],
            signature: vec![7; 32],
        };
        let parsed = LicenseResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(parsed.key_entries[1].control.min_security_level, SecurityLevel::L1);
    }

    #[test]
    fn body_bytes_exclude_signature() {
        let req = ProvisioningRequest {
            device_id: vec![1; 32],
            cdm_version: version(),
            security_level: SecurityLevel::L1,
            nonce: [2; 16],
            signature: [3; 16],
        };
        let mut other = req.clone();
        other.signature = [9; 16];
        assert_eq!(req.body_bytes(), other.body_bytes());
        assert_ne!(req.to_bytes(), other.to_bytes());
    }

    #[test]
    fn malformed_key_id_rejected() {
        // Hand-craft a request with a 15-byte key id.
        let mut body = TlvWriter::new();
        body.bytes(0x0201, &[0; 32])
            .string(0x0202, "t")
            .bytes(0x0203, &[0; 15])
            .bytes(0x0204, &[0; 16])
            .u64(0x0205, 0)
            .u32(0x0206, 1);
        let mut outer = TlvWriter::new();
        outer.bytes(0x0200, body.as_slice()).bytes(0x02FF, &[0]);
        assert!(matches!(LicenseRequest::parse(&outer.finish()), Err(CdmError::BadMessage { .. })));
    }

    #[test]
    fn unknown_security_level_rejected() {
        let mut body = TlvWriter::new();
        body.bytes(0x0101, &[0; 32]).u64(0x0102, 0).u32(0x0103, 9).bytes(0x0104, &[0; 16]);
        let mut outer = TlvWriter::new();
        outer.bytes(0x0100, body.as_slice()).bytes(0x01FF, &[0; 16]);
        assert!(ProvisioningRequest::parse(&outer.finish()).is_err());
    }

    #[test]
    fn version_encoding_round_trip() {
        for v in [CdmVersion::new(3, 1, 0), CdmVersion::new(16, 2, 7), CdmVersion::new(0, 0, 0)] {
            assert_eq!(decode_version(encode_version(v)), v);
        }
    }

    #[test]
    fn truncated_message_rejected() {
        let resp = ProvisioningResponse {
            iv: [1; 16],
            encrypted_rsa_key: vec![9; 30],
            nonce: [2; 16],
            signature: vec![4; 32],
        };
        let bytes = resp.to_bytes();
        assert!(ProvisioningResponse::parse(&bytes[..bytes.len() - 3]).is_err());
    }
}
