//! The OEMCrypto entry-point surface (`_oeccXX` functions) with two
//! backends.
//!
//! Both backends drive the same pure state machine, [`CdmCore`]; the
//! difference is *where secrets live* and *which library name shows up in
//! hook traces* — the two properties the WideLeak monitor keys on:
//!
//! - [`L3OemCrypto`] runs the core in the normal world inside
//!   `libwvdrmengine.so`. On keybox installation it writes the raw keybox
//!   into the CDM process's memory (insecure storage of sensitive
//!   information, CWE-922) unless the CDM version carries the
//!   CVE-2021-0639 fix. Every call is traced under the
//!   `libwvdrmengine.so` library name.
//! - [`L1OemCrypto`] forwards every operation into a TEE trustlet
//!   ([`WidevineTrustlet`]) through `liboemcrypto.so`; hook traces show
//!   the `liboemcrypto.so` boundary crossing (how the monitor confirms L1)
//!   and process memory never contains key material.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use wideleak_telemetry::CounterHandle;

use wideleak_bmff::types::{KeyId, Subsample};
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::cmac::aes_cmac_with_key;
use wideleak_crypto::ct::ct_eq;
use wideleak_crypto::hmac::Hmac;
use wideleak_crypto::modes::{cbc_decrypt_padded, cbc_encrypt_padded};
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_crypto::sha256::Sha256;
use wideleak_device::catalog::{CdmVersion, SecurityLevel};
use wideleak_device::hooks::{CallEvent, HookEngine};
use wideleak_device::memory::ProcessMemory;
use wideleak_tee::{SecureStorage, SecureWorld, TeeError, Trustlet};

use crate::keybox::Keybox;
use crate::ladder::derive_key_256;
use crate::messages::{LicenseRequest, LicenseResponse, ProvisioningRequest};
use crate::provisioning::{deserialize_rsa_key, serialize_rsa_key, unwrap_rsa_key};
use crate::session::Session;
use crate::wire::{TlvReader, TlvWriter};
use crate::CdmError;

/// The first CDM version carrying the CVE-2021-0639 keybox-storage fix.
pub const KEYBOX_FIX_VERSION: CdmVersion = CdmVersion::new(16, 1, 0);

/// Parameters describing how one sample is encrypted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleCrypto {
    /// `cenc`: AES-CTR with an 8-byte per-sample IV.
    Cenc {
        /// The per-sample IV.
        iv: [u8; 8],
    },
    /// `cbcs`: AES-CBC pattern encryption with a constant IV.
    Cbcs {
        /// The constant IV.
        constant_iv: [u8; 16],
        /// Encrypted blocks per pattern period.
        crypt_blocks: u8,
        /// Clear blocks per pattern period.
        skip_blocks: u8,
    },
}

/// Number of session-table shards. Session `id` lives in shard
/// `id % SESSION_SHARDS`, so operations on distinct sessions rarely
/// contend while operations on one session serialize.
pub const SESSION_SHARDS: usize = 16;

/// Default cap on concurrently open sessions (real OEMCrypto enforces a
/// per-device limit; ours is configurable via
/// [`CdmCore::with_max_sessions`]).
pub const DEFAULT_MAX_SESSIONS: u32 = 1024;

/// Counts session opens rejected by the cap or id exhaustion.
static SESSION_REJECTS: CounterHandle = CounterHandle::new("cdm.session.rejected");

/// Decrypt-cache hits (any tier), counted only while the cache is on.
static DECRYPT_CACHE_HITS: CounterHandle = CounterHandle::new("cdm.decrypt.cache.hits");

/// Decrypt-cache misses (any tier), counted only while the cache is on.
static DECRYPT_CACHE_MISSES: CounterHandle = CounterHandle::new("cdm.decrypt.cache.misses");

/// Hit/miss counters for the per-session decrypt cache, split by tier:
/// derived AES key schedules and `cenc` keystream prefixes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecryptCacheStats {
    /// Key-schedule lookups served from cache.
    pub key_hits: u64,
    /// Key-schedule lookups that had to derive.
    pub key_misses: u64,
    /// Keystream lookups served from cache.
    pub keystream_hits: u64,
    /// Keystream lookups that had to run AES-CTR.
    pub keystream_misses: u64,
}

impl DecryptCacheStats {
    /// Total hits across both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.key_hits + self.keystream_hits
    }

    /// Total misses across both tiers.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.key_misses + self.keystream_misses
    }

    /// Hit rate in permille over both tiers (0 when never consulted),
    /// kept integral so reports stay byte-deterministic.
    #[must_use]
    pub fn hit_permille(&self) -> u64 {
        (self.hits() * 1000).checked_div(self.hits() + self.misses()).unwrap_or(0)
    }
}

/// Device-global state: the root of trust, the provisioned RSA key and
/// the logical clock. Mutated rarely (boot, provisioning, clock ticks);
/// read on every session operation — hence one `RwLock` for all of it.
struct DeviceState {
    keybox: Option<Keybox>,
    /// Behind an `Arc` because the key embeds precomputed Montgomery/CRT
    /// contexts: handing a reference-counted pointer out of the read lock
    /// is cheap, deep-cloning the contexts per license load is not.
    rsa_key: Option<Arc<RsaPrivateKey>>,
    /// Logical clock in seconds, driving license-duration enforcement.
    clock: u64,
}

/// The pure CDM state machine shared by both security levels.
///
/// Internally split for concurrency: device-global state (keybox, RSA
/// key, clock) sits behind one `RwLock`, while sessions live in a fixed
/// array of mutex-guarded shards selected by session id. Decrypts on
/// distinct sessions proceed in parallel; provisioning and license
/// install still serialize on the locks they need.
///
/// Lock ordering: a device lock and a shard lock are never held at the
/// same time — device state is copied out (keys are small) before the
/// shard is locked, which makes lock-order inversions impossible.
pub struct CdmCore {
    cdm_version: CdmVersion,
    security_level: SecurityLevel,
    device: RwLock<DeviceState>,
    shards: [Mutex<HashMap<u32, Session>>; SESSION_SHARDS],
    next_session: AtomicU32,
    open_sessions: AtomicU32,
    max_sessions: u32,
    /// Hot-path decrypt cache switch; off by default so the cached and
    /// uncached paths stay byte-identical unless explicitly enabled.
    decrypt_cache_enabled: AtomicBool,
    key_hits: AtomicU64,
    key_misses: AtomicU64,
    keystream_hits: AtomicU64,
    keystream_misses: AtomicU64,
}

impl std::fmt::Debug for CdmCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let device = self.device.read();
        write!(
            f,
            "CdmCore(v{}, {}, keybox: {}, provisioned: {}, sessions: {})",
            self.cdm_version,
            self.security_level,
            device.keybox.is_some(),
            device.rsa_key.is_some(),
            self.open_sessions.load(Ordering::Relaxed)
        )
    }
}

impl CdmCore {
    /// Creates a core for a device of the given version and level.
    pub fn new(cdm_version: CdmVersion, security_level: SecurityLevel) -> Self {
        Self::with_max_sessions(cdm_version, security_level, DEFAULT_MAX_SESSIONS)
    }

    /// Creates a core enforcing a custom concurrent-session cap.
    pub fn with_max_sessions(
        cdm_version: CdmVersion,
        security_level: SecurityLevel,
        max_sessions: u32,
    ) -> Self {
        CdmCore {
            cdm_version,
            security_level,
            device: RwLock::new(DeviceState { keybox: None, rsa_key: None, clock: 0 }),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            next_session: AtomicU32::new(1),
            open_sessions: AtomicU32::new(0),
            max_sessions,
            decrypt_cache_enabled: AtomicBool::new(false),
            key_hits: AtomicU64::new(0),
            key_misses: AtomicU64::new(0),
            keystream_hits: AtomicU64::new(0),
            keystream_misses: AtomicU64::new(0),
        }
    }

    /// Turns the per-session decrypt cache on or off. Disabling also
    /// drops any cached state so the next decrypt runs cold.
    pub fn set_decrypt_cache(&self, enabled: bool) {
        self.decrypt_cache_enabled.store(enabled, Ordering::Release);
        if !enabled {
            for shard in &self.shards {
                for session in shard.lock().values_mut() {
                    session.decrypt_cache.clear();
                }
            }
        }
    }

    /// Whether the decrypt cache is currently enabled.
    pub fn decrypt_cache_enabled(&self) -> bool {
        self.decrypt_cache_enabled.load(Ordering::Acquire)
    }

    /// Lifetime hit/miss counters of the decrypt cache.
    pub fn decrypt_cache_stats(&self) -> DecryptCacheStats {
        DecryptCacheStats {
            key_hits: self.key_hits.load(Ordering::Relaxed),
            key_misses: self.key_misses.load(Ordering::Relaxed),
            keystream_hits: self.keystream_hits.load(Ordering::Relaxed),
            keystream_misses: self.keystream_misses.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, session_id: u32) -> &Mutex<HashMap<u32, Session>> {
        &self.shards[session_id as usize % SESSION_SHARDS]
    }

    /// The CDM version this core was built for.
    pub fn cdm_version(&self) -> CdmVersion {
        self.cdm_version
    }

    /// Advances the CDM's logical clock (license durations count against
    /// it).
    pub fn advance_clock(&self, seconds: u64) {
        let mut device = self.device.write();
        device.clock = device.clock.saturating_add(seconds);
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.device.read().clock
    }

    /// Installs the factory keybox.
    pub fn install_keybox(&self, keybox: Keybox) {
        self.device.write().keybox = Some(keybox);
    }

    fn keybox(&self) -> Result<Keybox, CdmError> {
        self.device
            .read()
            .keybox
            .clone()
            .ok_or(CdmError::BadKeybox { reason: "no keybox installed" })
    }

    /// The keybox device id.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadKeybox`] before installation.
    pub fn device_id(&self) -> Result<Vec<u8>, CdmError> {
        Ok(self.keybox()?.device_id().to_vec())
    }

    /// Whether a Device RSA Key is installed.
    pub fn is_provisioned(&self) -> bool {
        self.device.read().rsa_key.is_some()
    }

    /// A handle to the Device RSA Key, if provisioned (the L1 trustlet
    /// persists it to secure storage). Cloning the `Arc` shares the
    /// precomputed exponentiation contexts instead of rebuilding them.
    pub fn rsa_key(&self) -> Option<Arc<RsaPrivateKey>> {
        self.device.read().rsa_key.clone()
    }

    /// Installs a Device RSA Key directly (the L1 trustlet restores a
    /// persisted key after a restart through this).
    pub fn set_rsa_key(&self, key: RsaPrivateKey) {
        self.device.write().rsa_key = Some(Arc::new(key));
    }

    /// Builds a signed provisioning request.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadKeybox`] before keybox installation.
    pub fn provisioning_request(&self, nonce: [u8; 16]) -> Result<ProvisioningRequest, CdmError> {
        let _span = wideleak_telemetry::span!("cdm.provisioning_request");
        let _trace = wideleak_telemetry::trace::span("cdm.provisioning_request");
        let kb = self.keybox()?;
        let mut req = ProvisioningRequest {
            device_id: kb.device_id().to_vec(),
            cdm_version: self.cdm_version,
            security_level: self.security_level,
            nonce,
            signature: [0; 16],
        };
        // Authenticate with a CMAC keyed by the raw device key; the server
        // looks the device key up by device id.
        req.signature = aes_cmac_with_key(kb.device_key(), &req.body_bytes());
        Ok(req)
    }

    /// Processes a provisioning response, installing the Device RSA Key.
    ///
    /// # Errors
    ///
    /// Propagates verification and decode failures from
    /// [`unwrap_rsa_key`].
    pub fn install_rsa_key(
        &self,
        expected_nonce: [u8; 16],
        response: &crate::messages::ProvisioningResponse,
    ) -> Result<(), CdmError> {
        let _span = wideleak_telemetry::span!("cdm.install_rsa_key");
        let _trace = wideleak_telemetry::trace::span("cdm.install_rsa_key");
        let kb = self.keybox()?;
        // Unwrap outside the write lock: the RSA decrypt is the expensive
        // part and needs no device state beyond the keybox copy.
        let key = unwrap_rsa_key(kb.device_key(), kb.device_id(), Some(expected_nonce), response)?;
        self.device.write().rsa_key = Some(Arc::new(key));
        // Installing the unwrapped key completes one provisioning
        // round-trip (request + response).
        wideleak_telemetry::incr("cdm.provisioning.round_trips");
        Ok(())
    }

    /// Opens a session with the given nonce, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::SessionLimit`] at the concurrent-session cap
    /// and [`CdmError::SessionIdsExhausted`] once the 32-bit id space is
    /// spent (ids are never reused, so a wrap would collide with live
    /// sessions).
    pub fn open_session(&self, nonce: [u8; 16]) -> Result<u32, CdmError> {
        if self
            .open_sessions
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_sessions).then_some(n + 1)
            })
            .is_err()
        {
            SESSION_REJECTS.incr();
            return Err(CdmError::SessionLimit { max: self.max_sessions });
        }
        let id = match self
            .next_session
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_add(1))
        {
            Ok(id) => id,
            Err(_) => {
                self.open_sessions.fetch_sub(1, Ordering::AcqRel);
                SESSION_REJECTS.incr();
                return Err(CdmError::SessionIdsExhausted);
            }
        };
        self.shard(id).lock().insert(id, Session::new(nonce));
        Ok(id)
    }

    /// Closes a session, dropping its keys.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::NoSuchSession`].
    pub fn close_session(&self, session_id: u32) -> Result<(), CdmError> {
        let removed = self.shard(session_id).lock().remove(&session_id);
        match removed {
            Some(_) => {
                self.open_sessions.fetch_sub(1, Ordering::AcqRel);
                Ok(())
            }
            None => Err(CdmError::NoSuchSession { session_id }),
        }
    }

    /// How many sessions are currently open.
    pub fn open_session_count(&self) -> u32 {
        self.open_sessions.load(Ordering::Acquire)
    }

    /// How many session entries are actually resident in the sharded
    /// table. Must track [`CdmCore::open_session_count`] exactly: a
    /// divergence means closed sessions leaked table entries and the
    /// `SessionLimit` cap would count dead sessions.
    pub fn resident_session_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Copies a session's content key out under the shard lock so the
    /// actual cipher work can run without holding any lock.
    fn content_key(&self, session_id: u32, kid: &KeyId) -> Result<[u8; 16], CdmError> {
        let now = self.now();
        let shard = self.shard(session_id).lock();
        let session = shard.get(&session_id).ok_or(CdmError::NoSuchSession { session_id })?;
        Ok(session.content_key_at(kid, now)?.key)
    }

    /// Builds an RSA-signed license request for a session.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::NotProvisioned`] without a Device RSA Key and
    /// [`CdmError::NoSuchSession`] for unknown sessions.
    pub fn license_request(
        &self,
        session_id: u32,
        content_id: &str,
        key_ids: &[KeyId],
    ) -> Result<LicenseRequest, CdmError> {
        let _span = wideleak_telemetry::span!("cdm.license_request", session = session_id);
        let _trace = wideleak_telemetry::trace::span("cdm.license_request");
        let nonce = {
            let shard = self.shard(session_id).lock();
            shard.get(&session_id).ok_or(CdmError::NoSuchSession { session_id })?.nonce
        };
        let device = self.device.read();
        let rsa = device.rsa_key.as_ref().ok_or(CdmError::NotProvisioned)?;
        let kb =
            device.keybox.as_ref().ok_or(CdmError::BadKeybox { reason: "no keybox installed" })?;
        let mut req = LicenseRequest {
            device_id: kb.device_id().to_vec(),
            content_id: content_id.to_owned(),
            key_ids: key_ids.to_vec(),
            nonce,
            cdm_version: self.cdm_version,
            security_level: self.security_level,
            rsa_signature: Vec::new(),
        };
        req.rsa_signature = rsa.sign_pkcs1v15_sha256(&req.body_bytes())?;
        Ok(req)
    }

    /// Loads a license response into a session.
    ///
    /// # Errors
    ///
    /// Propagates session and verification failures.
    pub fn load_license(
        &self,
        session_id: u32,
        response: &LicenseResponse,
    ) -> Result<Vec<KeyId>, CdmError> {
        let _span = wideleak_telemetry::span!("cdm.load_license", session = session_id);
        let _trace = wideleak_telemetry::trace::span("cdm.load_license");
        let (rsa, now) = {
            let device = self.device.read();
            (device.rsa_key.clone().ok_or(CdmError::NotProvisioned)?, device.clock)
        };
        let keys = {
            let mut shard = self.shard(session_id).lock();
            let session =
                shard.get_mut(&session_id).ok_or(CdmError::NoSuchSession { session_id })?;
            session.load_license(&rsa, self.security_level, now, response)?
        };
        wideleak_telemetry::incr("cdm.license.loads");
        wideleak_telemetry::add("cdm.license.keys_loaded", keys.len() as u64);
        Ok(keys)
    }

    /// Decrypts one CENC sample with a loaded content key.
    ///
    /// The cipher work runs after the content key is copied out of the
    /// session shard, so decrypts on distinct sessions parallelize.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] or a wrapped scheme error.
    pub fn decrypt_sample(
        &self,
        session_id: u32,
        kid: &KeyId,
        crypto: &SampleCrypto,
        data: &[u8],
        subsamples: &[Subsample],
    ) -> Result<Vec<u8>, CdmError> {
        let out = if self.decrypt_cache_enabled() {
            self.decrypt_sample_cached(session_id, kid, crypto, data, subsamples)
        } else {
            let key = self.content_key(session_id, kid)?;
            decrypt_sample_with_key(&key, crypto, data, subsamples)
        };
        if out.is_ok() && wideleak_telemetry::is_enabled() {
            // Per-session throughput: decrypted sample and byte counts.
            wideleak_telemetry::incr("cdm.decrypt.samples");
            wideleak_telemetry::add("cdm.decrypt.bytes", data.len() as u64);
            wideleak_telemetry::add(
                &format!("cdm.decrypt.bytes.session.{session_id}"),
                data.len() as u64,
            );
        }
        out
    }

    /// The cache-enabled decrypt path: derived AES key schedules are
    /// reused across samples of a session, and for the `cenc` scheme the
    /// continuous per-`(kid, iv)` keystream prefix is reused too. Byte
    /// output is identical to [`decrypt_sample_with_key`]; only the
    /// amount of AES work differs.
    fn decrypt_sample_cached(
        &self,
        session_id: u32,
        kid: &KeyId,
        crypto: &SampleCrypto,
        data: &[u8],
        subsamples: &[Subsample],
    ) -> Result<Vec<u8>, CdmError> {
        use wideleak_cenc as cenc;
        let now = self.now();
        let (cipher, cached_keystream, enc_len) = {
            let mut shard = self.shard(session_id).lock();
            let session =
                shard.get_mut(&session_id).ok_or(CdmError::NoSuchSession { session_id })?;
            let key = session.content_key_at(kid, now)?.key;
            let (cipher, key_hit) = session.decrypt_cache.cipher(kid, &key);
            self.tally_cache(key_hit, &self.key_hits, &self.key_misses);
            let (cached_keystream, enc_len) = match crypto {
                SampleCrypto::Cenc { iv } => {
                    let enc_len = encrypted_len(data.len(), subsamples);
                    let ks = session.decrypt_cache.keystream(kid, *iv, enc_len);
                    self.tally_cache(ks.is_some(), &self.keystream_hits, &self.keystream_misses);
                    (ks, enc_len)
                }
                SampleCrypto::Cbcs { .. } => (None, 0),
            };
            (cipher, cached_keystream, enc_len)
        };
        // All cipher work runs below, without holding any lock.
        let mut out = data.to_vec();
        let result = match crypto {
            SampleCrypto::Cenc { iv } => {
                cenc::validate_subsamples(subsamples, out.len()).map(|()| {
                    let keystream = cached_keystream.unwrap_or_else(|| {
                        // The keystream is the CTR transform of zeros; one
                        // prefix serves every future layout of this sample.
                        let mut ks = vec![0u8; enc_len];
                        cenc::ctr::xcrypt_sample_in_place_with_cipher(&cipher, *iv, &mut ks, &[])
                            .expect("empty subsample map is always consistent");
                        let mut shard = self.shard(session_id).lock();
                        if let Some(session) = shard.get_mut(&session_id) {
                            session.decrypt_cache.store_keystream(kid, *iv, ks.clone());
                        }
                        ks
                    });
                    xor_encrypted_regions(&keystream, &mut out, subsamples);
                })
            }
            SampleCrypto::Cbcs { constant_iv, crypt_blocks, skip_blocks } => {
                let pattern = wideleak_bmff::types::CryptPattern {
                    crypt_blocks: *crypt_blocks,
                    skip_blocks: *skip_blocks,
                };
                cenc::cbcs::decrypt_sample_in_place_with_cipher(
                    &cipher,
                    *constant_iv,
                    pattern,
                    &mut out,
                    subsamples,
                )
            }
        };
        match result {
            Ok(()) => Ok(out),
            Err(_) => Err(CdmError::BadMessage { reason: "sample decryption failed" }),
        }
    }

    fn tally_cache(&self, hit: bool, hits: &AtomicU64, misses: &AtomicU64) {
        if hit {
            hits.fetch_add(1, Ordering::Relaxed);
            DECRYPT_CACHE_HITS.incr();
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
            DECRYPT_CACHE_MISSES.incr();
        }
    }

    /// Generic (non-DASH) encryption under a loaded key — the secure
    /// channel OTT apps like Netflix use for arbitrary data.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] for unknown keys.
    pub fn generic_encrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let key = self.content_key(session_id, kid)?;
        Ok(cbc_encrypt_padded(&Aes128::new(&key), &iv, data))
    }

    /// Generic decryption (see [`CdmCore::generic_encrypt`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] or a padding error.
    pub fn generic_decrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let key = self.content_key(session_id, kid)?;
        Ok(cbc_decrypt_padded(&Aes128::new(&key), &iv, data)?)
    }

    /// Generic signing under a loaded key.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] for unknown keys.
    pub fn generic_sign(
        &self,
        session_id: u32,
        kid: &KeyId,
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let key = self.content_key(session_id, kid)?;
        let mac_key = derive_key_256(&key, crate::ladder::labels::AUTHENTICATION, b"generic");
        Ok(Hmac::<Sha256>::mac(&mac_key, data))
    }

    /// Generic verification (see [`CdmCore::generic_sign`]).
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadSignature`] on mismatch.
    pub fn generic_verify(
        &self,
        session_id: u32,
        kid: &KeyId,
        data: &[u8],
        signature: &[u8],
    ) -> Result<(), CdmError> {
        let expected = self.generic_sign(session_id, kid, data)?;
        if ct_eq(&expected, signature) {
            Ok(())
        } else {
            Err(CdmError::BadSignature)
        }
    }
}

/// Total encrypted bytes a subsample map covers (the whole sample when
/// the map is empty).
fn encrypted_len(sample_len: usize, subsamples: &[Subsample]) -> usize {
    if subsamples.is_empty() {
        sample_len
    } else {
        subsamples.iter().map(|s| s.encrypted_bytes as usize).sum()
    }
}

/// XORs a continuous keystream into the encrypted regions of a sample,
/// mirroring the `cenc` rule that clear bytes consume no keystream.
/// Callers must have validated the map against the sample length.
fn xor_encrypted_regions(keystream: &[u8], sample: &mut [u8], subsamples: &[Subsample]) {
    let mut consumed = 0usize;
    if subsamples.is_empty() {
        for (b, k) in sample.iter_mut().zip(keystream) {
            *b ^= k;
        }
        return;
    }
    let mut offset = 0usize;
    for sub in subsamples {
        offset += sub.clear_bytes as usize;
        let end = offset + sub.encrypted_bytes as usize;
        for (b, k) in sample[offset..end].iter_mut().zip(&keystream[consumed..]) {
            *b ^= k;
        }
        consumed += sub.encrypted_bytes as usize;
        offset = end;
    }
}

/// Shared sample decryption used by the core and (reimplemented) by the
/// attack once it has recovered keys.
pub fn decrypt_sample_with_key(
    key: &[u8; 16],
    crypto: &SampleCrypto,
    data: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CdmError> {
    use wideleak_cenc as cenc;
    let content_key = cenc::keys::ContentKey(*key);
    let result = match crypto {
        SampleCrypto::Cenc { iv } => cenc::ctr::decrypt_sample(&content_key, *iv, data, subsamples),
        SampleCrypto::Cbcs { constant_iv, crypt_blocks, skip_blocks } => {
            let pattern = wideleak_bmff::types::CryptPattern {
                crypt_blocks: *crypt_blocks,
                skip_blocks: *skip_blocks,
            };
            cenc::cbcs::decrypt_sample(&content_key, *constant_iv, pattern, data, subsamples)
        }
    };
    result.map_err(|_| CdmError::BadMessage { reason: "sample decryption failed" })
}

/// The `_oeccXX` surface both backends expose to the Android DRM layer.
pub trait OemCrypto: Send {
    /// `_oecc01_Initialize`-class query: which security level this backend
    /// actually provides.
    fn security_level(&self) -> SecurityLevel;

    /// The CDM version this backend reports.
    fn cdm_version(&self) -> CdmVersion;

    /// Advances the CDM's logical clock (drives license-duration expiry).
    fn advance_clock(&self, seconds: u64) -> Result<(), CdmError>;

    /// Installs the factory keybox.
    fn install_keybox(&self, keybox: Keybox) -> Result<(), CdmError>;

    /// The keybox device id.
    fn device_id(&self) -> Result<Vec<u8>, CdmError>;

    /// Whether a Device RSA Key is installed.
    fn is_provisioned(&self) -> bool;

    /// Builds a signed provisioning request.
    fn provisioning_request(&self, nonce: [u8; 16]) -> Result<ProvisioningRequest, CdmError>;

    /// Installs the Device RSA Key from a provisioning response.
    fn install_rsa_key(
        &self,
        expected_nonce: [u8; 16],
        response: &crate::messages::ProvisioningResponse,
    ) -> Result<(), CdmError>;

    /// Opens a session.
    fn open_session(&self, nonce: [u8; 16]) -> Result<u32, CdmError>;

    /// Closes a session.
    fn close_session(&self, session_id: u32) -> Result<(), CdmError>;

    /// Builds a license request.
    fn license_request(
        &self,
        session_id: u32,
        content_id: &str,
        key_ids: &[KeyId],
    ) -> Result<LicenseRequest, CdmError>;

    /// Loads a license response.
    fn load_license(
        &self,
        session_id: u32,
        response: &LicenseResponse,
    ) -> Result<Vec<KeyId>, CdmError>;

    /// Decrypts one sample.
    fn decrypt_sample(
        &self,
        session_id: u32,
        kid: &KeyId,
        crypto: &SampleCrypto,
        data: &[u8],
        subsamples: &[Subsample],
    ) -> Result<Vec<u8>, CdmError>;

    /// Generic encrypt (non-DASH secure channel).
    fn generic_encrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError>;

    /// Generic decrypt (non-DASH secure channel).
    fn generic_decrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError>;

    /// Generic sign.
    fn generic_sign(&self, session_id: u32, kid: &KeyId, data: &[u8]) -> Result<Vec<u8>, CdmError>;

    /// Generic verify.
    fn generic_verify(
        &self,
        session_id: u32,
        kid: &KeyId,
        data: &[u8],
        signature: &[u8],
    ) -> Result<(), CdmError>;

    /// Enables or disables the per-session decrypt cache. Default is a
    /// no-op: backends without a normal-world core (the L1 trustlet path
    /// keeps key material behind the TEE boundary) simply ignore it.
    fn set_decrypt_cache(&self, _enabled: bool) {}

    /// Decrypt-cache counters, when this backend has one.
    fn decrypt_cache_stats(&self) -> Option<DecryptCacheStats> {
        None
    }
}

/// The software-only Widevine backend (`libwvdrmengine.so`).
///
/// No lock of its own: [`CdmCore`] is internally synchronized, so
/// concurrent binder workers call straight through.
pub struct L3OemCrypto {
    core: CdmCore,
    hooks: Arc<HookEngine>,
    memory: Arc<ProcessMemory>,
    data_region: usize,
}

/// Library name hook traces carry for L3-internal calls.
pub const L3_LIBRARY: &str = "libwvdrmengine.so";

/// Library name hook traces carry when control flow crosses into the TEE
/// driver (L1 only).
pub const L1_LIBRARY: &str = "liboemcrypto.so";

impl L3OemCrypto {
    /// Boots the L3 CDM inside the media DRM process.
    pub fn new(
        cdm_version: CdmVersion,
        hooks: Arc<HookEngine>,
        memory: Arc<ProcessMemory>,
    ) -> Self {
        let data_region = memory.map_region(format!("{L3_LIBRARY}:.data"), Vec::new());
        L3OemCrypto {
            core: CdmCore::new(cdm_version, SecurityLevel::L3),
            hooks,
            memory,
            data_region,
        }
    }

    fn trace(&self, function: &str, args: Vec<Vec<u8>>, result: Option<Vec<u8>>) {
        self.hooks.trace(CallEvent {
            library: L3_LIBRARY.into(),
            function: function.into(),
            args,
            result,
        });
    }

    /// Whether this CDM version zeroizes the keybox after ladder
    /// initialization (the CVE-2021-0639 fix).
    pub fn is_keybox_storage_patched(&self) -> bool {
        self.core.cdm_version() >= KEYBOX_FIX_VERSION
    }
}

impl OemCrypto for L3OemCrypto {
    fn security_level(&self) -> SecurityLevel {
        SecurityLevel::L3
    }

    fn cdm_version(&self) -> CdmVersion {
        self.core.cdm_version()
    }

    fn advance_clock(&self, seconds: u64) -> Result<(), CdmError> {
        self.core.advance_clock(seconds);
        Ok(())
    }

    fn install_keybox(&self, keybox: Keybox) -> Result<(), CdmError> {
        self.trace("_oecc01_Initialize", vec![], None);
        // CWE-922: the software CDM keeps its root of trust in a plain
        // .data buffer of the CDM process. Post-fix versions zeroize it
        // once the ladder is seeded.
        let bytes = keybox.to_bytes();
        let offset = self.memory.append(self.data_region, &bytes);
        self.core.install_keybox(keybox);
        if self.core.cdm_version() >= KEYBOX_FIX_VERSION {
            self.memory.zeroize(self.data_region, offset, bytes.len());
        }
        self.trace("_oecc02_InstallKeybox", vec![], None);
        Ok(())
    }

    fn device_id(&self) -> Result<Vec<u8>, CdmError> {
        self.core.device_id()
    }

    fn is_provisioned(&self) -> bool {
        self.core.is_provisioned()
    }

    fn provisioning_request(&self, nonce: [u8; 16]) -> Result<ProvisioningRequest, CdmError> {
        let req = self.core.provisioning_request(nonce)?;
        self.trace("_oecc08_GenerateNonce", vec![nonce.to_vec()], None);
        self.trace(
            "_oecc09_GenerateSignature",
            vec![req.body_bytes()],
            Some(req.signature.to_vec()),
        );
        Ok(req)
    }

    fn install_rsa_key(
        &self,
        expected_nonce: [u8; 16],
        response: &crate::messages::ProvisioningResponse,
    ) -> Result<(), CdmError> {
        // The hook dump of this call is what lets the attack decrypt the
        // RSA key once it owns the keybox.
        self.trace("_oecc31_RewrapDeviceRSAKey", vec![response.to_bytes()], None);
        self.core.install_rsa_key(expected_nonce, response)?;
        self.trace("_oecc32_LoadDeviceRSAKey", vec![], None);
        Ok(())
    }

    fn open_session(&self, nonce: [u8; 16]) -> Result<u32, CdmError> {
        let id = self.core.open_session(nonce)?;
        self.trace("_oecc04_OpenSession", vec![nonce.to_vec()], Some(id.to_be_bytes().to_vec()));
        Ok(id)
    }

    fn close_session(&self, session_id: u32) -> Result<(), CdmError> {
        self.trace("_oecc05_CloseSession", vec![session_id.to_be_bytes().to_vec()], None);
        self.core.close_session(session_id)
    }

    fn license_request(
        &self,
        session_id: u32,
        content_id: &str,
        key_ids: &[KeyId],
    ) -> Result<LicenseRequest, CdmError> {
        let req = self.core.license_request(session_id, content_id, key_ids)?;
        self.trace(
            "_oecc33_GenerateRSASignature",
            vec![req.body_bytes()],
            Some(req.rsa_signature.clone()),
        );
        Ok(req)
    }

    fn load_license(
        &self,
        session_id: u32,
        response: &LicenseResponse,
    ) -> Result<Vec<KeyId>, CdmError> {
        // Dump the derivation inputs and the wrapped keys, mirroring the
        // buffers the paper's Frida script captures.
        self.trace(
            "_oecc34_DeriveKeysFromSessionKey",
            vec![
                response.encrypted_session_key.clone(),
                response.enc_context.clone(),
                response.mac_context.clone(),
            ],
            None,
        );
        let loaded = self.core.load_license(session_id, response)?;
        self.trace("_oecc11_LoadKeys", vec![response.to_bytes()], None);
        Ok(loaded)
    }

    fn decrypt_sample(
        &self,
        session_id: u32,
        kid: &KeyId,
        crypto: &SampleCrypto,
        data: &[u8],
        subsamples: &[Subsample],
    ) -> Result<Vec<u8>, CdmError> {
        let out = self.core.decrypt_sample(session_id, kid, crypto, data, subsamples)?;
        self.trace("_oecc21_DecryptCTR", vec![kid.0.to_vec()], None);
        Ok(out)
    }

    fn generic_encrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let out = self.core.generic_encrypt(session_id, kid, iv, data)?;
        self.trace("_oecc41_Generic_Encrypt", vec![data.to_vec()], Some(out.clone()));
        Ok(out)
    }

    fn generic_decrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let out = self.core.generic_decrypt(session_id, kid, iv, data)?;
        // The output dump is how the monitor recovers Netflix URIs that
        // travel through the non-DASH secure channel.
        self.trace("_oecc42_Generic_Decrypt", vec![data.to_vec()], Some(out.clone()));
        Ok(out)
    }

    fn generic_sign(&self, session_id: u32, kid: &KeyId, data: &[u8]) -> Result<Vec<u8>, CdmError> {
        let out = self.core.generic_sign(session_id, kid, data)?;
        self.trace("_oecc43_Generic_Sign", vec![data.to_vec()], Some(out.clone()));
        Ok(out)
    }

    fn generic_verify(
        &self,
        session_id: u32,
        kid: &KeyId,
        data: &[u8],
        signature: &[u8],
    ) -> Result<(), CdmError> {
        let result = self.core.generic_verify(session_id, kid, data, signature);
        self.trace(
            "_oecc44_Generic_Verify",
            vec![data.to_vec(), signature.to_vec()],
            Some(vec![result.is_ok() as u8]),
        );
        result
    }

    fn set_decrypt_cache(&self, enabled: bool) {
        self.core.set_decrypt_cache(enabled);
    }

    fn decrypt_cache_stats(&self) -> Option<DecryptCacheStats> {
        Some(self.core.decrypt_cache_stats())
    }
}

// --- L1: the TEE-backed backend -----------------------------------------

/// Trustlet command codes.
mod cmd {
    pub const INSTALL_KEYBOX: u32 = 1;
    pub const DEVICE_ID: u32 = 2;
    pub const IS_PROVISIONED: u32 = 3;
    pub const PROV_REQUEST: u32 = 4;
    pub const INSTALL_RSA: u32 = 5;
    pub const OPEN_SESSION: u32 = 6;
    pub const CLOSE_SESSION: u32 = 7;
    pub const LICENSE_REQUEST: u32 = 8;
    pub const LOAD_LICENSE: u32 = 9;
    pub const DECRYPT_SAMPLE: u32 = 10;
    pub const GENERIC_ENCRYPT: u32 = 11;
    pub const GENERIC_DECRYPT: u32 = 12;
    pub const GENERIC_SIGN: u32 = 13;
    pub const GENERIC_VERIFY: u32 = 14;
    pub const ADVANCE_CLOCK: u32 = 15;
}

/// The Widevine trustlet name inside the secure world.
pub const WIDEVINE_TRUSTLET: &str = "widevine";

/// The Widevine trusted application hosting [`CdmCore`] in the secure
/// world. Secrets persist across invocations through [`SecureStorage`].
pub struct WidevineTrustlet {
    core: CdmCore,
}

impl WidevineTrustlet {
    /// Creates the trustlet for a device.
    pub fn new(cdm_version: CdmVersion) -> Self {
        WidevineTrustlet { core: CdmCore::new(cdm_version, SecurityLevel::L1) }
    }
}

/// The one CDM failure that must survive the world switch with its class
/// intact: real OEMCrypto has a dedicated error code for expired
/// licenses, and renewal logic in the normal world keys off it.
const TEE_KEY_EXPIRED: &str = "content key license expired";

fn tee_bad_params(e: CdmError) -> TeeError {
    match e {
        CdmError::KeyExpired => TeeError::AccessDenied { reason: TEE_KEY_EXPIRED },
        _ => TeeError::BadParameters { reason: "CDM operation failed" },
    }
}

impl Trustlet for WidevineTrustlet {
    fn name(&self) -> &str {
        WIDEVINE_TRUSTLET
    }

    fn invoke(
        &mut self,
        command: u32,
        input: &[u8],
        storage: &mut SecureStorage,
    ) -> Result<Vec<u8>, TeeError> {
        match command {
            cmd::INSTALL_KEYBOX => {
                let kb = Keybox::parse(input).map_err(tee_bad_params)?;
                // The keybox persists in *secure* storage — invisible to
                // normal-world memory scans.
                storage.put("keybox", input.to_vec());
                self.core.install_keybox(kb);
                Ok(Vec::new())
            }
            cmd::DEVICE_ID => self.core.device_id().map_err(tee_bad_params),
            cmd::ADVANCE_CLOCK => {
                let secs: [u8; 8] = input
                    .try_into()
                    .map_err(|_| TeeError::BadParameters { reason: "seconds must be 8 bytes" })?;
                self.core.advance_clock(u64::from_be_bytes(secs));
                Ok(Vec::new())
            }
            cmd::IS_PROVISIONED => Ok(vec![self.core.is_provisioned() as u8]),
            cmd::PROV_REQUEST => {
                let nonce: [u8; 16] = input
                    .try_into()
                    .map_err(|_| TeeError::BadParameters { reason: "nonce must be 16 bytes" })?;
                let req = self.core.provisioning_request(nonce).map_err(tee_bad_params)?;
                Ok(req.to_bytes())
            }
            cmd::INSTALL_RSA => {
                let r = TlvReader::parse(input)
                    .map_err(|_| TeeError::BadParameters { reason: "bad TLV" })?;
                let nonce: [u8; 16] =
                    r.require_array(1).map_err(|_| TeeError::BadParameters { reason: "nonce" })?;
                let resp = crate::messages::ProvisioningResponse::parse(
                    r.require(2).map_err(|_| TeeError::BadParameters { reason: "resp" })?,
                )
                .map_err(tee_bad_params)?;
                self.core.install_rsa_key(nonce, &resp).map_err(|e| match e {
                    CdmError::BadSignature => {
                        TeeError::AccessDenied { reason: "bad provisioning MAC" }
                    }
                    other => tee_bad_params(other),
                })?;
                // Persist the provisioned key in secure storage.
                if let Some(rsa) = self.core.rsa_key() {
                    storage.put("rsa_key", serialize_rsa_key(&rsa));
                }
                Ok(Vec::new())
            }
            cmd::OPEN_SESSION => {
                let nonce: [u8; 16] = input
                    .try_into()
                    .map_err(|_| TeeError::BadParameters { reason: "nonce must be 16 bytes" })?;
                // Recover a persisted RSA key after a trustlet restart.
                if !self.core.is_provisioned() && storage.contains("rsa_key") {
                    if let Ok(blob) = storage.get("rsa_key") {
                        if let Ok(key) = deserialize_rsa_key(blob) {
                            self.core.set_rsa_key(key);
                        }
                    }
                }
                let id = self.core.open_session(nonce).map_err(|e| match e {
                    CdmError::SessionLimit { .. } | CdmError::SessionIdsExhausted => {
                        TeeError::AccessDenied { reason: "session limit reached" }
                    }
                    other => tee_bad_params(other),
                })?;
                Ok(id.to_be_bytes().to_vec())
            }
            cmd::CLOSE_SESSION => {
                let id = parse_session_id(input)?;
                self.core.close_session(id).map_err(tee_bad_params)?;
                Ok(Vec::new())
            }
            cmd::LICENSE_REQUEST => {
                let r = TlvReader::parse(input)
                    .map_err(|_| TeeError::BadParameters { reason: "bad TLV" })?;
                let id = r.require_u32(1).map_err(|_| TeeError::BadParameters { reason: "sid" })?;
                let content_id =
                    r.require_string(2).map_err(|_| TeeError::BadParameters { reason: "cid" })?;
                let kids: Vec<KeyId> = r
                    .get_all(3)
                    .into_iter()
                    .filter_map(|raw| raw.try_into().ok().map(KeyId))
                    .collect();
                let req =
                    self.core.license_request(id, &content_id, &kids).map_err(tee_bad_params)?;
                Ok(req.to_bytes())
            }
            cmd::LOAD_LICENSE => {
                let r = TlvReader::parse(input)
                    .map_err(|_| TeeError::BadParameters { reason: "bad TLV" })?;
                let id = r.require_u32(1).map_err(|_| TeeError::BadParameters { reason: "sid" })?;
                let resp = LicenseResponse::parse(
                    r.require(2).map_err(|_| TeeError::BadParameters { reason: "resp" })?,
                )
                .map_err(tee_bad_params)?;
                let loaded = self.core.load_license(id, &resp).map_err(|e| match e {
                    CdmError::BadSignature => TeeError::AccessDenied { reason: "bad license MAC" },
                    other => tee_bad_params(other),
                })?;
                let mut w = TlvWriter::new();
                for kid in loaded {
                    w.bytes(1, &kid.0);
                }
                Ok(w.finish())
            }
            cmd::DECRYPT_SAMPLE => {
                let (id, kid, crypto, data, subsamples) = parse_decrypt_input(input)?;
                self.core
                    .decrypt_sample(id, &kid, &crypto, &data, &subsamples)
                    .map_err(tee_bad_params)
            }
            cmd::GENERIC_ENCRYPT | cmd::GENERIC_DECRYPT | cmd::GENERIC_SIGN => {
                let r = TlvReader::parse(input)
                    .map_err(|_| TeeError::BadParameters { reason: "bad TLV" })?;
                let id = r.require_u32(1).map_err(|_| TeeError::BadParameters { reason: "sid" })?;
                let kid = KeyId(
                    r.require_array(2).map_err(|_| TeeError::BadParameters { reason: "kid" })?,
                );
                let data = r.require(4).map_err(|_| TeeError::BadParameters { reason: "data" })?;
                match command {
                    cmd::GENERIC_ENCRYPT | cmd::GENERIC_DECRYPT => {
                        let iv: [u8; 16] = r
                            .require_array(3)
                            .map_err(|_| TeeError::BadParameters { reason: "iv" })?;
                        if command == cmd::GENERIC_ENCRYPT {
                            self.core.generic_encrypt(id, &kid, iv, data).map_err(tee_bad_params)
                        } else {
                            self.core.generic_decrypt(id, &kid, iv, data).map_err(tee_bad_params)
                        }
                    }
                    _ => self.core.generic_sign(id, &kid, data).map_err(tee_bad_params),
                }
            }
            cmd::GENERIC_VERIFY => {
                let r = TlvReader::parse(input)
                    .map_err(|_| TeeError::BadParameters { reason: "bad TLV" })?;
                let id = r.require_u32(1).map_err(|_| TeeError::BadParameters { reason: "sid" })?;
                let kid = KeyId(
                    r.require_array(2).map_err(|_| TeeError::BadParameters { reason: "kid" })?,
                );
                let data = r.require(4).map_err(|_| TeeError::BadParameters { reason: "data" })?;
                let sig = r.require(5).map_err(|_| TeeError::BadParameters { reason: "sig" })?;
                // Only a genuine mismatch maps to the "false" reply byte;
                // a closed session or missing key is a real error, not a
                // failed verification.
                match self.core.generic_verify(id, &kid, data, sig) {
                    Ok(()) => Ok(vec![1]),
                    Err(CdmError::BadSignature) => Ok(vec![0]),
                    Err(other) => Err(tee_bad_params(other)),
                }
            }
            other => Err(TeeError::BadCommand { command: other }),
        }
    }
}

fn parse_session_id(input: &[u8]) -> Result<u32, TeeError> {
    input
        .try_into()
        .map(u32::from_be_bytes)
        .map_err(|_| TeeError::BadParameters { reason: "session id must be 4 bytes" })
}

type DecryptInput = (u32, KeyId, SampleCrypto, Vec<u8>, Vec<Subsample>);

fn parse_decrypt_input(input: &[u8]) -> Result<DecryptInput, TeeError> {
    let bad = |reason: &'static str| TeeError::BadParameters { reason };
    let r = TlvReader::parse(input).map_err(|_| bad("bad TLV"))?;
    let id = r.require_u32(1).map_err(|_| bad("sid"))?;
    let kid = KeyId(r.require_array(2).map_err(|_| bad("kid"))?);
    let crypto = match r.require_u32(3).map_err(|_| bad("mode"))? {
        0 => SampleCrypto::Cenc { iv: r.require_array(4).map_err(|_| bad("iv"))? },
        1 => {
            let iv: [u8; 16] = r.require_array(4).map_err(|_| bad("civ"))?;
            let pattern: [u8; 2] = r.require_array(5).map_err(|_| bad("pattern"))?;
            SampleCrypto::Cbcs {
                constant_iv: iv,
                crypt_blocks: pattern[0],
                skip_blocks: pattern[1],
            }
        }
        _ => return Err(bad("unknown mode")),
    };
    let data = r.require(6).map_err(|_| bad("data"))?.to_vec();
    let subsamples = r
        .get_all(7)
        .into_iter()
        .map(|raw| {
            let arr: [u8; 6] = raw.try_into().map_err(|_| bad("subsample"))?;
            Ok(Subsample {
                clear_bytes: u16::from_be_bytes([arr[0], arr[1]]),
                encrypted_bytes: u32::from_be_bytes([arr[2], arr[3], arr[4], arr[5]]),
            })
        })
        .collect::<Result<_, TeeError>>()?;
    Ok((id, kid, crypto, data, subsamples))
}

fn encode_decrypt_input(
    session_id: u32,
    kid: &KeyId,
    crypto: &SampleCrypto,
    data: &[u8],
    subsamples: &[Subsample],
) -> Vec<u8> {
    let mut w = TlvWriter::new();
    w.u32(1, session_id).bytes(2, &kid.0);
    match crypto {
        SampleCrypto::Cenc { iv } => {
            w.u32(3, 0).bytes(4, iv);
        }
        SampleCrypto::Cbcs { constant_iv, crypt_blocks, skip_blocks } => {
            w.u32(3, 1).bytes(4, constant_iv).bytes(5, &[*crypt_blocks, *skip_blocks]);
        }
    }
    w.bytes(6, data);
    for s in subsamples {
        let mut raw = [0u8; 6];
        raw[..2].copy_from_slice(&s.clear_bytes.to_be_bytes());
        raw[2..].copy_from_slice(&s.encrypted_bytes.to_be_bytes());
        w.bytes(7, &raw);
    }
    w.finish()
}

/// The TEE-backed Widevine backend: a thin normal-world client whose every
/// operation is a world switch through `liboemcrypto.so`.
pub struct L1OemCrypto {
    cdm_version: CdmVersion,
    world: Arc<SecureWorld>,
    hooks: Arc<HookEngine>,
}

impl L1OemCrypto {
    /// Boots the L1 client, loading the Widevine trustlet into the secure
    /// world.
    pub fn new(cdm_version: CdmVersion, world: Arc<SecureWorld>, hooks: Arc<HookEngine>) -> Self {
        world.load_trustlet(Box::new(WidevineTrustlet::new(cdm_version)));
        L1OemCrypto { cdm_version, world, hooks }
    }

    fn call(&self, function: &str, command: u32, input: Vec<u8>) -> Result<Vec<u8>, CdmError> {
        // The world switch is its own trace phase: with a propagated
        // context, a single client call renders client → server → cdm →
        // tee with the TEE residency visible as this span's duration.
        let _tee = wideleak_telemetry::trace::span("tee.invoke").with("function", function);
        let result =
            self.world.invoke(WIDEVINE_TRUSTLET, command, &input).map_err(|e| match e {
                TeeError::AccessDenied { reason: TEE_KEY_EXPIRED } => CdmError::KeyExpired,
                other => CdmError::Tee(other),
            })?;
        // L1's signature in the hook log: the call crosses
        // liboemcrypto.so. Input *and* output buffers live in the normal
        // world (they are the world-switch parameters), so hooks can dump
        // both — key material stays inside the TEE, but what the CDM
        // returns to apps (e.g. generic-decrypt plaintext) does not.
        self.hooks.trace(CallEvent {
            library: L1_LIBRARY.into(),
            function: function.into(),
            args: vec![input],
            result: Some(result.clone()),
        });
        Ok(result)
    }
}

impl OemCrypto for L1OemCrypto {
    fn security_level(&self) -> SecurityLevel {
        SecurityLevel::L1
    }

    fn cdm_version(&self) -> CdmVersion {
        self.cdm_version
    }

    fn advance_clock(&self, seconds: u64) -> Result<(), CdmError> {
        self.call("_oecc06_AdvanceClock", cmd::ADVANCE_CLOCK, seconds.to_be_bytes().to_vec())?;
        Ok(())
    }

    fn install_keybox(&self, keybox: Keybox) -> Result<(), CdmError> {
        self.call("_oecc02_InstallKeybox", cmd::INSTALL_KEYBOX, keybox.to_bytes().to_vec())?;
        Ok(())
    }

    fn device_id(&self) -> Result<Vec<u8>, CdmError> {
        self.call("_oecc03_GetDeviceID", cmd::DEVICE_ID, Vec::new())
    }

    fn is_provisioned(&self) -> bool {
        self.call("_oecc30_IsProvisioned", cmd::IS_PROVISIONED, Vec::new())
            .map(|v| v == [1])
            .unwrap_or(false)
    }

    fn provisioning_request(&self, nonce: [u8; 16]) -> Result<ProvisioningRequest, CdmError> {
        let raw = self.call("_oecc09_GenerateSignature", cmd::PROV_REQUEST, nonce.to_vec())?;
        ProvisioningRequest::parse(&raw)
    }

    fn install_rsa_key(
        &self,
        expected_nonce: [u8; 16],
        response: &crate::messages::ProvisioningResponse,
    ) -> Result<(), CdmError> {
        let mut w = TlvWriter::new();
        w.bytes(1, &expected_nonce).bytes(2, &response.to_bytes());
        self.call("_oecc31_RewrapDeviceRSAKey", cmd::INSTALL_RSA, w.finish())?;
        Ok(())
    }

    fn open_session(&self, nonce: [u8; 16]) -> Result<u32, CdmError> {
        let raw = self.call("_oecc04_OpenSession", cmd::OPEN_SESSION, nonce.to_vec())?;
        let arr: [u8; 4] = raw
            .as_slice()
            .try_into()
            .map_err(|_| CdmError::BadMessage { reason: "bad session id" })?;
        Ok(u32::from_be_bytes(arr))
    }

    fn close_session(&self, session_id: u32) -> Result<(), CdmError> {
        self.call("_oecc05_CloseSession", cmd::CLOSE_SESSION, session_id.to_be_bytes().to_vec())?;
        Ok(())
    }

    fn license_request(
        &self,
        session_id: u32,
        content_id: &str,
        key_ids: &[KeyId],
    ) -> Result<LicenseRequest, CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).string(2, content_id);
        for kid in key_ids {
            w.bytes(3, &kid.0);
        }
        let raw = self.call("_oecc33_GenerateRSASignature", cmd::LICENSE_REQUEST, w.finish())?;
        LicenseRequest::parse(&raw)
    }

    fn load_license(
        &self,
        session_id: u32,
        response: &LicenseResponse,
    ) -> Result<Vec<KeyId>, CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).bytes(2, &response.to_bytes());
        let raw = self.call("_oecc11_LoadKeys", cmd::LOAD_LICENSE, w.finish())?;
        let r = TlvReader::parse(&raw)?;
        Ok(r.get_all(1).into_iter().filter_map(|raw| raw.try_into().ok().map(KeyId)).collect())
    }

    fn decrypt_sample(
        &self,
        session_id: u32,
        kid: &KeyId,
        crypto: &SampleCrypto,
        data: &[u8],
        subsamples: &[Subsample],
    ) -> Result<Vec<u8>, CdmError> {
        let input = encode_decrypt_input(session_id, kid, crypto, data, subsamples);
        self.call("_oecc21_DecryptCTR", cmd::DECRYPT_SAMPLE, input)
    }

    fn generic_encrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).bytes(2, &kid.0).bytes(3, &iv).bytes(4, data);
        self.call("_oecc41_Generic_Encrypt", cmd::GENERIC_ENCRYPT, w.finish())
    }

    fn generic_decrypt(
        &self,
        session_id: u32,
        kid: &KeyId,
        iv: [u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).bytes(2, &kid.0).bytes(3, &iv).bytes(4, data);
        self.call("_oecc42_Generic_Decrypt", cmd::GENERIC_DECRYPT, w.finish())
    }

    fn generic_sign(&self, session_id: u32, kid: &KeyId, data: &[u8]) -> Result<Vec<u8>, CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).bytes(2, &kid.0).bytes(4, data);
        self.call("_oecc43_Generic_Sign", cmd::GENERIC_SIGN, w.finish())
    }

    fn generic_verify(
        &self,
        session_id: u32,
        kid: &KeyId,
        data: &[u8],
        signature: &[u8],
    ) -> Result<(), CdmError> {
        let mut w = TlvWriter::new();
        w.u32(1, session_id).bytes(2, &kid.0).bytes(4, data).bytes(5, signature);
        let out = self.call("_oecc44_Generic_Verify", cmd::GENERIC_VERIFY, w.finish())?;
        match out.as_slice() {
            [1] => Ok(()),
            [0] => Err(CdmError::BadSignature),
            _ => Err(CdmError::BadMessage { reason: "bad verify reply" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks() -> Arc<HookEngine> {
        Arc::new(HookEngine::new())
    }

    fn memory() -> Arc<ProcessMemory> {
        Arc::new(ProcessMemory::new("mediaserver"))
    }

    fn keybox() -> Keybox {
        Keybox::issue(b"oemcrypto-test-device", &[0x55; 16])
    }

    #[test]
    fn l3_leaks_keybox_into_process_memory() {
        let mem = memory();
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks(), mem.clone());
        assert!(!l3.is_keybox_storage_patched());
        l3.install_keybox(keybox()).unwrap();
        // The magic number is findable — CWE-922.
        let hits = mem.scan(b"kbox");
        assert_eq!(hits.len(), 1);
        let (region, offset) = hits[0];
        let raw = mem.read(region, offset - 120, 128).unwrap();
        assert!(Keybox::parse(&raw).is_ok());
    }

    #[test]
    fn patched_l3_zeroizes_keybox() {
        let mem = memory();
        let l3 = L3OemCrypto::new(KEYBOX_FIX_VERSION, hooks(), mem.clone());
        assert!(l3.is_keybox_storage_patched());
        l3.install_keybox(keybox()).unwrap();
        assert!(mem.scan(b"kbox").is_empty(), "fixed CDM leaves no keybox in memory");
        // The CDM still works.
        assert_eq!(l3.device_id().unwrap().len(), 32);
    }

    #[test]
    fn l1_keeps_memory_clean() {
        let mem = memory();
        let world = Arc::new(SecureWorld::new());
        let l1 = L1OemCrypto::new(CdmVersion::new(16, 0, 0), world.clone(), hooks());
        l1.install_keybox(keybox()).unwrap();
        assert!(mem.scan(b"kbox").is_empty(), "keybox lives in the TEE only");
        assert_eq!(l1.device_id().unwrap().len(), 32);
        assert!(world.switch_count() >= 2, "operations are world switches");
    }

    #[test]
    fn hook_traces_carry_the_right_library() {
        // L3: all calls stay in libwvdrmengine.so.
        let h3 = hooks();
        h3.start_recording();
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), h3.clone(), memory());
        l3.install_keybox(keybox()).unwrap();
        let log3 = h3.stop_recording();
        assert!(!log3.is_empty());
        assert!(log3.iter().all(|e| e.library == L3_LIBRARY));

        // L1: calls cross liboemcrypto.so.
        let h1 = hooks();
        h1.start_recording();
        let l1 =
            L1OemCrypto::new(CdmVersion::new(16, 0, 0), Arc::new(SecureWorld::new()), h1.clone());
        l1.install_keybox(keybox()).unwrap();
        let log1 = h1.stop_recording();
        assert!(!log1.is_empty());
        assert!(log1.iter().all(|e| e.library == L1_LIBRARY));
    }

    #[test]
    fn sessions_open_and_close_on_both_backends() {
        let backends: Vec<Box<dyn OemCrypto>> = vec![
            Box::new(L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks(), memory())),
            Box::new(L1OemCrypto::new(
                CdmVersion::new(16, 0, 0),
                Arc::new(SecureWorld::new()),
                hooks(),
            )),
        ];
        for backend in backends {
            backend.install_keybox(keybox()).unwrap();
            let a = backend.open_session([1; 16]).unwrap();
            let b = backend.open_session([2; 16]).unwrap();
            assert_ne!(a, b);
            backend.close_session(a).unwrap();
            assert!(backend.close_session(a).is_err(), "double close fails");
            backend.close_session(b).unwrap();
        }
    }

    #[test]
    fn unprovisioned_license_request_fails() {
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks(), memory());
        l3.install_keybox(keybox()).unwrap();
        let sid = l3.open_session([0; 16]).unwrap();
        assert!(!l3.is_provisioned());
        assert!(matches!(l3.license_request(sid, "title", &[]), Err(CdmError::NotProvisioned)));
    }

    #[test]
    fn provisioning_request_is_cmac_signed() {
        let l3 = L3OemCrypto::new(CdmVersion::new(3, 1, 0), hooks(), memory());
        let kb = keybox();
        l3.install_keybox(kb.clone()).unwrap();
        let req = l3.provisioning_request([9; 16]).unwrap();
        let expected = aes_cmac_with_key(kb.device_key(), &req.body_bytes());
        assert_eq!(req.signature, expected);
        assert_eq!(req.security_level, SecurityLevel::L3);
        assert_eq!(req.cdm_version, CdmVersion::new(3, 1, 0));
    }

    #[test]
    fn decrypt_input_codec_round_trip() {
        let subs = vec![
            Subsample { clear_bytes: 4, encrypted_bytes: 60 },
            Subsample { clear_bytes: 0, encrypted_bytes: 100 },
        ];
        for crypto in [
            SampleCrypto::Cenc { iv: [7; 8] },
            SampleCrypto::Cbcs { constant_iv: [8; 16], crypt_blocks: 1, skip_blocks: 9 },
        ] {
            let enc = encode_decrypt_input(5, &KeyId([2; 16]), &crypto, b"data", &subs);
            let (id, kid, parsed_crypto, data, parsed_subs) = parse_decrypt_input(&enc).unwrap();
            assert_eq!(id, 5);
            assert_eq!(kid, KeyId([2; 16]));
            assert_eq!(parsed_crypto, crypto);
            assert_eq!(data, b"data");
            assert_eq!(parsed_subs, subs);
        }
    }

    #[test]
    fn trustlet_rejects_unknown_command() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(WidevineTrustlet::new(CdmVersion::new(16, 0, 0))));
        assert!(matches!(
            world.invoke(WIDEVINE_TRUSTLET, 999, &[]),
            Err(TeeError::BadCommand { command: 999 })
        ));
    }

    #[test]
    fn trustlet_rejects_garbage_keybox() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(WidevineTrustlet::new(CdmVersion::new(16, 0, 0))));
        assert!(world.invoke(WIDEVINE_TRUSTLET, cmd::INSTALL_KEYBOX, &[0u8; 10]).is_err());
    }

    #[test]
    fn session_cap_rejects_with_typed_error_and_frees_on_close() {
        let core = CdmCore::with_max_sessions(CdmVersion::new(16, 0, 0), SecurityLevel::L3, 2);
        let a = core.open_session([1; 16]).unwrap();
        let _b = core.open_session([2; 16]).unwrap();
        assert!(matches!(core.open_session([3; 16]), Err(CdmError::SessionLimit { max: 2 })));
        core.close_session(a).unwrap();
        assert!(core.open_session([4; 16]).is_ok(), "closing frees a slot");
        assert_eq!(core.open_session_count(), 2);
    }

    #[test]
    fn session_id_exhaustion_errors_instead_of_wrapping() {
        let core = CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3);
        core.next_session.store(u32::MAX, Ordering::Relaxed);
        assert!(matches!(core.open_session([0; 16]), Err(CdmError::SessionIdsExhausted)));
        // The failed open must not leak a slot from the session cap.
        assert_eq!(core.open_session_count(), 0);
    }

    /// Installs a content key straight into a session, bypassing the
    /// license wire format (tests target the decrypt path, not loading).
    fn load_key_directly(core: &CdmCore, sid: u32, kid: KeyId, key: [u8; 16], duration: u32) {
        use crate::messages::KeyControl;
        use crate::session::LoadedKey;
        let loaded_at = core.now();
        let mut shard = core.shard(sid).lock();
        shard.get_mut(&sid).unwrap().content_keys.insert(
            kid,
            LoadedKey {
                key,
                control: KeyControl {
                    max_resolution_height: 2160,
                    min_security_level: SecurityLevel::L3,
                    duration_seconds: duration,
                },
                loaded_at,
            },
        );
    }

    #[test]
    fn churn_does_not_grow_the_session_table() {
        // Open/close 10x the cap: the cap must count live sessions only,
        // and the sharded table must not retain closed sessions.
        let cap = 8u32;
        let core = CdmCore::with_max_sessions(CdmVersion::new(16, 0, 0), SecurityLevel::L3, cap);
        for round in 0..10 {
            let ids: Vec<u32> = (0..cap)
                .map(|i| core.open_session([(round * 16 + i) as u8; 16]).unwrap())
                .collect();
            assert_eq!(core.open_session_count(), cap);
            assert_eq!(core.resident_session_count(), cap as usize);
            assert!(matches!(core.open_session([0xFF; 16]), Err(CdmError::SessionLimit { .. })));
            for id in ids {
                core.close_session(id).unwrap();
            }
        }
        assert_eq!(core.open_session_count(), 0);
        assert_eq!(core.resident_session_count(), 0, "closed sessions must leave the table");
        assert!(core.open_session([0; 16]).is_ok(), "cap slots all freed after churn");
    }

    #[test]
    fn cached_decrypt_is_byte_identical_and_hits() {
        use wideleak_cenc as cenc;
        let kid = KeyId([4; 16]);
        let key = [0x5A; 16];
        let content_key = cenc::keys::ContentKey(key);
        let sample: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        let subs = [
            Subsample { clear_bytes: 12, encrypted_bytes: 300 },
            Subsample { clear_bytes: 0, encrypted_bytes: 288 },
        ];
        let ctr_ct = cenc::ctr::encrypt_sample(&content_key, [7; 8], &sample, &subs).unwrap();
        let pattern = wideleak_bmff::types::CryptPattern { crypt_blocks: 1, skip_blocks: 9 };
        let cbcs_ct =
            cenc::cbcs::encrypt_sample(&content_key, [8; 16], pattern, &sample, &subs).unwrap();

        let make_core = |cache: bool| {
            let core = CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3);
            core.set_decrypt_cache(cache);
            let sid = core.open_session([1; 16]).unwrap();
            load_key_directly(&core, sid, kid, key, 0);
            (core, sid)
        };
        let (cold, cold_sid) = make_core(false);
        let (warm, warm_sid) = make_core(true);
        for crypto in [
            SampleCrypto::Cenc { iv: [7; 8] },
            SampleCrypto::Cbcs { constant_iv: [8; 16], crypt_blocks: 1, skip_blocks: 9 },
        ] {
            let ct = if matches!(crypto, SampleCrypto::Cenc { .. }) { &ctr_ct } else { &cbcs_ct };
            let expect = cold.decrypt_sample(cold_sid, &kid, &crypto, ct, &subs).unwrap();
            assert_eq!(expect, sample);
            for _ in 0..3 {
                let got = warm.decrypt_sample(warm_sid, &kid, &crypto, ct, &subs).unwrap();
                assert_eq!(got, expect, "cached output must be byte-identical");
            }
        }
        let stats = warm.decrypt_cache_stats();
        assert!(stats.key_hits > 0, "repeat decrypts reuse the key schedule: {stats:?}");
        assert!(stats.keystream_hits > 0, "repeat cenc decrypts reuse the keystream: {stats:?}");
        assert_eq!(cold.decrypt_cache_stats(), DecryptCacheStats::default(), "off = untouched");
    }

    #[test]
    fn cached_decrypt_still_enforces_key_expiry() {
        let kid = KeyId([5; 16]);
        let core = CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3);
        core.set_decrypt_cache(true);
        let sid = core.open_session([1; 16]).unwrap();
        load_key_directly(&core, sid, kid, [0x66; 16], 10);
        let crypto = SampleCrypto::Cenc { iv: [3; 8] };
        assert!(core.decrypt_sample(sid, &kid, &crypto, &[0u8; 64], &[]).is_ok());
        core.advance_clock(11);
        assert!(
            matches!(
                core.decrypt_sample(sid, &kid, &crypto, &[0u8; 64], &[]),
                Err(CdmError::KeyExpired)
            ),
            "a warm cache must not outlive the license duration"
        );
    }

    #[test]
    fn disabling_the_decrypt_cache_drops_cached_state() {
        let kid = KeyId([6; 16]);
        let core = CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3);
        core.set_decrypt_cache(true);
        let sid = core.open_session([1; 16]).unwrap();
        load_key_directly(&core, sid, kid, [0x77; 16], 0);
        let crypto = SampleCrypto::Cenc { iv: [9; 8] };
        core.decrypt_sample(sid, &kid, &crypto, &[0u8; 32], &[]).unwrap();
        {
            let shard = core.shard(sid).lock();
            assert!(shard.get(&sid).unwrap().decrypt_cache.cipher_count() > 0);
        }
        core.set_decrypt_cache(false);
        let shard = core.shard(sid).lock();
        let session = shard.get(&sid).unwrap();
        assert_eq!(session.decrypt_cache.cipher_count(), 0);
        assert_eq!(session.decrypt_cache.keystream_count(), 0);
    }

    #[test]
    fn sessions_on_distinct_shards_operate_concurrently() {
        let core = Arc::new(CdmCore::new(CdmVersion::new(16, 0, 0), SecurityLevel::L3));
        let mut ids = Vec::new();
        for i in 0..8u8 {
            ids.push(core.open_session([i; 16]).unwrap());
        }
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    // No keys are loaded, so each op fails — the point is
                    // that cross-shard traffic races without deadlocking.
                    for _ in 0..50 {
                        let _ = core.generic_sign(id, &KeyId([9; 16]), b"payload");
                    }
                    core.close_session(id).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(core.open_session_count(), 0);
    }

    #[test]
    fn trustlet_verify_distinguishes_errors_from_mismatch() {
        let world = SecureWorld::new();
        world.load_trustlet(Box::new(WidevineTrustlet::new(CdmVersion::new(16, 0, 0))));
        // Verify against a session that was never opened: must error, not
        // report "signature invalid".
        let mut w = TlvWriter::new();
        w.u32(1, 42).bytes(2, &[7; 16]).bytes(4, b"data").bytes(5, b"sig");
        let reply = world.invoke(WIDEVINE_TRUSTLET, cmd::GENERIC_VERIFY, &w.finish());
        assert!(reply.is_err(), "closed session must not verify as false: {reply:?}");
    }
}
