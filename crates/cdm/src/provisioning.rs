//! Provisioning: installing the Device RSA Key.
//!
//! The keybox only bootstraps trust. To sign license requests the CDM
//! needs a 2048-bit Device RSA Key, which the Provisioning Server installs
//! on first use: the CDM sends a CMAC-authenticated request carrying its
//! device id, and the server answers with the private key AES-CBC-wrapped
//! under a keybox-derived provisioning key. An attacker holding the keybox
//! can therefore unwrap the provisioning response too — the exact step
//! the paper's PoC performs after the memory scan.
//!
//! This module hosts the *serialization* of RSA keys and the shared
//! wrap/unwrap routines used by both the CDM core and the (simulated)
//! provisioning server; the request/response message types live in
//! [`crate::messages`].

use wideleak_bigint::BigUint;
use wideleak_crypto::hmac::Hmac;
use wideleak_crypto::modes::{cbc_decrypt_padded, cbc_encrypt_padded};
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_crypto::sha256::Sha256;
use wideleak_crypto::{aes::Aes128, ct::ct_eq};

use crate::ladder::derive_provisioning_keys;
use crate::messages::ProvisioningResponse;
use crate::wire::{TlvReader, TlvWriter};
use crate::CdmError;

/// Serializes an RSA private key to the provisioning blob format
/// (`n`, `e`, `d`, `p`, `q` as TLV fields).
pub fn serialize_rsa_key(key: &RsaPrivateKey) -> Vec<u8> {
    let (p, q) = key.factors();
    let mut w = TlvWriter::new();
    w.bytes(0x0501, &key.public_key().modulus().to_bytes_be())
        .bytes(0x0502, &key.public_key().exponent().to_bytes_be())
        .bytes(0x0503, &key.private_exponent().to_bytes_be())
        .bytes(0x0504, &p.to_bytes_be())
        .bytes(0x0505, &q.to_bytes_be());
    w.finish()
}

/// Parses an RSA private key from the provisioning blob format.
///
/// # Errors
///
/// Returns [`CdmError::BadMessage`] on decode failure or inconsistent key
/// components.
pub fn deserialize_rsa_key(blob: &[u8]) -> Result<RsaPrivateKey, CdmError> {
    let r = TlvReader::parse(blob)?;
    let n = BigUint::from_bytes_be(r.require(0x0501)?);
    let e = BigUint::from_bytes_be(r.require(0x0502)?);
    let d = BigUint::from_bytes_be(r.require(0x0503)?);
    let p = BigUint::from_bytes_be(r.require(0x0504)?);
    let q = BigUint::from_bytes_be(r.require(0x0505)?);
    RsaPrivateKey::from_components(n, e, d, p, q)
        .map_err(|_| CdmError::BadMessage { reason: "inconsistent RSA key components" })
}

/// Server side: wraps an RSA key into a provisioning response for the
/// device owning `device_id`/`device_key`.
pub fn wrap_rsa_key(
    device_key: &[u8; 16],
    device_id: &[u8],
    nonce: [u8; 16],
    iv: [u8; 16],
    key: &RsaPrivateKey,
) -> ProvisioningResponse {
    let (enc_key, mac_key) = derive_provisioning_keys(device_key, device_id);
    wrap_serialized_rsa_key(&enc_key, &mac_key, nonce, iv, &serialize_rsa_key(key))
}

/// Server side, pre-derived variant: wraps an already-serialized RSA key
/// blob under provisioning keys the caller derived (and may have cached —
/// key derivation and blob serialization are nonce-independent, while the
/// IV, ciphertext and signature must be recomputed per request).
pub fn wrap_serialized_rsa_key(
    enc_key: &[u8; 16],
    mac_key: &[u8; 32],
    nonce: [u8; 16],
    iv: [u8; 16],
    blob: &[u8],
) -> ProvisioningResponse {
    let encrypted_rsa_key = cbc_encrypt_padded(&Aes128::new(enc_key), &iv, blob);
    let mut resp = ProvisioningResponse { iv, encrypted_rsa_key, nonce, signature: Vec::new() };
    resp.signature = Hmac::<Sha256>::mac(mac_key, &resp.body_bytes());
    resp
}

/// Client side (CDM core *and* attack PoC): verifies and unwraps a
/// provisioning response with keybox material.
///
/// # Errors
///
/// Returns [`CdmError::BadSignature`] when the MAC fails and
/// [`CdmError::BadMessage`] on decryption or decoding failures.
pub fn unwrap_rsa_key(
    device_key: &[u8; 16],
    device_id: &[u8],
    expected_nonce: Option<[u8; 16]>,
    response: &ProvisioningResponse,
) -> Result<RsaPrivateKey, CdmError> {
    let (enc_key, mac_key) = derive_provisioning_keys(device_key, device_id);
    let expected_sig = Hmac::<Sha256>::mac(&mac_key, &response.body_bytes());
    if !ct_eq(&expected_sig, &response.signature) {
        return Err(CdmError::BadSignature);
    }
    if let Some(nonce) = expected_nonce {
        if nonce != response.nonce {
            return Err(CdmError::BadMessage { reason: "provisioning nonce mismatch" });
        }
    }
    let blob =
        cbc_decrypt_padded(&Aes128::new(&enc_key), &response.iv, &response.encrypted_rsa_key)
            .map_err(|_| CdmError::BadMessage { reason: "provisioning blob decryption failed" })?;
    deserialize_rsa_key(&blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use wideleak_crypto::rng::seeded_rng;

    fn test_key() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| RsaPrivateKey::generate(&mut seeded_rng(1234), 512))
    }

    #[test]
    fn rsa_key_serialization_round_trip() {
        let key = test_key();
        let blob = serialize_rsa_key(key);
        let parsed = deserialize_rsa_key(&blob).unwrap();
        assert_eq!(parsed.public_key(), key.public_key());
        let sig = parsed.sign_pkcs1v15_sha256(b"probe").unwrap();
        key.public_key().verify_pkcs1v15_sha256(b"probe", &sig).unwrap();
    }

    #[test]
    fn corrupted_blob_rejected() {
        let mut blob = serialize_rsa_key(test_key());
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        assert!(deserialize_rsa_key(&blob).is_err());
    }

    #[test]
    fn wrap_unwrap_round_trip() {
        let device_key = [0x11u8; 16];
        let device_id = b"provision-me";
        let resp = wrap_rsa_key(&device_key, device_id, [7; 16], [8; 16], test_key());
        let key = unwrap_rsa_key(&device_key, device_id, Some([7; 16]), &resp).unwrap();
        assert_eq!(key.public_key(), test_key().public_key());
    }

    #[test]
    fn wrong_device_key_fails_mac() {
        let resp = wrap_rsa_key(&[1; 16], b"dev", [0; 16], [0; 16], test_key());
        assert_eq!(unwrap_rsa_key(&[2; 16], b"dev", None, &resp), Err(CdmError::BadSignature));
    }

    #[test]
    fn wrong_device_id_fails_mac() {
        let resp = wrap_rsa_key(&[1; 16], b"dev-a", [0; 16], [0; 16], test_key());
        assert_eq!(unwrap_rsa_key(&[1; 16], b"dev-b", None, &resp), Err(CdmError::BadSignature));
    }

    #[test]
    fn nonce_mismatch_rejected() {
        let resp = wrap_rsa_key(&[1; 16], b"dev", [5; 16], [0; 16], test_key());
        assert!(matches!(
            unwrap_rsa_key(&[1; 16], b"dev", Some([6; 16]), &resp),
            Err(CdmError::BadMessage { .. })
        ));
        // Without nonce checking (the attack path) it succeeds.
        assert!(unwrap_rsa_key(&[1; 16], b"dev", None, &resp).is_ok());
    }

    #[test]
    fn tampered_ciphertext_fails_mac_first() {
        let mut resp = wrap_rsa_key(&[1; 16], b"dev", [0; 16], [0; 16], test_key());
        resp.encrypted_rsa_key[10] ^= 1;
        assert_eq!(unwrap_rsa_key(&[1; 16], b"dev", None, &resp), Err(CdmError::BadSignature));
    }
}
