//! CDM session state and the session-level license logic.
//!
//! A session spans one `openSession()`–`closeSession()` pair in the
//! Android DRM API: it owns a nonce, the derived [`SessionKeys`] after a
//! license loads, and the unwrapped content keys. This module contains the
//! *pure* logic; where it executes (normal world for L3, TEE trustlet for
//! L1) is decided by [`crate::oemcrypto`].

use std::collections::HashMap;

use wideleak_bmff::types::KeyId;
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::ct::ct_eq;
use wideleak_crypto::hmac::Hmac;
use wideleak_crypto::modes::cbc_decrypt_padded;
use wideleak_crypto::rsa::RsaPrivateKey;
use wideleak_crypto::sha256::Sha256;
use wideleak_device::catalog::SecurityLevel;

use crate::ladder::{derive_session_keys, SessionKeys};
use crate::messages::{KeyControl, LicenseResponse};
use crate::CdmError;

/// A loaded content key with its control block.
#[derive(Clone)]
pub struct LoadedKey {
    /// The 16-byte content key.
    pub key: [u8; 16],
    /// Usage restrictions.
    pub control: KeyControl,
    /// CDM logical-clock timestamp when the key loaded.
    pub loaded_at: u64,
}

impl std::fmt::Debug for LoadedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LoadedKey(<redacted>, control: {:?})", self.control)
    }
}

/// Per-session decrypt-path cache: derived AES key schedules keyed by
/// content key ID plus bounded keystream prefixes for the `cenc` CTR
/// scheme keyed by `(key id, sample IV)`.
///
/// Populated only when the owning core enables its decrypt cache, and
/// cleared whenever a license (re)loads so a rotated key can never be
/// served from a stale schedule. Dropped wholesale with the session.
#[derive(Default)]
pub struct DecryptCache {
    ciphers: HashMap<KeyId, Aes128>,
    keystreams: HashMap<(KeyId, [u8; 8]), Vec<u8>>,
}

impl DecryptCache {
    /// Cap on distinct keystream prefixes retained per session.
    pub const MAX_KEYSTREAM_ENTRIES: usize = 32;
    /// Cap on the length of one retained keystream prefix.
    pub const MAX_KEYSTREAM_BYTES: usize = 16 * 1024;

    /// Returns a clone of the cached key schedule for `kid`, deriving and
    /// caching it from `key` on miss. The boolean is true on a hit.
    pub fn cipher(&mut self, kid: &KeyId, key: &[u8; 16]) -> (Aes128, bool) {
        if let Some(cipher) = self.ciphers.get(kid) {
            return (cipher.clone(), true);
        }
        let cipher = Aes128::new(key);
        self.ciphers.insert(*kid, cipher.clone());
        (cipher, false)
    }

    /// The cached keystream prefix for `(kid, iv)` when it covers at
    /// least `needed` bytes.
    pub fn keystream(&self, kid: &KeyId, iv: [u8; 8], needed: usize) -> Option<Vec<u8>> {
        self.keystreams.get(&(*kid, iv)).filter(|ks| ks.len() >= needed).cloned()
    }

    /// Stores a keystream prefix, subject to the per-session bounds.
    pub fn store_keystream(&mut self, kid: &KeyId, iv: [u8; 8], keystream: Vec<u8>) {
        if keystream.len() > Self::MAX_KEYSTREAM_BYTES {
            return;
        }
        if self.keystreams.len() >= Self::MAX_KEYSTREAM_ENTRIES
            && !self.keystreams.contains_key(&(*kid, iv))
        {
            return;
        }
        self.keystreams.insert((*kid, iv), keystream);
    }

    /// Drops everything (called when a license loads new keys).
    pub fn clear(&mut self) {
        self.ciphers.clear();
        self.keystreams.clear();
    }

    /// Number of cached key schedules.
    #[must_use]
    pub fn cipher_count(&self) -> usize {
        self.ciphers.len()
    }

    /// Number of cached keystream prefixes.
    #[must_use]
    pub fn keystream_count(&self) -> usize {
        self.keystreams.len()
    }
}

impl std::fmt::Debug for DecryptCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DecryptCache(ciphers: {}, keystreams: {})",
            self.ciphers.len(),
            self.keystreams.len()
        )
    }
}

/// One open CDM session.
#[derive(Debug, Default)]
pub struct Session {
    /// The nonce bound into this session's license request.
    pub nonce: [u8; 16],
    /// Derived keys, present after a license response loaded.
    pub keys: Option<SessionKeys>,
    /// Content keys unwrapped from the license, by key ID.
    pub content_keys: HashMap<KeyId, LoadedKey>,
    /// Hot-path cache, only populated when the core enables it.
    pub decrypt_cache: DecryptCache,
}

impl Session {
    /// Creates a session with the given nonce.
    pub fn new(nonce: [u8; 16]) -> Self {
        Session {
            nonce,
            keys: None,
            content_keys: HashMap::new(),
            decrypt_cache: DecryptCache::default(),
        }
    }

    /// Loads a license response into the session: RSA-OAEP-unwraps the
    /// session key, runs the derivation ladder, verifies the response MAC,
    /// and unwraps every content key whose control block this device
    /// satisfies.
    ///
    /// Returns the key IDs actually loaded.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::BadSignature`] when the response MAC fails,
    /// [`CdmError::Crypto`] when the session key fails to unwrap, or
    /// [`CdmError::BadMessage`] when a content key blob is malformed.
    pub fn load_license(
        &mut self,
        rsa_key: &RsaPrivateKey,
        device_level: SecurityLevel,
        now: u64,
        response: &LicenseResponse,
    ) -> Result<Vec<KeyId>, CdmError> {
        let session_key_bytes = rsa_key.decrypt_oaep(&response.encrypted_session_key)?;
        let session_key: [u8; 16] = session_key_bytes
            .as_slice()
            .try_into()
            .map_err(|_| CdmError::BadMessage { reason: "session key must be 16 bytes" })?;

        let keys = derive_session_keys(&session_key, &response.enc_context, &response.mac_context);

        let expected = Hmac::<Sha256>::mac(&keys.mac_key_server, &response.body_bytes());
        if !ct_eq(&expected, &response.signature) {
            return Err(CdmError::BadSignature);
        }
        // Anti-replay: the response must echo this session's nonce, so a
        // license captured for one session cannot be replayed into another.
        if response.nonce != self.nonce {
            return Err(CdmError::BadMessage { reason: "license nonce mismatch" });
        }

        // New keys invalidate anything derived from the old ones.
        self.decrypt_cache.clear();

        let cipher = Aes128::new(&keys.enc_key);
        let mut loaded = Vec::new();
        for entry in &response.key_entries {
            // Defense in depth: never load a key the device's level is not
            // entitled to, even if a server misbehaves.
            if device_level > entry.control.min_security_level {
                continue;
            }
            let raw = cbc_decrypt_padded(&cipher, &entry.iv, &entry.encrypted_key)
                .map_err(|_| CdmError::BadMessage { reason: "content key unwrap failed" })?;
            let key: [u8; 16] = raw
                .as_slice()
                .try_into()
                .map_err(|_| CdmError::BadMessage { reason: "content key must be 16 bytes" })?;
            self.content_keys
                .insert(entry.kid, LoadedKey { key, control: entry.control, loaded_at: now });
            loaded.push(entry.kid);
        }
        self.keys = Some(keys);
        Ok(loaded)
    }

    /// Looks up a loaded content key, enforcing its license duration
    /// against the CDM clock.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] for unknown keys and
    /// [`CdmError::KeyExpired`] once the control block's duration lapses.
    pub fn content_key(&self, kid: &KeyId) -> Result<&LoadedKey, CdmError> {
        self.content_keys.get(kid).ok_or(CdmError::KeyNotLoaded)
    }

    /// Like [`Session::content_key`] but expiry-checked at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`CdmError::KeyNotLoaded`] or [`CdmError::KeyExpired`].
    pub fn content_key_at(&self, kid: &KeyId, now: u64) -> Result<&LoadedKey, CdmError> {
        let key = self.content_key(kid)?;
        let d = key.control.duration_seconds as u64;
        if d != 0 && now >= key.loaded_at + d {
            return Err(CdmError::KeyExpired);
        }
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::KeyEntry;
    use std::sync::OnceLock;
    use wideleak_crypto::modes::cbc_encrypt_padded;
    use wideleak_crypto::rng::seeded_rng;

    fn rsa() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| RsaPrivateKey::generate(&mut seeded_rng(77), 768))
    }

    /// Builds a valid license response the way the license server does.
    fn make_response(
        session_key: [u8; 16],
        entries: &[(KeyId, [u8; 16], KeyControl)],
    ) -> LicenseResponse {
        let enc_context = b"enc-ctx".to_vec();
        let mac_context = b"mac-ctx".to_vec();
        let keys = derive_session_keys(&session_key, &enc_context, &mac_context);
        let cipher = Aes128::new(&keys.enc_key);
        let key_entries = entries
            .iter()
            .map(|(kid, key, control)| {
                let iv = [0x42u8; 16];
                KeyEntry {
                    kid: *kid,
                    iv,
                    encrypted_key: cbc_encrypt_padded(&cipher, &iv, key),
                    control: *control,
                }
            })
            .collect();
        let encrypted_session_key =
            rsa().public_key().encrypt_oaep(&mut seeded_rng(5), &session_key).unwrap();
        let mut resp = LicenseResponse {
            nonce: [0; 16],
            encrypted_session_key,
            enc_context,
            mac_context,
            key_entries,
            signature: Vec::new(),
        };
        resp.signature = Hmac::<Sha256>::mac(&keys.mac_key_server, &resp.body_bytes());
        resp
    }

    fn control(level: SecurityLevel) -> KeyControl {
        KeyControl { max_resolution_height: 540, min_security_level: level, duration_seconds: 0 }
    }

    #[test]
    fn load_license_recovers_content_keys() {
        let kid = KeyId([1; 16]);
        let content_key = [0xAB; 16];
        let resp = make_response([9; 16], &[(kid, content_key, control(SecurityLevel::L3))]);
        let mut s = Session::new([0; 16]);
        let loaded = s.load_license(rsa(), SecurityLevel::L3, 0, &resp).unwrap();
        assert_eq!(loaded, vec![kid]);
        assert_eq!(s.content_key(&kid).unwrap().key, content_key);
        assert!(s.keys.is_some());
    }

    #[test]
    fn security_level_gating() {
        let l3_kid = KeyId([1; 16]);
        let l1_kid = KeyId([2; 16]);
        let resp = make_response(
            [9; 16],
            &[
                (l3_kid, [1; 16], control(SecurityLevel::L3)),
                (l1_kid, [2; 16], control(SecurityLevel::L1)),
            ],
        );
        // An L3 device only loads the L3-allowed key.
        let mut s = Session::new([0; 16]);
        let loaded = s.load_license(rsa(), SecurityLevel::L3, 0, &resp).unwrap();
        assert_eq!(loaded, vec![l3_kid]);
        assert!(matches!(s.content_key(&l1_kid), Err(CdmError::KeyNotLoaded)));
        // An L1 device loads both.
        let mut s1 = Session::new([0; 16]);
        let loaded1 = s1.load_license(rsa(), SecurityLevel::L1, 0, &resp).unwrap();
        assert_eq!(loaded1.len(), 2);
    }

    #[test]
    fn tampered_response_rejected() {
        let resp = make_response([9; 16], &[(KeyId([1; 16]), [1; 16], control(SecurityLevel::L3))]);
        let mut tampered = resp.clone();
        tampered.enc_context = b"evil-ctx".to_vec();
        let mut s = Session::new([0; 16]);
        assert_eq!(
            s.load_license(rsa(), SecurityLevel::L3, 0, &tampered),
            Err(CdmError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut resp =
            make_response([9; 16], &[(KeyId([1; 16]), [1; 16], control(SecurityLevel::L3))]);
        resp.signature[0] ^= 1;
        let mut s = Session::new([0; 16]);
        assert!(s.load_license(rsa(), SecurityLevel::L3, 0, &resp).is_err());
    }

    #[test]
    fn corrupted_session_key_rejected() {
        let mut resp =
            make_response([9; 16], &[(KeyId([1; 16]), [1; 16], control(SecurityLevel::L3))]);
        resp.encrypted_session_key[5] ^= 0xF0;
        let mut s = Session::new([0; 16]);
        assert!(matches!(
            s.load_license(rsa(), SecurityLevel::L3, 0, &resp),
            Err(CdmError::Crypto(_))
        ));
    }

    #[test]
    fn missing_key_lookup_fails() {
        let s = Session::new([0; 16]);
        assert!(matches!(s.content_key(&KeyId([1; 16])), Err(CdmError::KeyNotLoaded)));
    }

    #[test]
    fn decrypt_cache_cleared_when_a_license_loads() {
        let kid = KeyId([1; 16]);
        let resp = make_response([9; 16], &[(kid, [0xAB; 16], control(SecurityLevel::L3))]);
        let mut s = Session::new([0; 16]);
        s.decrypt_cache.cipher(&kid, &[0x11; 16]);
        s.decrypt_cache.store_keystream(&kid, [7; 8], vec![1, 2, 3]);
        s.load_license(rsa(), SecurityLevel::L3, 0, &resp).unwrap();
        assert_eq!(s.decrypt_cache.cipher_count(), 0, "rotated keys must not be served stale");
        assert_eq!(s.decrypt_cache.keystream_count(), 0);
    }

    #[test]
    fn decrypt_cache_is_bounded() {
        let mut cache = DecryptCache::default();
        let kid = KeyId([3; 16]);
        cache.store_keystream(&kid, [0; 8], vec![0; DecryptCache::MAX_KEYSTREAM_BYTES + 1]);
        assert_eq!(cache.keystream_count(), 0, "oversized prefixes are not retained");
        for i in 0..2 * DecryptCache::MAX_KEYSTREAM_ENTRIES {
            cache.store_keystream(&kid, [i as u8; 8], vec![0; 16]);
        }
        assert_eq!(cache.keystream_count(), DecryptCache::MAX_KEYSTREAM_ENTRIES);
        // Existing entries can still be refreshed at the cap.
        cache.store_keystream(&kid, [0; 8], vec![9; 32]);
        assert_eq!(cache.keystream(&kid, [0; 8], 20).unwrap(), vec![9; 32]);
        assert!(cache.keystream(&kid, [0; 8], 64).is_none(), "short prefixes do not satisfy");
    }

    #[test]
    fn loaded_key_debug_redacts() {
        let lk = LoadedKey { key: [0xCD; 16], control: control(SecurityLevel::L3), loaded_at: 0 };
        let s = format!("{lk:?}");
        assert!(s.contains("redacted"));
        assert!(!s.to_lowercase().contains("cd, "));
    }
}
