//! A tag-length-value (TLV) wire codec.
//!
//! The real Widevine protocol speaks protobuf; this workspace uses a
//! purpose-built TLV format with the same role: an opaque, binary,
//! length-delimited message encoding that the monitor can only interpret
//! by hooking the functions that produce and consume it. Tags are `u16`,
//! lengths `u32`, values raw bytes; nested messages are just values.

use std::fmt;

/// Errors from TLV decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended inside a field.
    Truncated,
    /// A required tag was absent.
    MissingField {
        /// The missing tag.
        tag: u16,
    },
    /// A field's value had the wrong size or shape.
    BadField {
        /// The offending tag.
        tag: u16,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated TLV stream"),
            WireError::MissingField { tag } => write!(f, "missing required field {tag:#06x}"),
            WireError::BadField { tag } => write!(f, "malformed field {tag:#06x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Builds a TLV byte stream.
#[derive(Debug, Default, Clone)]
pub struct TlvWriter {
    buf: Vec<u8>,
}

impl TlvWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw bytes field.
    pub fn bytes(&mut self, tag: u16, value: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&tag.to_be_bytes());
        self.buf.extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(value);
        self
    }

    /// Appends a u32 field.
    pub fn u32(&mut self, tag: u16, value: u32) -> &mut Self {
        self.bytes(tag, &value.to_be_bytes())
    }

    /// Appends a u64 field.
    pub fn u64(&mut self, tag: u16, value: u64) -> &mut Self {
        self.bytes(tag, &value.to_be_bytes())
    }

    /// Appends a UTF-8 string field.
    pub fn string(&mut self, tag: u16, value: &str) -> &mut Self {
        self.bytes(tag, value.as_bytes())
    }

    /// Finishes and returns the stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (without consuming the writer).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// One decoded field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field<'a> {
    /// The tag.
    pub tag: u16,
    /// The raw value.
    pub value: &'a [u8],
}

/// Decodes a TLV byte stream into fields, with typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlvReader<'a> {
    fields: Vec<Field<'a>>,
}

impl<'a> TlvReader<'a> {
    /// Parses the whole stream up front.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the stream ends mid-field.
    pub fn parse(mut input: &'a [u8]) -> Result<Self, WireError> {
        let mut fields = Vec::new();
        while !input.is_empty() {
            if input.len() < 6 {
                return Err(WireError::Truncated);
            }
            let tag = u16::from_be_bytes(input[..2].try_into().expect("2 bytes"));
            let len = u32::from_be_bytes(input[2..6].try_into().expect("4 bytes")) as usize;
            if input.len() < 6 + len {
                return Err(WireError::Truncated);
            }
            fields.push(Field { tag, value: &input[6..6 + len] });
            input = &input[6 + len..];
        }
        Ok(TlvReader { fields })
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field<'a>] {
        &self.fields
    }

    /// First value with the given tag.
    pub fn get(&self, tag: u16) -> Option<&'a [u8]> {
        self.fields.iter().find(|f| f.tag == tag).map(|f| f.value)
    }

    /// All values with the given tag (repeated fields).
    pub fn get_all(&self, tag: u16) -> Vec<&'a [u8]> {
        self.fields.iter().filter(|f| f.tag == tag).map(|f| f.value).collect()
    }

    /// Required bytes field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MissingField`].
    pub fn require(&self, tag: u16) -> Result<&'a [u8], WireError> {
        self.get(tag).ok_or(WireError::MissingField { tag })
    }

    /// Required fixed-size field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MissingField`] or [`WireError::BadField`].
    pub fn require_array<const N: usize>(&self, tag: u16) -> Result<[u8; N], WireError> {
        self.require(tag)?.try_into().map_err(|_| WireError::BadField { tag })
    }

    /// Required u32 field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MissingField`] or [`WireError::BadField`].
    pub fn require_u32(&self, tag: u16) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.require_array(tag)?))
    }

    /// Required u64 field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MissingField`] or [`WireError::BadField`].
    pub fn require_u64(&self, tag: u16) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.require_array(tag)?))
    }

    /// Required UTF-8 string field.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::MissingField`] or [`WireError::BadField`] when
    /// the bytes are not valid UTF-8.
    pub fn require_string(&self, tag: u16) -> Result<String, WireError> {
        String::from_utf8(self.require(tag)?.to_vec()).map_err(|_| WireError::BadField { tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = TlvWriter::new();
        w.bytes(0x0001, b"hello").u32(0x0002, 42).string(0x0003, "widevine").u64(0x0004, 1 << 40);
        let bytes = w.finish();
        let r = TlvReader::parse(&bytes).unwrap();
        assert_eq!(r.require(0x0001).unwrap(), b"hello");
        assert_eq!(r.require_u32(0x0002).unwrap(), 42);
        assert_eq!(r.require_string(0x0003).unwrap(), "widevine");
        assert_eq!(r.require_u64(0x0004).unwrap(), 1 << 40);
    }

    #[test]
    fn repeated_fields() {
        let mut w = TlvWriter::new();
        w.bytes(7, b"a").bytes(7, b"b").bytes(8, b"c");
        let bytes = w.finish();
        let r = TlvReader::parse(&bytes).unwrap();
        assert_eq!(r.get_all(7), vec![&b"a"[..], b"b"]);
        assert_eq!(r.get(7), Some(&b"a"[..]));
        assert_eq!(r.fields().len(), 3);
    }

    #[test]
    fn missing_field_error() {
        let r = TlvReader::parse(&[]).unwrap();
        assert_eq!(r.require(5), Err(WireError::MissingField { tag: 5 }));
        assert_eq!(r.get(5), None);
        assert!(r.get_all(5).is_empty());
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut w = TlvWriter::new();
        w.bytes(1, b"abcdef");
        let bytes = w.finish();
        for cut in 1..bytes.len() {
            assert_eq!(TlvReader::parse(&bytes[..cut]), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_size_scalar_rejected() {
        let mut w = TlvWriter::new();
        w.bytes(1, b"abc"); // 3 bytes cannot be a u32
        let bytes = w.finish();
        let r = TlvReader::parse(&bytes).unwrap();
        assert_eq!(r.require_u32(1), Err(WireError::BadField { tag: 1 }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = TlvWriter::new();
        w.bytes(1, &[0xff, 0xfe]);
        let bytes = w.finish();
        let r = TlvReader::parse(&bytes).unwrap();
        assert_eq!(r.require_string(1), Err(WireError::BadField { tag: 1 }));
    }

    #[test]
    fn empty_values_allowed() {
        let mut w = TlvWriter::new();
        w.bytes(1, b"");
        let bytes = w.finish();
        let r = TlvReader::parse(&bytes).unwrap();
        assert_eq!(r.require(1).unwrap(), b"");
    }

    #[test]
    fn nested_messages() {
        let mut inner = TlvWriter::new();
        inner.u32(1, 7);
        let mut outer = TlvWriter::new();
        outer.bytes(100, inner.as_slice());
        let bytes = outer.finish();
        let outer_r = TlvReader::parse(&bytes).unwrap();
        let inner_r = TlvReader::parse(outer_r.require(100).unwrap()).unwrap();
        assert_eq!(inner_r.require_u32(1).unwrap(), 7);
    }

    #[test]
    fn error_display() {
        assert!(WireError::MissingField { tag: 0x42 }.to_string().contains("0x0042"));
    }
}
