//! The `cbcs` scheme: AES-128-CBC pattern encryption.
//!
//! Per ISO/IEC 23001-7 the `cbcs` scheme encrypts each protected subsample
//! region with a repeating pattern of `crypt` encrypted blocks followed by
//! `skip` clear blocks (1:9 for video). The CBC chain restarts with the
//! constant IV at the start of every subsample region, and chains across
//! the pattern's encrypted blocks only. A trailing partial block is always
//! left in the clear.

use wideleak_bmff::types::{CryptPattern, Subsample};
use wideleak_crypto::aes::{Aes128, BLOCK_LEN};

use crate::keys::ContentKey;
use crate::{validate_subsamples, CencError};

/// Direction of the pattern transform.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Encrypt,
    Decrypt,
}

/// Applies CBC pattern crypto to one protected region in place.
fn xcrypt_region(
    cipher: &Aes128,
    iv: &[u8; BLOCK_LEN],
    pattern: CryptPattern,
    region: &mut [u8],
    dir: Dir,
) {
    let crypt = pattern.crypt_blocks.max(1) as usize;
    let skip = pattern.skip_blocks as usize;
    let period = crypt + skip;

    let full_blocks = region.len() / BLOCK_LEN;
    let mut prev = *iv;
    for block_idx in 0..full_blocks {
        let in_pattern = block_idx % period;
        if in_pattern >= crypt {
            continue; // skip block, stays clear
        }
        let start = block_idx * BLOCK_LEN;
        let block: &mut [u8; BLOCK_LEN] =
            (&mut region[start..start + BLOCK_LEN]).try_into().expect("slice is block sized");
        match dir {
            Dir::Encrypt => {
                for i in 0..BLOCK_LEN {
                    block[i] ^= prev[i];
                }
                cipher.encrypt_block(block);
                prev = *block;
            }
            Dir::Decrypt => {
                let ct = *block;
                cipher.decrypt_block(block);
                for i in 0..BLOCK_LEN {
                    block[i] ^= prev[i];
                }
                prev = ct;
            }
        }
    }
    // Trailing partial block stays clear by construction.
}

fn xcrypt_sample(
    key: &ContentKey,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &[u8],
    subsamples: &[Subsample],
    dir: Dir,
) -> Result<Vec<u8>, CencError> {
    let cipher = key.cipher();
    let mut out = sample.to_vec();
    xcrypt_sample_in_place(&cipher, constant_iv, pattern, &mut out, subsamples, dir)?;
    Ok(out)
}

fn xcrypt_sample_in_place(
    cipher: &Aes128,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &mut [u8],
    subsamples: &[Subsample],
    dir: Dir,
) -> Result<(), CencError> {
    validate_subsamples(subsamples, sample.len())?;
    if subsamples.is_empty() {
        xcrypt_region(cipher, &constant_iv, pattern, sample, dir);
        return Ok(());
    }
    let mut offset = 0usize;
    for sub in subsamples {
        offset += sub.clear_bytes as usize;
        let end = offset + sub.encrypted_bytes as usize;
        xcrypt_region(cipher, &constant_iv, pattern, &mut sample[offset..end], dir);
        offset = end;
    }
    Ok(())
}

/// Encrypts one sample in place under the `cbcs` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn encrypt_sample_in_place(
    key: &ContentKey,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    let cipher = key.cipher();
    xcrypt_sample_in_place(&cipher, constant_iv, pattern, sample, subsamples, Dir::Encrypt)
}

/// Decrypts one sample in place under the `cbcs` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn decrypt_sample_in_place(
    key: &ContentKey,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    let cipher = key.cipher();
    xcrypt_sample_in_place(&cipher, constant_iv, pattern, sample, subsamples, Dir::Decrypt)
}

/// Encrypts one sample in place using a caller-supplied AES key schedule,
/// so the packager can expand the key once per segment.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn encrypt_sample_in_place_with_cipher(
    cipher: &Aes128,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    xcrypt_sample_in_place(cipher, constant_iv, pattern, sample, subsamples, Dir::Encrypt)
}

/// Decrypts one sample in place using a caller-supplied AES key schedule,
/// so the schedule can be derived once per session and reused per sample.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn decrypt_sample_in_place_with_cipher(
    cipher: &Aes128,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    xcrypt_sample_in_place(cipher, constant_iv, pattern, sample, subsamples, Dir::Decrypt)
}

/// Encrypts one sample under the `cbcs` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn encrypt_sample(
    key: &ContentKey,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    plaintext: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CencError> {
    xcrypt_sample(key, constant_iv, pattern, plaintext, subsamples, Dir::Encrypt)
}

/// Decrypts one sample under the `cbcs` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn decrypt_sample(
    key: &ContentKey,
    constant_iv: [u8; BLOCK_LEN],
    pattern: CryptPattern,
    ciphertext: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CencError> {
    xcrypt_sample(key, constant_iv, pattern, ciphertext, subsamples, Dir::Decrypt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ContentKey {
        ContentKey([0x17; 16])
    }

    fn video_pattern() -> CryptPattern {
        CryptPattern { crypt_blocks: 1, skip_blocks: 9 }
    }

    fn full_pattern() -> CryptPattern {
        CryptPattern { crypt_blocks: 1, skip_blocks: 0 }
    }

    #[test]
    fn round_trip_whole_sample() {
        let pt: Vec<u8> = (0..400).map(|i| (i % 251) as u8).collect();
        let ct = encrypt_sample(&key(), [1; 16], video_pattern(), &pt, &[]).unwrap();
        assert_ne!(ct, pt);
        assert_eq!(decrypt_sample(&key(), [1; 16], video_pattern(), &ct, &[]).unwrap(), pt);
    }

    #[test]
    fn one_nine_pattern_leaves_skip_blocks_clear() {
        let pt = vec![0xAA; 16 * 12];
        let ct = encrypt_sample(&key(), [0; 16], video_pattern(), &pt, &[]).unwrap();
        // Block 0 encrypted; blocks 1..=9 clear; block 10 encrypted again.
        assert_ne!(&ct[..16], &pt[..16]);
        for b in 1..10 {
            assert_eq!(&ct[b * 16..(b + 1) * 16], &pt[b * 16..(b + 1) * 16], "block {b}");
        }
        assert_ne!(&ct[160..176], &pt[160..176]);
    }

    #[test]
    fn trailing_partial_block_stays_clear() {
        let pt = vec![0x55; 20];
        let ct = encrypt_sample(&key(), [0; 16], full_pattern(), &pt, &[]).unwrap();
        assert_ne!(&ct[..16], &pt[..16]);
        assert_eq!(&ct[16..], &pt[16..], "partial final block untouched");
    }

    #[test]
    fn short_sample_entirely_clear() {
        let pt = vec![0x77; 10];
        let ct = encrypt_sample(&key(), [0; 16], full_pattern(), &pt, &[]).unwrap();
        assert_eq!(ct, pt);
    }

    #[test]
    fn subsample_regions_restart_iv() {
        // Identical encrypted regions in different subsamples must encrypt
        // identically because the IV restarts per region.
        let block = vec![0xBB; 32];
        let mut sample = Vec::new();
        sample.extend_from_slice(&block);
        sample.extend_from_slice(b"CLEAR!"); // 6 clear bytes
        sample.extend_from_slice(&block);
        let subs = [
            Subsample { clear_bytes: 0, encrypted_bytes: 32 },
            Subsample { clear_bytes: 6, encrypted_bytes: 32 },
        ];
        let ct = encrypt_sample(&key(), [9; 16], full_pattern(), &sample, &subs).unwrap();
        assert_eq!(&ct[..32], &ct[38..70], "regions with equal plaintext match");
        let pt = decrypt_sample(&key(), [9; 16], full_pattern(), &ct, &subs).unwrap();
        assert_eq!(pt, sample);
    }

    #[test]
    fn round_trip_with_subsamples_and_pattern() {
        let pt: Vec<u8> = (0..1000).map(|i| (i * 7 % 256) as u8).collect();
        let subs = [
            Subsample { clear_bytes: 37, encrypted_bytes: 400 },
            Subsample { clear_bytes: 13, encrypted_bytes: 550 },
        ];
        let ct = encrypt_sample(&key(), [4; 16], video_pattern(), &pt, &subs).unwrap();
        assert_eq!(&ct[..37], &pt[..37]);
        assert_eq!(decrypt_sample(&key(), [4; 16], video_pattern(), &ct, &subs).unwrap(), pt);
    }

    #[test]
    fn cbc_chaining_within_region() {
        // With a full pattern, equal plaintext blocks inside one region must
        // produce different ciphertext blocks (CBC property).
        let pt = vec![0xCC; 48];
        let ct = encrypt_sample(&key(), [2; 16], full_pattern(), &pt, &[]).unwrap();
        assert_ne!(&ct[..16], &ct[16..32]);
        assert_ne!(&ct[16..32], &ct[32..48]);
    }

    #[test]
    fn mismatched_map_rejected() {
        let subs = [Subsample { clear_bytes: 1, encrypted_bytes: 1 }];
        assert!(encrypt_sample(&key(), [0; 16], full_pattern(), &[0u8; 5], &subs).is_err());
    }

    #[test]
    fn in_place_matches_allocating_variant() {
        let pt: Vec<u8> = (0..500).map(|i| (i * 11 % 256) as u8).collect();
        let subs = [
            Subsample { clear_bytes: 20, encrypted_bytes: 230 },
            Subsample { clear_bytes: 0, encrypted_bytes: 250 },
        ];
        for pattern in [video_pattern(), full_pattern()] {
            let expected = encrypt_sample(&key(), [6; 16], pattern, &pt, &subs).unwrap();
            let mut buf = pt.clone();
            encrypt_sample_in_place(&key(), [6; 16], pattern, &mut buf, &subs).unwrap();
            assert_eq!(buf, expected);
            decrypt_sample_in_place(&key(), [6; 16], pattern, &mut buf, &subs).unwrap();
            assert_eq!(buf, pt);
            let cipher = Aes128::new(&key().0);
            let mut buf2 = expected.clone();
            decrypt_sample_in_place_with_cipher(&cipher, [6; 16], pattern, &mut buf2, &subs)
                .unwrap();
            assert_eq!(buf2, pt);
        }
    }

    #[test]
    fn zero_crypt_blocks_treated_as_one() {
        // A degenerate pattern of 0 crypt blocks is clamped rather than
        // looping forever or leaving everything clear unexpectedly.
        let pattern = CryptPattern { crypt_blocks: 0, skip_blocks: 0 };
        let pt = vec![0x11; 32];
        let ct = encrypt_sample(&key(), [0; 16], pattern, &pt, &[]).unwrap();
        let rt = decrypt_sample(&key(), [0; 16], pattern, &ct, &[]).unwrap();
        assert_eq!(rt, pt);
    }
}
