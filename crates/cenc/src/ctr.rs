//! The `cenc` scheme: AES-128-CTR subsample encryption.
//!
//! Per ISO/IEC 23001-7 the counter block is the 8-byte per-sample IV
//! followed by a 64-bit big-endian block counter starting at zero, and the
//! keystream runs *continuously* over the encrypted regions of a sample:
//! clear bytes do not consume keystream.

use wideleak_bmff::types::Subsample;
use wideleak_crypto::aes::{Aes128, BLOCK_LEN};

use crate::keys::ContentKey;
use crate::{validate_subsamples, CencError};

/// Blocks of keystream generated per batch: 512 bytes of stack buffer,
/// enough to cover typical encrypted subsample regions in one pass.
const BATCH_BLOCKS: usize = 32;

/// A CTR keystream generator with byte-level positioning.
///
/// Whole blocks are generated in batches of up to [`BATCH_BLOCKS`]
/// through [`wideleak_crypto::modes::ctr_keystream_into`]; only region
/// tails shorter than a block go through the single-block buffer, so
/// keystream continuity across subsamples is preserved byte for byte.
struct CtrStream<'a> {
    cipher: &'a Aes128,
    counter: [u8; BLOCK_LEN],
    buffer: [u8; BLOCK_LEN],
    /// Offset into `buffer` of the next unused keystream byte; BLOCK_LEN
    /// means the buffer is exhausted.
    used: usize,
}

impl<'a> CtrStream<'a> {
    fn new(cipher: &'a Aes128, iv: [u8; 8]) -> Self {
        let mut counter = [0u8; BLOCK_LEN];
        counter[..8].copy_from_slice(&iv);
        CtrStream { cipher, counter, buffer: [0u8; BLOCK_LEN], used: BLOCK_LEN }
    }

    fn xor_into(&mut self, data: &mut [u8]) {
        let mut pos = 0usize;
        // Drain keystream left over from the previous region first.
        while pos < data.len() && self.used < BLOCK_LEN {
            data[pos] ^= self.buffer[self.used];
            self.used += 1;
            pos += 1;
        }
        // Batch whole blocks straight from the counter.
        let mut batch = [0u8; BATCH_BLOCKS * BLOCK_LEN];
        while data.len() - pos >= BLOCK_LEN {
            let blocks = ((data.len() - pos) / BLOCK_LEN).min(BATCH_BLOCKS);
            let ks = &mut batch[..blocks * BLOCK_LEN];
            wideleak_crypto::modes::ctr_keystream_into(self.cipher, &mut self.counter, ks);
            for (b, k) in data[pos..pos + blocks * BLOCK_LEN].iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            pos += blocks * BLOCK_LEN;
        }
        // A tail shorter than a block: buffer one block so the next
        // region continues mid-block exactly where this one stopped.
        if pos < data.len() {
            self.buffer = self.counter;
            self.cipher.encrypt_block(&mut self.buffer);
            wideleak_crypto::modes::increment_counter(&mut self.counter);
            self.used = 0;
            while pos < data.len() {
                data[pos] ^= self.buffer[self.used];
                self.used += 1;
                pos += 1;
            }
        }
    }
}

/// Applies the `cenc` transform to one sample (encrypt and decrypt are the
/// same XOR operation).
///
/// An empty `subsamples` map means the entire sample is encrypted.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] when the map does not cover
/// the sample exactly.
fn xcrypt_sample(
    key: &ContentKey,
    iv: [u8; 8],
    sample: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CencError> {
    let mut out = sample.to_vec();
    let cipher = key.cipher();
    xcrypt_sample_in_place_with_cipher(&cipher, iv, &mut out, subsamples)?;
    Ok(out)
}

/// In-place `cenc` transform using a caller-supplied AES key schedule.
///
/// This is the zero-allocation hot path: the sample buffer is transformed
/// where it sits and the (expensive to derive) key schedule can be reused
/// across samples of the same session.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] when the map does not cover
/// the sample exactly; the buffer is untouched in that case.
pub fn xcrypt_sample_in_place_with_cipher(
    cipher: &Aes128,
    iv: [u8; 8],
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    validate_subsamples(subsamples, sample.len())?;
    let mut stream = CtrStream::new(cipher, iv);
    if subsamples.is_empty() {
        stream.xor_into(sample);
        return Ok(());
    }
    let mut offset = 0usize;
    for sub in subsamples {
        offset += sub.clear_bytes as usize;
        let end = offset + sub.encrypted_bytes as usize;
        stream.xor_into(&mut sample[offset..end]);
        offset = end;
    }
    Ok(())
}

/// Encrypts one sample in place under the `cenc` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn encrypt_sample_in_place(
    key: &ContentKey,
    iv: [u8; 8],
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    let cipher = key.cipher();
    xcrypt_sample_in_place_with_cipher(&cipher, iv, sample, subsamples)
}

/// Decrypts one sample in place under the `cenc` scheme (same XOR as
/// encryption).
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn decrypt_sample_in_place(
    key: &ContentKey,
    iv: [u8; 8],
    sample: &mut [u8],
    subsamples: &[Subsample],
) -> Result<(), CencError> {
    let cipher = key.cipher();
    xcrypt_sample_in_place_with_cipher(&cipher, iv, sample, subsamples)
}

/// Encrypts one sample under the `cenc` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn encrypt_sample(
    key: &ContentKey,
    iv: [u8; 8],
    plaintext: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CencError> {
    xcrypt_sample(key, iv, plaintext, subsamples)
}

/// Decrypts one sample under the `cenc` scheme.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] for an inconsistent map.
pub fn decrypt_sample(
    key: &ContentKey,
    iv: [u8; 8],
    ciphertext: &[u8],
    subsamples: &[Subsample],
) -> Result<Vec<u8>, CencError> {
    xcrypt_sample(key, iv, ciphertext, subsamples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ContentKey {
        ContentKey([0x42; 16])
    }

    #[test]
    fn whole_sample_round_trip() {
        let pt = b"a complete sample with no subsample structure at all";
        let ct = encrypt_sample(&key(), [1; 8], pt, &[]).unwrap();
        assert_ne!(&ct[..], &pt[..]);
        assert_eq!(decrypt_sample(&key(), [1; 8], &ct, &[]).unwrap(), pt);
    }

    #[test]
    fn clear_prefix_is_untouched() {
        let pt = b"HEADER....payload-payload-payload";
        let subs = [Subsample { clear_bytes: 10, encrypted_bytes: 23 }];
        let ct = encrypt_sample(&key(), [2; 8], pt, &subs).unwrap();
        assert_eq!(&ct[..10], &pt[..10]);
        assert_ne!(&ct[10..], &pt[10..]);
        assert_eq!(decrypt_sample(&key(), [2; 8], &ct, &subs).unwrap(), pt);
    }

    #[test]
    fn keystream_is_continuous_across_subsamples() {
        // Two layouts of the same encrypted bytes must produce the same
        // ciphertext for those bytes: clear bytes do not consume keystream.
        let enc_payload = vec![0xEE; 40];
        // Layout A: all 40 encrypted bytes in one subsample.
        let sample_a = enc_payload.clone();
        let subs_a = [Subsample { clear_bytes: 0, encrypted_bytes: 40 }];
        let ct_a = encrypt_sample(&key(), [3; 8], &sample_a, &subs_a).unwrap();
        // Layout B: clear gap in the middle.
        let mut sample_b = Vec::new();
        sample_b.extend_from_slice(&enc_payload[..15]);
        sample_b.extend_from_slice(b"CLEARCLEAR");
        sample_b.extend_from_slice(&enc_payload[15..]);
        let subs_b = [
            Subsample { clear_bytes: 0, encrypted_bytes: 15 },
            Subsample { clear_bytes: 10, encrypted_bytes: 25 },
        ];
        let ct_b = encrypt_sample(&key(), [3; 8], &sample_b, &subs_b).unwrap();
        assert_eq!(&ct_a[..15], &ct_b[..15]);
        assert_eq!(&ct_a[15..], &ct_b[25..]);
    }

    #[test]
    fn iv_separates_samples() {
        let pt = vec![0u8; 64];
        let a = encrypt_sample(&key(), [1; 8], &pt, &[]).unwrap();
        let b = encrypt_sample(&key(), [2; 8], &pt, &[]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_key_garbles() {
        let pt = b"content protected by DRM";
        let ct = encrypt_sample(&key(), [5; 8], pt, &[]).unwrap();
        let wrong = decrypt_sample(&ContentKey([0x43; 16]), [5; 8], &ct, &[]).unwrap();
        assert_ne!(&wrong[..], &pt[..]);
    }

    #[test]
    fn mismatched_map_rejected() {
        let subs = [Subsample { clear_bytes: 4, encrypted_bytes: 4 }];
        assert!(encrypt_sample(&key(), [0; 8], &[0u8; 9], &subs).is_err());
        assert!(encrypt_sample(&key(), [0; 8], &[0u8; 7], &subs).is_err());
    }

    #[test]
    fn empty_sample() {
        assert_eq!(encrypt_sample(&key(), [0; 8], &[], &[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn in_place_matches_allocating_variant() {
        let pt = b"HEADER....payload-payload-payload tail";
        let layouts: &[&[Subsample]] = &[
            &[],
            &[Subsample { clear_bytes: 10, encrypted_bytes: 28 }],
            &[
                Subsample { clear_bytes: 0, encrypted_bytes: 16 },
                Subsample { clear_bytes: 6, encrypted_bytes: 16 },
            ],
        ];
        for subs in layouts {
            let expected = encrypt_sample(&key(), [9; 8], pt, subs).unwrap();
            let mut buf = pt.to_vec();
            encrypt_sample_in_place(&key(), [9; 8], &mut buf, subs).unwrap();
            assert_eq!(buf, expected);
            decrypt_sample_in_place(&key(), [9; 8], &mut buf, subs).unwrap();
            assert_eq!(&buf[..], &pt[..]);
        }
    }

    #[test]
    fn in_place_with_reused_cipher_matches_fresh_schedule() {
        let cipher = Aes128::new(&key().0);
        let pt: Vec<u8> = (0..200).map(|i| (i * 3) as u8).collect();
        for iv in 0u8..4 {
            let expected = decrypt_sample(&key(), [iv; 8], &pt, &[]).unwrap();
            let mut buf = pt.clone();
            xcrypt_sample_in_place_with_cipher(&cipher, [iv; 8], &mut buf, &[]).unwrap();
            assert_eq!(buf, expected, "iv={iv}");
        }
    }

    #[test]
    fn in_place_rejects_mismatched_map_without_touching_buffer() {
        let subs = [Subsample { clear_bytes: 4, encrypted_bytes: 4 }];
        let mut buf = vec![0xAAu8; 9];
        assert!(encrypt_sample_in_place(&key(), [0; 8], &mut buf, &subs).is_err());
        assert_eq!(buf, vec![0xAAu8; 9]);
    }

    /// The pre-batching reference: one keystream byte at a time.
    fn per_byte_reference(cipher: &Aes128, iv: [u8; 8], data: &mut [u8], subs: &[Subsample]) {
        let mut counter = [0u8; BLOCK_LEN];
        counter[..8].copy_from_slice(&iv);
        let mut buffer = [0u8; BLOCK_LEN];
        let mut used = BLOCK_LEN;
        let mut xor = |region: &mut [u8]| {
            for b in region.iter_mut() {
                if used == BLOCK_LEN {
                    buffer = counter;
                    cipher.encrypt_block(&mut buffer);
                    wideleak_crypto::modes::increment_counter(&mut counter);
                    used = 0;
                }
                *b ^= buffer[used];
                used += 1;
            }
        };
        if subs.is_empty() {
            xor(data);
            return;
        }
        let mut offset = 0usize;
        for sub in subs {
            offset += sub.clear_bytes as usize;
            let end = offset + sub.encrypted_bytes as usize;
            xor(&mut data[offset..end]);
            offset = end;
        }
    }

    #[test]
    fn batched_keystream_matches_per_byte_reference() {
        // The batching fast path must be byte-identical to the per-byte
        // stream at every length around block and batch boundaries.
        let cipher = Aes128::new(&key().0);
        for len in [0usize, 1, 15, 16, 17, 31, 33, 255, 511, 512, 513, 1024, 2000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let mut expected = pt.clone();
            per_byte_reference(&cipher, [8; 8], &mut expected, &[]);
            let mut got = pt.clone();
            xcrypt_sample_in_place_with_cipher(&cipher, [8; 8], &mut got, &[]).unwrap();
            assert_eq!(got, expected, "len={len}");
        }
    }

    #[test]
    fn batched_keystream_matches_reference_across_subsample_tails() {
        // Odd-length encrypted regions leave mid-block keystream leftovers
        // that the next region must consume before batching resumes.
        let cipher = Aes128::new(&key().0);
        let subs = [
            Subsample { clear_bytes: 3, encrypted_bytes: 7 },
            Subsample { clear_bytes: 0, encrypted_bytes: 21 },
            Subsample { clear_bytes: 11, encrypted_bytes: 600 },
            Subsample { clear_bytes: 1, encrypted_bytes: 5 },
        ];
        let total: usize =
            subs.iter().map(|s| s.clear_bytes as usize + s.encrypted_bytes as usize).sum();
        let pt: Vec<u8> = (0..total).map(|i| (i * 7 % 256) as u8).collect();
        let mut expected = pt.clone();
        per_byte_reference(&cipher, [6; 8], &mut expected, &subs);
        let mut got = pt.clone();
        xcrypt_sample_in_place_with_cipher(&cipher, [6; 8], &mut got, &subs).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn long_sample_spans_many_counter_blocks() {
        let pt: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let ct = encrypt_sample(&key(), [7; 8], &pt, &[]).unwrap();
        assert_eq!(decrypt_sample(&key(), [7; 8], &ct, &[]).unwrap(), pt);
        // Keystream must not repeat across blocks for this size.
        let repeats = ct.windows(16).filter(|w| *w == &ct[..16]).count();
        assert_eq!(repeats, 1);
    }
}
