//! Content keys and key lookup.

use std::collections::HashMap;

use wideleak_bmff::types::KeyId;

/// A 128-bit AES content key — the final rung of the Widevine key ladder.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey(pub [u8; 16]);

impl std::fmt::Debug for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key bytes never appear in logs or panics.
        f.write_str("ContentKey(<redacted>)")
    }
}

impl ContentKey {
    /// Derives a deterministic test/workload key from a label. Not a KDF —
    /// packaging convenience only.
    pub fn from_label(label: &str) -> Self {
        let mut key = [0u8; 16];
        for (i, b) in label.bytes().enumerate() {
            key[i % 16] = key[i % 16].wrapping_mul(31).wrapping_add(b);
        }
        ContentKey(key)
    }

    /// Expands the AES-128 key schedule for this key.
    ///
    /// Key expansion is the expensive part of an AES call; per-sample
    /// paths should call this once per segment or session and thread the
    /// returned handle through the `_with_cipher` entry points instead
    /// of re-expanding per sample.
    pub fn cipher(&self) -> wideleak_crypto::aes::Aes128 {
        wideleak_crypto::aes::Aes128::new(&self.0)
    }
}

/// Maps key IDs to content keys during encryption or decryption.
///
/// Implemented by the CDM's loaded-license state and by the attack PoC's
/// recovered key set alike.
pub trait KeyStore {
    /// Looks up a content key by ID.
    fn key_for(&self, kid: &KeyId) -> Option<ContentKey>;
}

/// A simple in-memory key store.
#[derive(Debug, Clone, Default)]
pub struct MemoryKeyStore {
    keys: HashMap<KeyId, ContentKey>,
}

impl MemoryKeyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, returning any previous key under the same ID.
    pub fn insert(&mut self, kid: KeyId, key: ContentKey) -> Option<ContentKey> {
        self.keys.insert(kid, key)
    }

    /// Number of keys held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over `(key id, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&KeyId, &ContentKey)> {
        self.keys.iter()
    }
}

impl KeyStore for MemoryKeyStore {
    fn key_for(&self, kid: &KeyId) -> Option<ContentKey> {
        self.keys.get(kid).copied()
    }
}

impl FromIterator<(KeyId, ContentKey)> for MemoryKeyStore {
    fn from_iter<T: IntoIterator<Item = (KeyId, ContentKey)>>(iter: T) -> Self {
        MemoryKeyStore { keys: iter.into_iter().collect() }
    }
}

impl Extend<(KeyId, ContentKey)> for MemoryKeyStore {
    fn extend<T: IntoIterator<Item = (KeyId, ContentKey)>>(&mut self, iter: T) {
        self.keys.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_never_prints_key_bytes() {
        let k = ContentKey([0xAB; 16]);
        let s = format!("{k:?}");
        assert!(!s.to_lowercase().contains("ab"), "got {s}");
    }

    #[test]
    fn from_label_is_deterministic_and_distinct() {
        assert_eq!(ContentKey::from_label("x"), ContentKey::from_label("x"));
        assert_ne!(ContentKey::from_label("x"), ContentKey::from_label("y"));
    }

    #[test]
    fn memory_store_lookup() {
        let mut store = MemoryKeyStore::new();
        assert!(store.is_empty());
        let kid = KeyId([1; 16]);
        store.insert(kid, ContentKey([2; 16]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.key_for(&kid), Some(ContentKey([2; 16])));
        assert_eq!(store.key_for(&KeyId([9; 16])), None);
    }

    #[test]
    fn insert_returns_previous() {
        let mut store = MemoryKeyStore::new();
        let kid = KeyId([1; 16]);
        assert_eq!(store.insert(kid, ContentKey([2; 16])), None);
        assert_eq!(store.insert(kid, ContentKey([3; 16])), Some(ContentKey([2; 16])));
    }

    #[test]
    fn collect_and_extend() {
        let kid_a = KeyId([1; 16]);
        let kid_b = KeyId([2; 16]);
        let mut store: MemoryKeyStore = [(kid_a, ContentKey([1; 16]))].into_iter().collect();
        store.extend([(kid_b, ContentKey([2; 16]))]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.iter().count(), 2);
    }
}
