//! ISO/IEC 23001-7 Common Encryption (CENC) over ISO-BMFF tracks.
//!
//! Implements the two protection schemes used by Widevine-protected DASH
//! content:
//!
//! - **`cenc`** ([`ctr`]): AES-128-CTR with 8-byte per-sample IVs and a
//!   keystream that runs continuously across the encrypted regions of a
//!   sample (subsample encryption).
//! - **`cbcs`** ([`cbcs`]): AES-128-CBC pattern encryption (1 encrypted
//!   block : 9 clear blocks) with a constant IV that restarts per
//!   subsample region.
//!
//! [`track`] ties the schemes to `wideleak-bmff` fragments: the CDN
//! packager encrypts whole media segments through it and the attack PoC
//! decrypts them back once it has recovered the content keys.
//!
//! # Examples
//!
//! ```
//! use wideleak_cenc::keys::ContentKey;
//! use wideleak_cenc::ctr;
//! use wideleak_bmff::types::Subsample;
//!
//! let key = ContentKey([7u8; 16]);
//! let iv = [1u8; 8];
//! let subs = [Subsample { clear_bytes: 4, encrypted_bytes: 13 }];
//! let ct = ctr::encrypt_sample(&key, iv, b"headerENCRYPTEDBY", &subs).unwrap();
//! assert_eq!(&ct[..4], b"head", "clear prefix is preserved");
//! let pt = ctr::decrypt_sample(&key, iv, &ct, &subs).unwrap();
//! assert_eq!(pt, b"headerENCRYPTEDBY");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbcs;
pub mod ctr;
pub mod keys;
pub mod track;

use std::fmt;

/// Errors produced by the CENC schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CencError {
    /// The subsample map does not match the sample length.
    SubsampleMismatch {
        /// Total bytes described by the map.
        described: usize,
        /// Actual sample length.
        actual: usize,
    },
    /// No key available for a key ID during segment decryption.
    MissingKey {
        /// Display form of the key ID.
        kid: String,
    },
    /// The segment's encryption metadata is inconsistent (e.g. senc entry
    /// count differs from sample count, or an IV has the wrong width).
    BadMetadata {
        /// Human-readable description.
        reason: &'static str,
    },
    /// Underlying container error.
    Bmff(wideleak_bmff::BmffError),
}

impl fmt::Display for CencError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CencError::SubsampleMismatch { described, actual } => {
                write!(f, "subsample map describes {described} bytes but the sample has {actual}")
            }
            CencError::MissingKey { kid } => write!(f, "no content key for key id {kid}"),
            CencError::BadMetadata { reason } => write!(f, "bad encryption metadata: {reason}"),
            CencError::Bmff(e) => write!(f, "container error: {e}"),
        }
    }
}

impl std::error::Error for CencError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CencError::Bmff(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wideleak_bmff::BmffError> for CencError {
    fn from(e: wideleak_bmff::BmffError) -> Self {
        CencError::Bmff(e)
    }
}

/// Validates that a subsample map covers `len` bytes exactly.
///
/// An empty map means whole-sample encryption and always validates.
///
/// # Errors
///
/// Returns [`CencError::SubsampleMismatch`] when coverage differs.
pub fn validate_subsamples(
    subsamples: &[wideleak_bmff::types::Subsample],
    len: usize,
) -> Result<(), CencError> {
    if subsamples.is_empty() {
        return Ok(());
    }
    let described: usize =
        subsamples.iter().map(|s| s.clear_bytes as usize + s.encrypted_bytes as usize).sum();
    if described != len {
        return Err(CencError::SubsampleMismatch { described, actual: len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wideleak_bmff::types::Subsample;

    #[test]
    fn empty_map_validates_any_length() {
        assert!(validate_subsamples(&[], 0).is_ok());
        assert!(validate_subsamples(&[], 1000).is_ok());
    }

    #[test]
    fn exact_coverage_validates() {
        let subs = [
            Subsample { clear_bytes: 4, encrypted_bytes: 6 },
            Subsample { clear_bytes: 0, encrypted_bytes: 10 },
        ];
        assert!(validate_subsamples(&subs, 20).is_ok());
        assert_eq!(
            validate_subsamples(&subs, 19),
            Err(CencError::SubsampleMismatch { described: 20, actual: 19 })
        );
    }

    #[test]
    fn error_display() {
        let e = CencError::MissingKey { kid: "aa".into() };
        assert!(e.to_string().contains("aa"));
    }
}
