//! Segment-level encryption and decryption tying the CENC schemes to
//! fragmented-MP4 structures.
//!
//! The CDN packager encrypts plaintext samples into a
//! [`wideleak_bmff::fragment::MediaSegment`] carrying `senc` metadata; the
//! player's MediaCodec path and the attack PoC decrypt segments back given
//! a [`KeyStore`].

use wideleak_bmff::fragment::{InitSegment, MediaSegment, TrackKind};
use wideleak_bmff::types::{SampleEncryption, Senc, Subsample, Tenc};
use wideleak_bmff::FourCc;

use crate::keys::{ContentKey, KeyStore};
use crate::{cbcs, ctr, CencError};

/// The protection scheme of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// AES-CTR subsample encryption (`cenc`).
    Cenc,
    /// AES-CBC pattern encryption (`cbcs`).
    Cbcs,
}

impl Scheme {
    /// The fourcc used in `schm` boxes and DASH descriptors.
    pub fn fourcc(self) -> FourCc {
        match self {
            Scheme::Cenc => FourCc(*b"cenc"),
            Scheme::Cbcs => FourCc(*b"cbcs"),
        }
    }

    /// Parses a fourcc.
    pub fn from_fourcc(f: FourCc) -> Option<Self> {
        match &f.0 {
            b"cenc" => Some(Scheme::Cenc),
            b"cbcs" => Some(Scheme::Cbcs),
            _ => None,
        }
    }
}

/// Derives the default subsample map for a sample: for video, a 16-byte
/// clear header prefix (mimicking NAL headers left clear by packagers);
/// audio and subtitles encrypt whole samples.
pub fn default_subsamples(kind: TrackKind, sample_len: usize) -> Vec<Subsample> {
    match kind {
        TrackKind::Video if sample_len > 16 => {
            vec![Subsample { clear_bytes: 16, encrypted_bytes: (sample_len - 16) as u32 }]
        }
        _ => Vec::new(),
    }
}

/// Encrypts plaintext samples into a media segment.
///
/// The argument list mirrors the packaging pipeline's stages; a builder
/// would obscure the one-shot call sites in the CDN packager.
///
/// `iv_seed` makes per-sample IV derivation deterministic (the packager
/// uses the segment sequence number).
///
/// # Errors
///
/// Propagates subsample-map validation failures.
#[allow(clippy::too_many_arguments)]
pub fn encrypt_segment(
    scheme: Scheme,
    key: &ContentKey,
    tenc: &Tenc,
    kind: TrackKind,
    track_id: u32,
    sequence_number: u32,
    samples: &[Vec<u8>],
    iv_seed: u64,
) -> Result<MediaSegment, CencError> {
    let mut entries = Vec::with_capacity(samples.len());
    let mut data = Vec::new();
    let mut sample_sizes = Vec::with_capacity(samples.len());

    // One key-schedule expansion for the whole segment; every sample
    // below reuses it through the `_with_cipher` entry points.
    let cipher = key.cipher();
    for (i, sample) in samples.iter().enumerate() {
        let subsamples = default_subsamples(kind, sample.len());
        let mut encrypted = sample.clone();
        match scheme {
            Scheme::Cenc => {
                let iv = derive_iv(iv_seed, sequence_number, i as u32);
                ctr::xcrypt_sample_in_place_with_cipher(&cipher, iv, &mut encrypted, &subsamples)?;
                entries.push(SampleEncryption { iv: iv.to_vec(), subsamples });
            }
            Scheme::Cbcs => {
                let constant_iv = tenc
                    .constant_iv
                    .ok_or(CencError::BadMetadata { reason: "cbcs requires a constant IV" })?;
                let pattern = tenc
                    .pattern
                    .ok_or(CencError::BadMetadata { reason: "cbcs requires a pattern" })?;
                cbcs::encrypt_sample_in_place_with_cipher(
                    &cipher,
                    constant_iv,
                    pattern,
                    &mut encrypted,
                    &subsamples,
                )?;
                entries.push(SampleEncryption { iv: Vec::new(), subsamples });
            }
        }
        sample_sizes.push(encrypted.len() as u32);
        data.extend_from_slice(&encrypted);
    }

    Ok(MediaSegment { sequence_number, track_id, sample_sizes, senc: Some(Senc { entries }), data })
}

/// Builds a clear (unencrypted) media segment from plaintext samples.
pub fn clear_segment(track_id: u32, sequence_number: u32, samples: &[Vec<u8>]) -> MediaSegment {
    let mut data = Vec::new();
    let mut sample_sizes = Vec::with_capacity(samples.len());
    for s in samples {
        sample_sizes.push(s.len() as u32);
        data.extend_from_slice(s);
    }
    MediaSegment { sequence_number, track_id, sample_sizes, senc: None, data }
}

/// Decrypts a media segment back to plaintext samples.
///
/// Clear segments (no `senc`) are returned as-is. For protected segments
/// the key is looked up by the init segment's default KID.
///
/// # Errors
///
/// Returns [`CencError::MissingKey`] when the store lacks the default KID,
/// and [`CencError::BadMetadata`] on senc/sample inconsistencies.
pub fn decrypt_segment(
    init: &InitSegment,
    segment: &MediaSegment,
    keys: &dyn KeyStore,
) -> Result<Vec<Vec<u8>>, CencError> {
    let samples = segment.samples()?;
    let Some(senc) = &segment.senc else {
        return Ok(samples.into_iter().map(<[u8]>::to_vec).collect());
    };
    let tenc = init
        .tenc
        .as_ref()
        .ok_or(CencError::BadMetadata { reason: "encrypted segment but clear init segment" })?;
    let scheme = init
        .scheme
        .and_then(Scheme::from_fourcc)
        .ok_or(CencError::BadMetadata { reason: "unknown protection scheme" })?;
    if senc.entries.len() != samples.len() {
        return Err(CencError::BadMetadata { reason: "senc entry count != sample count" });
    }
    let key = keys
        .key_for(&tenc.default_kid)
        .ok_or_else(|| CencError::MissingKey { kid: tenc.default_kid.to_string() })?;

    // Expand the key schedule once and reuse it for every sample.
    let cipher = key.cipher();
    let mut out = Vec::with_capacity(samples.len());
    for (sample, entry) in samples.iter().zip(&senc.entries) {
        let mut pt = sample.to_vec();
        match scheme {
            Scheme::Cenc => {
                let iv: [u8; 8] =
                    entry.iv.as_slice().try_into().map_err(|_| CencError::BadMetadata {
                        reason: "cenc IV must be 8 bytes",
                    })?;
                ctr::xcrypt_sample_in_place_with_cipher(&cipher, iv, &mut pt, &entry.subsamples)?;
            }
            Scheme::Cbcs => {
                let constant_iv = tenc
                    .constant_iv
                    .ok_or(CencError::BadMetadata { reason: "cbcs requires a constant IV" })?;
                let pattern = tenc
                    .pattern
                    .ok_or(CencError::BadMetadata { reason: "cbcs requires a pattern" })?;
                cbcs::decrypt_sample_in_place_with_cipher(
                    &cipher,
                    constant_iv,
                    pattern,
                    &mut pt,
                    &entry.subsamples,
                )?;
            }
        }
        out.push(pt);
    }
    Ok(out)
}

/// Derives a deterministic 8-byte per-sample IV.
fn derive_iv(seed: u64, sequence: u32, sample_index: u32) -> [u8; 8] {
    let v = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((sequence as u64) << 32 | sample_index as u64);
    v.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MemoryKeyStore;
    use wideleak_bmff::types::KeyId;

    fn kid(b: u8) -> KeyId {
        KeyId([b; 16])
    }

    fn sample_payloads() -> Vec<Vec<u8>> {
        vec![(0..200u32).map(|i| (i % 256) as u8).collect(), vec![0x5a; 64], b"short".to_vec()]
    }

    fn store(k: KeyId, key: ContentKey) -> MemoryKeyStore {
        let mut s = MemoryKeyStore::new();
        s.insert(k, key);
        s
    }

    #[test]
    fn scheme_fourcc_round_trip() {
        for s in [Scheme::Cenc, Scheme::Cbcs] {
            assert_eq!(Scheme::from_fourcc(s.fourcc()), Some(s));
        }
        assert_eq!(Scheme::from_fourcc(FourCc(*b"zzzz")), None);
    }

    #[test]
    fn default_subsamples_policy() {
        assert_eq!(default_subsamples(TrackKind::Video, 100).len(), 1);
        assert_eq!(default_subsamples(TrackKind::Video, 10), vec![]);
        assert_eq!(default_subsamples(TrackKind::Audio, 100), vec![]);
        assert_eq!(default_subsamples(TrackKind::Subtitle, 100), vec![]);
    }

    #[test]
    fn cenc_video_segment_round_trip() {
        let key = ContentKey::from_label("video-key");
        let tenc = Tenc::cenc(kid(1));
        let init =
            InitSegment::protected(1, TrackKind::Video, FourCc(*b"cenc"), tenc.clone(), vec![]);
        let samples = sample_payloads();
        let seg = encrypt_segment(Scheme::Cenc, &key, &tenc, TrackKind::Video, 1, 1, &samples, 99)
            .unwrap();
        // Ciphertext differs from plaintext beyond the clear prefixes.
        assert_ne!(seg.data[..200].to_vec(), samples[0]);
        let decrypted = decrypt_segment(&init, &seg, &store(kid(1), key)).unwrap();
        assert_eq!(decrypted, samples);
    }

    #[test]
    fn cbcs_audio_segment_round_trip() {
        let key = ContentKey::from_label("audio-key");
        let tenc = Tenc::cbcs(kid(2), [3; 16]);
        let init =
            InitSegment::protected(2, TrackKind::Audio, FourCc(*b"cbcs"), tenc.clone(), vec![]);
        let samples = sample_payloads();
        let seg = encrypt_segment(Scheme::Cbcs, &key, &tenc, TrackKind::Audio, 2, 5, &samples, 7)
            .unwrap();
        let decrypted = decrypt_segment(&init, &seg, &store(kid(2), key)).unwrap();
        assert_eq!(decrypted, samples);
    }

    #[test]
    fn clear_segment_round_trip() {
        let samples = sample_payloads();
        let seg = clear_segment(1, 1, &samples);
        let init = InitSegment::clear(1, TrackKind::Audio);
        let decrypted = decrypt_segment(&init, &seg, &MemoryKeyStore::new()).unwrap();
        assert_eq!(decrypted, samples);
    }

    #[test]
    fn missing_key_is_reported() {
        let key = ContentKey::from_label("k");
        let tenc = Tenc::cenc(kid(9));
        let init =
            InitSegment::protected(1, TrackKind::Video, FourCc(*b"cenc"), tenc.clone(), vec![]);
        let seg = encrypt_segment(
            Scheme::Cenc,
            &key,
            &tenc,
            TrackKind::Video,
            1,
            1,
            &sample_payloads(),
            0,
        )
        .unwrap();
        let err = decrypt_segment(&init, &seg, &MemoryKeyStore::new()).unwrap_err();
        assert!(matches!(err, CencError::MissingKey { .. }));
    }

    #[test]
    fn wrong_key_produces_garbage_not_error() {
        let key = ContentKey::from_label("right");
        let tenc = Tenc::cenc(kid(1));
        let init =
            InitSegment::protected(1, TrackKind::Video, FourCc(*b"cenc"), tenc.clone(), vec![]);
        let samples = sample_payloads();
        let seg = encrypt_segment(Scheme::Cenc, &key, &tenc, TrackKind::Video, 1, 1, &samples, 0)
            .unwrap();
        let garbage =
            decrypt_segment(&init, &seg, &store(kid(1), ContentKey::from_label("wrong"))).unwrap();
        assert_ne!(garbage, samples);
    }

    #[test]
    fn encrypted_segment_with_clear_init_rejected() {
        let key = ContentKey::from_label("k");
        let tenc = Tenc::cenc(kid(1));
        let seg = encrypt_segment(
            Scheme::Cenc,
            &key,
            &tenc,
            TrackKind::Video,
            1,
            1,
            &sample_payloads(),
            0,
        )
        .unwrap();
        let init = InitSegment::clear(1, TrackKind::Video);
        assert!(matches!(
            decrypt_segment(&init, &seg, &store(kid(1), key)),
            Err(CencError::BadMetadata { .. })
        ));
    }

    #[test]
    fn senc_count_mismatch_rejected() {
        let key = ContentKey::from_label("k");
        let tenc = Tenc::cenc(kid(1));
        let init =
            InitSegment::protected(1, TrackKind::Video, FourCc(*b"cenc"), tenc.clone(), vec![]);
        let mut seg = encrypt_segment(
            Scheme::Cenc,
            &key,
            &tenc,
            TrackKind::Video,
            1,
            1,
            &sample_payloads(),
            0,
        )
        .unwrap();
        seg.senc.as_mut().unwrap().entries.pop();
        assert!(matches!(
            decrypt_segment(&init, &seg, &store(kid(1), key)),
            Err(CencError::BadMetadata { .. })
        ));
    }

    #[test]
    fn per_sample_ivs_are_distinct() {
        let key = ContentKey::from_label("k");
        let tenc = Tenc::cenc(kid(1));
        let seg = encrypt_segment(
            Scheme::Cenc,
            &key,
            &tenc,
            TrackKind::Video,
            1,
            1,
            &sample_payloads(),
            0,
        )
        .unwrap();
        let ivs: Vec<_> = seg.senc.unwrap().entries.into_iter().map(|e| e.iv).collect();
        assert_eq!(ivs.len(), 3);
        assert_ne!(ivs[0], ivs[1]);
        assert_ne!(ivs[1], ivs[2]);
    }

    #[test]
    fn segment_serialization_survives_round_trip() {
        // Full path: encrypt -> serialize -> parse -> decrypt.
        let key = ContentKey::from_label("e2e");
        let tenc = Tenc::cenc(kid(4));
        let init =
            InitSegment::protected(3, TrackKind::Video, FourCc(*b"cenc"), tenc.clone(), vec![]);
        let samples = sample_payloads();
        let seg = encrypt_segment(Scheme::Cenc, &key, &tenc, TrackKind::Video, 3, 2, &samples, 1)
            .unwrap();
        let bytes = seg.to_bytes();
        let parsed = MediaSegment::from_bytes(&bytes).unwrap();
        let init_parsed = InitSegment::from_bytes(&init.to_bytes()).unwrap();
        let decrypted = decrypt_segment(&init_parsed, &parsed, &store(kid(4), key)).unwrap();
        assert_eq!(decrypted, samples);
    }
}
