//! Property-based round-trips for the `cbcs` pattern scheme, pinning the
//! edge cases (degenerate patterns, partial trailing blocks, empty
//! subsample maps) before any caching layer sits on top of the decrypt
//! path.

use proptest::prelude::*;
use wideleak_bmff::types::{CryptPattern, Subsample};
use wideleak_cenc::cbcs;
use wideleak_cenc::keys::ContentKey;

/// Any pattern including the degenerate `crypt_blocks = 0` (clamped to 1
/// by the implementation) and `skip_blocks = 0` (plain CBC) corners.
fn pattern() -> impl Strategy<Value = CryptPattern> {
    (0u8..=4, 0u8..=10)
        .prop_map(|(crypt, skip)| CryptPattern { crypt_blocks: crypt, skip_blocks: skip })
}

/// A consistent subsample map plus a sample buffer that it covers
/// exactly. An empty map (whole sample protected) is generated too.
/// The vendored proptest has no `prop_flat_map`, so a fixed byte pool is
/// drawn alongside the map and truncated/cycled to the exact length.
fn sample_with_map() -> impl Strategy<Value = (Vec<u8>, Vec<Subsample>)> {
    (
        proptest::collection::vec((0u16..40, 0u32..80), 0..4),
        proptest::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(pairs, pool)| {
            let subs: Vec<Subsample> = pairs
                .iter()
                .map(|&(clear, enc)| Subsample { clear_bytes: clear, encrypted_bytes: enc })
                .collect();
            let total: usize = if subs.is_empty() {
                pool.len()
            } else {
                subs.iter().map(|s| s.clear_bytes as usize + s.encrypted_bytes as usize).sum()
            };
            let sample: Vec<u8> = (0..total)
                .map(|i| pool.get(i % pool.len().max(1)).copied().unwrap_or(0) ^ (i as u8))
                .collect();
            (sample, subs)
        })
}

proptest! {
    #[test]
    fn cbcs_round_trip_any_pattern(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        pattern in pattern(),
        (sample, subs) in sample_with_map(),
    ) {
        let key = ContentKey(key);
        let ct = cbcs::encrypt_sample(&key, iv, pattern, &sample, &subs).unwrap();
        prop_assert_eq!(ct.len(), sample.len());
        let rt = cbcs::decrypt_sample(&key, iv, pattern, &ct, &subs).unwrap();
        prop_assert_eq!(rt, sample);
    }

    #[test]
    fn cbcs_in_place_matches_allocating(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        pattern in pattern(),
        (sample, subs) in sample_with_map(),
    ) {
        let key = ContentKey(key);
        let expected = cbcs::encrypt_sample(&key, iv, pattern, &sample, &subs).unwrap();
        let mut buf = sample.clone();
        cbcs::encrypt_sample_in_place(&key, iv, pattern, &mut buf, &subs).unwrap();
        prop_assert_eq!(&buf, &expected);
        cbcs::decrypt_sample_in_place(&key, iv, pattern, &mut buf, &subs).unwrap();
        prop_assert_eq!(buf, sample);
    }

    #[test]
    fn cbcs_partial_trailing_block_stays_clear(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        pattern in pattern(),
        blocks in 0usize..5,
        tail in 1usize..16,
        fill in any::<u8>(),
    ) {
        // Whole-sample protection with a deliberately unaligned length:
        // the trailing partial block must come through untouched.
        let key = ContentKey(key);
        let sample = vec![fill; blocks * 16 + tail];
        let ct = cbcs::encrypt_sample(&key, iv, pattern, &sample, &[]).unwrap();
        prop_assert_eq!(&ct[blocks * 16..], &sample[blocks * 16..]);
        let rt = cbcs::decrypt_sample(&key, iv, pattern, &ct, &[]).unwrap();
        prop_assert_eq!(rt, sample);
    }

    #[test]
    fn cbcs_zero_skip_is_plain_cbc_per_region(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 32..200),
    ) {
        // skip_blocks = 0 with crypt_blocks = 1 degenerates to CBC over
        // every full block; equal plaintext blocks must still chain.
        let key = ContentKey(key);
        let pattern = CryptPattern { crypt_blocks: 1, skip_blocks: 0 };
        let ct = cbcs::encrypt_sample(&key, iv, pattern, &data, &[]).unwrap();
        let rt = cbcs::decrypt_sample(&key, iv, pattern, &ct, &[]).unwrap();
        prop_assert_eq!(rt, data);
    }

    #[test]
    fn cbcs_empty_subsample_list_equals_whole_sample_region(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        pattern in pattern(),
        data in proptest::collection::vec(any::<u8>(), 0..150),
    ) {
        // An empty map and a single all-encrypted subsample are the same
        // region layout and must produce identical ciphertext.
        let key = ContentKey(key);
        let whole = cbcs::encrypt_sample(&key, iv, pattern, &data, &[]).unwrap();
        let subs = [Subsample { clear_bytes: 0, encrypted_bytes: data.len() as u32 }];
        let mapped = cbcs::encrypt_sample(&key, iv, pattern, &data, &subs).unwrap();
        prop_assert_eq!(whole, mapped);
    }
}
