//! The `wideleak` command-line tool: the paper's automated monitoring and
//! PoC tooling behind one binary.
//!
//! ```text
//! wideleak study            # regenerate Table I over all ten apps
//! wideleak study netflix    # study one app
//! wideleak attack           # the CVE-2021-0639 sweep (§IV-D)
//! wideleak attack hulu      # attack one app
//! wideleak spoof            # the §V-C forged-L1 experiment
//! wideleak play <slug>      # one instrumented playback with trace dump
//! wideleak resilience       # the Q5 fault-schedule sweep
//! wideleak load             # the fleet load generator (--quick: CI size)
//! wideleak serve [ADDR]     # stand up a wire-framed TCP media DRM server
//! wideleak stats <file>     # re-render a telemetry JSONL export
//! ```
//!
//! Flags: `--fast` shrinks RSA keys for quick runs; `--seed N` reseeds the
//! deterministic ecosystem; `--transport tcp|threaded|inprocess` picks the
//! binder transport devices boot with; `--telemetry <path.jsonl>` records
//! structured spans/counters/histograms across the whole run, exports
//! them to the given file and prints a stats summary after
//! `study`/`attack`.

use std::process::ExitCode;

use wideleak::android_drm::binder::TransportKind;
use wideleak::android_drm::netserver::TcpDrmServer;
use wideleak::attack::recover::{attack_all, attack_app};
use wideleak::device::catalog::DeviceModel;
use wideleak::load::{run_load, LoadConfig};
use wideleak::monitor::report::{render_call_histogram, render_insights, render_table_1};
use wideleak::monitor::resilience::{render_q5, run_resilience_study_on};
use wideleak::monitor::study::{run_study, study_app};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry;

fn usage() -> ExitCode {
    eprintln!(
        "usage: wideleak [--fast] [--seed N] [--quick] [--transport KIND] \
         [--telemetry FILE.jsonl] <command>\n\
         commands:\n\
           study [slug]   regenerate Table I (or one app's findings)\n\
           attack [slug]  run the CVE-2021-0639 pipeline\n\
           spoof          run the forged-L1 HD experiment (Section V-C)\n\
           play <slug>    one instrumented playback with a Figure-1 trace\n\
           resilience     run the Q5 fault-schedule sweep (--quick: 4 apps)\n\
           load           drive the fleet load generator (--quick: CI size)\n\
           serve [ADDR]   run a wire-framed TCP media DRM server (default 127.0.0.1:7564)\n\
           stats FILE     re-render a telemetry JSONL export as a summary\n\
         --transport picks the binder: inprocess (default), threaded, or tcp"
    );
    ExitCode::FAILURE
}

/// Writes the collected telemetry to `path` and prints the stats
/// summary when `print_summary` is set (after `study`/`attack` runs).
fn export_telemetry(path: &str, print_summary: bool) {
    let snapshot = telemetry::snapshot();
    let jsonl = telemetry::to_jsonl(&snapshot);
    if let Err(e) = std::fs::write(path, &jsonl) {
        eprintln!("telemetry: failed to write {path}: {e}");
    } else {
        eprintln!("telemetry: wrote {} lines to {path}", jsonl.lines().count());
    }
    if print_summary {
        println!("{}", telemetry::summary_table(&snapshot));
    }
}

fn main() -> ExitCode {
    let mut config = EcosystemConfig::default();
    let mut telemetry_path: Option<String> = None;
    let mut transport_flag: Option<TransportKind> = None;
    let mut quick = false;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => config.rsa_bits = 768,
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => config.seed = seed,
                None => return usage(),
            },
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => return usage(),
            },
            "--transport" => match args.next().and_then(|v| v.parse::<TransportKind>().ok()) {
                Some(kind) => {
                    config.transport = kind;
                    transport_flag = Some(kind);
                }
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => positional.push(arg),
        }
    }
    let Some(command) = positional.first().map(String::as_str) else {
        return usage();
    };
    let slug = positional.get(1).map(String::as_str);

    // `stats` operates on a prior run's export; no ecosystem needed.
    if command == "stats" {
        let Some(path) = slug else {
            return usage();
        };
        return match std::fs::read_to_string(path) {
            Ok(text) => {
                let run = telemetry::export::parse_jsonl(&text);
                print!("{}", telemetry::export::parsed_summary_table(&run));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("stats: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if telemetry_path.is_some() {
        telemetry::enable();
        telemetry::event("info", format!("run start: {command} {}", slug.unwrap_or("")));
    }
    let seed = config.seed;
    let transport = config.transport;

    // `serve` exports a standalone media DRM server; it never installs
    // apps or boots a device stack.
    if command == "serve" {
        let addr = slug.unwrap_or("127.0.0.1:7564");
        let eco = Ecosystem::new(config);
        let drm = eco.media_drm_server(DeviceModel::pixel_6());
        return match TcpDrmServer::bind(addr, drm) {
            Ok(server) => {
                println!(
                    "wideleak: media DRM server listening on {} (wire v1; ctrl-c to stop)",
                    server.local_addr()
                );
                loop {
                    std::thread::park();
                }
            }
            Err(e) => {
                eprintln!("serve: cannot bind {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let eco = Ecosystem::new(config);

    let code = match (command, slug) {
        ("study", None) => match run_study(&eco) {
            Ok(report) => {
                println!("{}", render_table_1(&report));
                println!("{}", render_insights(&report));
                print!("{}", render_call_histogram(&report));
                ExitCode::SUCCESS
            }
            Err(e) => {
                telemetry::event("error", format!("study failed: {e} [{}]", e.class()));
                eprintln!("study failed: {e}");
                ExitCode::FAILURE
            }
        },
        ("study", Some(slug)) => match study_app(&eco, slug) {
            Ok(findings) => {
                println!("{findings:#?}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                telemetry::event("error", format!("study failed: {e} [{}]", e.class()));
                eprintln!("study failed: {e}");
                ExitCode::FAILURE
            }
        },
        ("attack", None) => {
            let outcomes = attack_all(&eco);
            for o in &outcomes {
                let status = if o.succeeded() {
                    format!(
                        "DRM-free media at {:?}",
                        o.media.as_ref().and_then(|m| m.best_resolution())
                    )
                } else {
                    format!(
                        "blocked ({})",
                        o.failure.as_ref().map_or("?".into(), |e| e.to_string())
                    )
                };
                println!("{:<22} {status}", o.app_name);
            }
            ExitCode::SUCCESS
        }
        ("attack", Some(slug)) => {
            let o = attack_app(&eco, slug);
            println!("{o:#?}");
            if o.succeeded() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        ("spoof", _) => {
            match wideleak::attack::hd_spoof::hd_spoof_experiment(&eco, slug.unwrap_or("netflix")) {
                Ok(outcome) => {
                    println!(
                        "best height: {:?}; HD leaked: {}",
                        outcome.best_height,
                        outcome.got_hd_keys()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("spoof failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("resilience", _) => {
            let report = run_resilience_study_on(seed, quick, transport);
            println!("{}", render_q5(&report));
            ExitCode::SUCCESS
        }
        ("load", _) => {
            let base = if quick { LoadConfig::quick() } else { LoadConfig::default() };
            let load_config = LoadConfig {
                seed,
                // The fleet defaults to the threaded binder; only a
                // `--transport` flag overrides it.
                transport: transport_flag.unwrap_or(base.transport),
                ..base
            };
            let report = run_load(&load_config);
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        ("play", Some(slug)) => {
            let stack = eco.boot_device(DeviceModel::pixel_6(), true);
            let app = eco.install_app(&stack, slug, "cli-user");
            stack.device.hook_engine().start_recording();
            match app.play("title-001") {
                Ok(outcome) => {
                    let log = stack.device.hook_engine().stop_recording();
                    println!(
                        "played at {}x{} ({} video samples)",
                        outcome.resolution.0,
                        outcome.resolution.1,
                        outcome.video_samples.len()
                    );
                    if let Some(trace) = outcome.trace {
                        for step in trace.steps() {
                            println!("  {step:?}");
                        }
                    }
                    println!("{} CDM calls intercepted", log.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("playback failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => return usage(),
    };

    if let Some(path) = &telemetry_path {
        export_telemetry(path, matches!(command, "study" | "attack"));
    }
    code
}
