//! The `wideleak` command-line tool: the paper's automated monitoring and
//! PoC tooling behind one binary.
//!
//! ```text
//! wideleak study            # regenerate Table I over all ten apps
//! wideleak study netflix    # study one app
//! wideleak attack           # the CVE-2021-0639 sweep (§IV-D)
//! wideleak attack hulu      # attack one app
//! wideleak spoof            # the §V-C forged-L1 experiment
//! wideleak play <slug>      # one instrumented playback with trace dump
//! wideleak resilience       # the Q5 fault-schedule sweep
//! wideleak adapt            # the adaptation study under congestion
//! wideleak load             # the fleet load generator (--quick: CI size)
//! wideleak campaign         # the sharded catalog campaign (--quick: CI size)
//! wideleak serve [ADDR]     # stand up a wire-framed TCP media DRM server
//! wideleak stats <file>     # re-render a telemetry JSONL export
//! ```
//!
//! Flags: `--fast` shrinks RSA keys for quick runs; `--seed N` reseeds the
//! deterministic ecosystem; `--transport tcp|threaded|inprocess` picks the
//! binder transport devices boot with; `--telemetry <path.jsonl>` records
//! structured spans/counters/histograms across the whole run, exports
//! them to the given file and prints a stats summary after
//! `study`/`attack`; `--trace <path.jsonl>` records distributed trace
//! spans to a durable JSONL sink (flushed on exit and on ctrl-c);
//! `--metrics ADDR` has `serve` publish a live Prometheus-style
//! `/metrics` endpoint next to the DRM socket.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use wideleak::android_drm::binder::{DrmCall, Transport, TransportKind};
use wideleak::android_drm::netserver::{TcpBinder, TcpDrmServer};
use wideleak::android_drm::reactor::ReactorConfig;
use wideleak::attack::recover::{attack_all, attack_app};
use wideleak::bmff::types::WIDEVINE_SYSTEM_ID;
use wideleak::device::catalog::DeviceModel;
use wideleak::load::{run_fleet, run_load, Congestion, FleetConfig, LoadConfig};
use wideleak::monitor::adapt::{render_adapt, run_adapt_study};
use wideleak::monitor::campaign::{run_campaign, CampaignConfig, ShardRunner, WorkerCommand};
use wideleak::monitor::report::{render_call_histogram, render_insights, render_table_1};
use wideleak::monitor::resilience::{render_q5, run_resilience_study_on};
use wideleak::monitor::study::{run_study, study_app};
use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
use wideleak::telemetry;
use wideleak::telemetry::trace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: wideleak [--fast] [--seed N] [--quick] [--transport KIND] \
         [--telemetry FILE.jsonl] [--trace FILE.jsonl] <command>\n\
         commands:\n\
           study [slug]   regenerate Table I (or one app's findings)\n\
           attack [slug]  run the CVE-2021-0639 pipeline\n\
           spoof          run the forged-L1 HD experiment (Section V-C)\n\
           play <slug>    one instrumented playback with a Figure-1 trace\n\
           resilience     run the Q5 fault-schedule sweep (--quick: 4 apps)\n\
           adapt          run the adaptation study under congestion (--quick: 4 apps)\n\
           load           drive the fleet load generator (--quick: CI size)\n\
                          --fleet N holds N concurrent TCP devices against one reactor server\n\
                          --congestion steady|constricted runs adaptive plays on constrained links\n\
           campaign       run the sharded catalog campaign (--quick: CI size)\n\
                          --workers N shards across N worker processes\n\
                          --devices N / --sample-every N override the catalog sweep\n\
           serve [ADDR]   run a wire-framed TCP media DRM server (default 127.0.0.1:7564)\n\
                          --metrics ADDR adds a live Prometheus /metrics endpoint\n\
                          --worker runs as a campaign shard worker (prints WORKER_READY)\n\
           call ADDR [N]  drive N license-path probes against a remote serve (default 1)\n\
           stats FILE     re-render a telemetry JSONL export as a summary\n\
           trace FILE...  analyse trace JSONL sinks (phases, exemplars, faults)\n\
         --transport picks the binder: inprocess (default), threaded, or tcp\n\
         --trace FILE.jsonl records distributed trace spans (durable on ctrl-c)"
    );
    ExitCode::FAILURE
}

/// Set by the SIGINT handler; `serve` polls it so ctrl-c unwinds
/// `main` normally and the trace sink's drop flush runs.
static SIGINT_RECEIVED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_signum: i32) {
    SIGINT_RECEIVED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler via the C `signal(2)` shim — the one
/// spot in the workspace that needs FFI, kept to this binary crate
/// (the libraries all `forbid(unsafe_code)`).
fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Writes the collected telemetry to `path` and prints the stats
/// summary when `print_summary` is set (after `study`/`attack` runs).
fn export_telemetry(path: &str, print_summary: bool) {
    let snapshot = telemetry::snapshot();
    let jsonl = telemetry::to_jsonl(&snapshot);
    if let Err(e) = std::fs::write(path, &jsonl) {
        eprintln!("telemetry: failed to write {path}: {e}");
    } else {
        eprintln!("telemetry: wrote {} lines to {path}", jsonl.lines().count());
    }
    if print_summary {
        println!("{}", telemetry::summary_table(&snapshot));
    }
}

fn main() -> ExitCode {
    let mut config = EcosystemConfig::default();
    let mut telemetry_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut transport_flag: Option<TransportKind> = None;
    let mut fleet_devices: Option<usize> = None;
    let mut congestion = Congestion::None;
    let mut quick = false;
    let mut worker_mode = false;
    let mut campaign_workers: Option<usize> = None;
    let mut campaign_devices: Option<u64> = None;
    let mut campaign_sample_every: Option<u64> = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => config.rsa_bits = 768,
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => config.seed = seed,
                None => return usage(),
            },
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => return usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return usage(),
            },
            "--metrics" => match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => return usage(),
            },
            "--fleet" => match args.next().and_then(|v| v.parse().ok()) {
                Some(devices) => fleet_devices = Some(devices),
                None => return usage(),
            },
            "--worker" => worker_mode = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => campaign_workers = Some(n),
                None => return usage(),
            },
            "--devices" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => campaign_devices = Some(n),
                None => return usage(),
            },
            "--sample-every" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => campaign_sample_every = Some(n),
                None => return usage(),
            },
            "--congestion" => match args.next().as_deref().and_then(Congestion::parse) {
                Some(preset) => congestion = preset,
                None => return usage(),
            },
            "--transport" => match args.next().and_then(|v| v.parse::<TransportKind>().ok()) {
                Some(kind) => {
                    config.transport = kind;
                    transport_flag = Some(kind);
                }
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => positional.push(arg),
        }
    }
    let Some(command) = positional.first().map(String::as_str) else {
        return usage();
    };
    let slug = positional.get(1).map(String::as_str);

    // `stats` operates on a prior run's export; no ecosystem needed.
    if command == "stats" {
        let Some(path) = slug else {
            return usage();
        };
        return match std::fs::read_to_string(path) {
            Ok(text) => {
                let run = telemetry::export::parse_jsonl(&text);
                print!("{}", telemetry::export::parsed_summary_table(&run));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("stats: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // `trace` analyses prior runs' trace sinks; no ecosystem needed.
    // Multiple files merge — feed the client's and the server's sinks
    // together to reassemble cross-process traces.
    if command == "trace" {
        let files = &positional[1..];
        if files.is_empty() {
            return usage();
        }
        let mut spans = Vec::new();
        for path in files {
            match std::fs::read_to_string(path) {
                Ok(text) => spans.extend(trace::parse_jsonl(&text)),
                Err(e) => {
                    eprintln!("trace: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        print!("{}", telemetry::trace_report::render_trace_report(&spans));
        return ExitCode::SUCCESS;
    }

    if telemetry_path.is_some() {
        telemetry::enable();
        telemetry::event("info", format!("run start: {command} {}", slug.unwrap_or("")));
    }
    // The sink handle lives for the rest of main: dropping it (normal
    // exit or the SIGINT unwind below) flushes buffered spans.
    let _trace_sink = match &trace_path {
        Some(path) => {
            trace::enable();
            trace::set_process_label(command);
            match trace::FileSink::create(std::path::Path::new(path)) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    eprintln!("trace: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let seed = config.seed;
    let transport = config.transport;

    // `call` is a thin remote DRM client: all session state lives in
    // the `serve` process, so a probe needs nothing but the socket.
    // With `--trace` on both ends, the merged sinks reassemble each
    // probe into one multi-process trace.
    if command == "call" {
        let Some(addr) = slug else {
            return usage();
        };
        let count: usize = positional.get(2).and_then(|v| v.parse().ok()).unwrap_or(1);
        let Ok(sock_addr) = addr.parse() else {
            eprintln!("call: bad address {addr}");
            return ExitCode::FAILURE;
        };
        let binder = match TcpBinder::connect(sock_addr).pool_size(2).build() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("call: cannot connect {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut failures = 0usize;
        for i in 0..count {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&(i as u64).to_le_bytes());
            nonce[8..].copy_from_slice(&seed.to_le_bytes());
            let outcome = binder
                .transact(DrmCall::IsSchemeSupported { uuid: WIDEVINE_SYSTEM_ID })
                .and_then(|_| binder.transact(DrmCall::OpenSession { nonce }))
                .and_then(wideleak::android_drm::binder::DrmReply::into_session_id)
                .and_then(|sid| {
                    let probe = binder.transact(DrmCall::IsProvisioned);
                    let _ = binder.transact(DrmCall::CloseSession { session_id: sid });
                    probe
                });
            match outcome {
                Ok(reply) => println!("call {i}: ok ({reply:?})"),
                Err(e) => {
                    failures += 1;
                    eprintln!("call {i}: {e}");
                }
            }
        }
        trace::flush();
        return if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    // `campaign` is the coordinator: it spawns copies of this binary in
    // `serve --worker` mode and never boots an ecosystem itself (the
    // workers each build their own from the derived shard seed).
    if command == "campaign" {
        let mut cc = if quick { CampaignConfig::quick(seed) } else { CampaignConfig::full(seed) };
        if let Some(n) = campaign_workers {
            cc.workers = n;
        }
        if let Some(n) = campaign_devices {
            cc.spec.devices = n;
        }
        if let Some(n) = campaign_sample_every {
            cc.spec.sample_every = n;
        }
        let cmd = match WorkerCommand::current_exe() {
            Ok(cmd) => cmd,
            Err(e) => {
                eprintln!("campaign: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "wideleak: campaign over {} devices x {} workers (seed {seed})",
            cc.spec.devices, cc.workers
        );
        return match run_campaign(&cc, &cmd) {
            Ok(report) => {
                print!("{}", report.render());
                trace::flush();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("campaign failed: {e} [{}]", e.class());
                ExitCode::FAILURE
            }
        };
    }

    // `serve --worker` is the campaign shard worker: a campaign-enabled
    // DRM endpoint on an ephemeral port, announced on stdout for the
    // coordinator. It exits on coordinator request, on SIGINT, or when
    // the coordinator's stdin pipe closes — so a killed coordinator
    // takes its workers down instead of leaking them.
    if command == "serve" && worker_mode {
        let addr = slug.unwrap_or("127.0.0.1:0");
        let runner = std::sync::Arc::new(ShardRunner::new());
        // The worker-level server only answers control frames and ad-hoc
        // DRM probes; shards build their own ecosystems from the spec's
        // rsa_bits, so small keys here just make spawning cheap.
        let mut worker_config = config;
        worker_config.rsa_bits = 768;
        let eco = Ecosystem::new(worker_config);
        let drm = std::sync::Arc::new(eco.media_drm_server(DeviceModel::pixel_6()));
        let server = match TcpDrmServer::bind_campaign(
            addr,
            drm,
            ReactorConfig::default(),
            runner.clone(),
        ) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("serve: cannot bind worker {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        install_sigint_handler();
        use std::io::Write as _;
        println!("WORKER_READY {}", server.local_addr());
        let _ = std::io::stdout().flush();
        let orphaned = std::sync::Arc::new(AtomicBool::new(false));
        {
            // Watchdog: block on stdin until the coordinator's pipe
            // closes (its WorkerProcess guard holds the write end).
            let orphaned = orphaned.clone();
            std::thread::spawn(move || {
                let mut sink = Vec::new();
                let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
                orphaned.store(true, Ordering::SeqCst);
            });
        }
        while !runner.shutdown_requested()
            && !SIGINT_RECEIVED.load(Ordering::SeqCst)
            && !orphaned.load(Ordering::SeqCst)
        {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        drop(server);
        trace::flush();
        return ExitCode::SUCCESS;
    }

    // `serve` exports a standalone media DRM server; it never installs
    // apps or boots a device stack.
    if command == "serve" {
        let addr = slug.unwrap_or("127.0.0.1:7564");
        let metrics = match &metrics_addr {
            Some(maddr) => {
                // The exposition endpoint publishes the live registry;
                // enable collection so there is something to scrape.
                telemetry::enable();
                match telemetry::ExpositionServer::bind(maddr) {
                    Ok(server) => {
                        println!(
                            "wideleak: metrics endpoint on http://{}/metrics",
                            server.local_addr()
                        );
                        Some(server)
                    }
                    Err(e) => {
                        eprintln!("serve: cannot bind metrics {maddr}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => None,
        };
        let eco = Ecosystem::new(config);
        let drm = eco.media_drm_server(DeviceModel::pixel_6());
        return match TcpDrmServer::bind(addr, drm) {
            Ok(server) => {
                install_sigint_handler();
                println!(
                    "wideleak: media DRM server listening on {} (wire v3; ctrl-c to stop)",
                    server.local_addr()
                );
                while !SIGINT_RECEIVED.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                eprintln!("wideleak: shutting down");
                drop(server);
                drop(metrics);
                trace::flush();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve: cannot bind {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let eco = Ecosystem::new(config);

    let code = match (command, slug) {
        ("study", None) => match run_study(&eco) {
            Ok(report) => {
                println!("{}", render_table_1(&report));
                println!("{}", render_insights(&report));
                print!("{}", render_call_histogram(&report));
                ExitCode::SUCCESS
            }
            Err(e) => {
                telemetry::event("error", format!("study failed: {e} [{}]", e.class()));
                eprintln!("study failed: {e}");
                ExitCode::FAILURE
            }
        },
        ("study", Some(slug)) => match study_app(&eco, slug) {
            Ok(findings) => {
                println!("{findings:#?}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                telemetry::event("error", format!("study failed: {e} [{}]", e.class()));
                eprintln!("study failed: {e}");
                ExitCode::FAILURE
            }
        },
        ("attack", None) => {
            let outcomes = attack_all(&eco);
            for o in &outcomes {
                let status = if o.succeeded() {
                    format!(
                        "DRM-free media at {:?}",
                        o.media.as_ref().and_then(|m| m.best_resolution())
                    )
                } else {
                    format!(
                        "blocked ({})",
                        o.failure.as_ref().map_or("?".into(), |e| e.to_string())
                    )
                };
                println!("{:<22} {status}", o.app_name);
            }
            ExitCode::SUCCESS
        }
        ("attack", Some(slug)) => {
            let o = attack_app(&eco, slug);
            println!("{o:#?}");
            if o.succeeded() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        ("spoof", _) => {
            match wideleak::attack::hd_spoof::hd_spoof_experiment(&eco, slug.unwrap_or("netflix")) {
                Ok(outcome) => {
                    println!(
                        "best height: {:?}; HD leaked: {}",
                        outcome.best_height,
                        outcome.got_hd_keys()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("spoof failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("resilience", _) => {
            let report = run_resilience_study_on(seed, quick, transport);
            println!("{}", render_q5(&report));
            ExitCode::SUCCESS
        }
        ("adapt", _) => {
            let report = run_adapt_study(seed, quick);
            println!("{}", render_adapt(&report));
            ExitCode::SUCCESS
        }
        ("load", _) => {
            if let Some(devices) = fleet_devices {
                // High-concurrency fleet: always over TCP (it measures
                // the reactor transport, not the study paths).
                let base = if quick { FleetConfig::quick() } else { FleetConfig::default() };
                let fleet_config = FleetConfig { devices, seed, ..base };
                let report = run_fleet(&fleet_config);
                print!("{}", report.render(&fleet_config));
                if report.clean() {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("load: fleet run was not clean");
                    ExitCode::FAILURE
                }
            } else {
                let base = if quick { LoadConfig::quick() } else { LoadConfig::default() };
                let load_config = LoadConfig {
                    seed,
                    // The fleet defaults to the threaded binder; only a
                    // `--transport` flag overrides it.
                    transport: transport_flag.unwrap_or(base.transport),
                    congestion,
                    ..base
                };
                let report = run_load(&load_config);
                print!("{}", report.render());
                ExitCode::SUCCESS
            }
        }
        ("play", Some(slug)) => {
            let stack = eco.boot_device(DeviceModel::pixel_6(), true);
            let app = eco.install_app(&stack, slug, "cli-user");
            stack.device.hook_engine().start_recording();
            match app.play("title-001") {
                Ok(outcome) => {
                    let log = stack.device.hook_engine().stop_recording();
                    println!(
                        "played at {}x{} ({} video samples)",
                        outcome.resolution.0,
                        outcome.resolution.1,
                        outcome.video_samples.len()
                    );
                    if let Some(trace) = outcome.trace {
                        for step in trace.steps() {
                            println!("  {step:?}");
                        }
                    }
                    println!("{} CDM calls intercepted", log.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("playback failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => return usage(),
    };

    if let Some(path) = &telemetry_path {
        export_telemetry(path, matches!(command, "study" | "attack"));
    }
    code
}
