//! # WideLeak — a full-system reproduction of "WideLeak: How Over-the-Top
//! Platforms Fail in Android" (DSN 2022)
//!
//! This facade crate re-exports the whole workspace and offers a
//! one-call API for the paper's two headline experiments:
//!
//! - [`run_full_study`] — Table I: how the ten evaluated OTT apps use
//!   Widevine (Q1–Q4), re-derived by the monitoring tool from hook traces
//!   and intercepted traffic;
//! - [`run_full_attack`] — §IV-D: the CVE-2021-0639 pipeline recovering
//!   DRM-free media from every app that still serves discontinued
//!   devices.
//!
//! # Quickstart
//!
//! ```
//! use wideleak::ott::ecosystem::{Ecosystem, EcosystemConfig};
//!
//! // Small RSA keys keep doctests fast; defaults are production-sized.
//! let eco = Ecosystem::new(EcosystemConfig::fast_for_tests());
//! let findings = wideleak::monitor::study::study_app(&eco, "netflix")?;
//! assert_eq!(
//!     findings.assets.audio,
//!     wideleak::monitor::classify::Protection::Clear,
//!     "the paper's headline Netflix finding",
//! );
//! # Ok::<(), wideleak::monitor::MonitorError>(())
//! ```
//!
//! # Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`bigint`] | `wideleak-bigint` | arbitrary-precision arithmetic |
//! | [`crypto`] | `wideleak-crypto` | AES/CMAC/SHA/HMAC/RSA/CRC-32 from scratch |
//! | [`bmff`] | `wideleak-bmff` | ISO-BMFF (MP4) box codec |
//! | [`cenc`] | `wideleak-cenc` | ISO/IEC 23001-7 common encryption |
//! | [`dash`] | `wideleak-dash` | MPD model + minimal XML |
//! | [`tee`] | `wideleak-tee` | TrustZone-style secure world |
//! | [`device`] | `wideleak-device` | handset simulator: memory, hooks, pinned TLS |
//! | [`cdm`] | `wideleak-cdm` | the Widevine CDM: keybox, ladder, L1/L3 |
//! | [`android_drm`] | `wideleak-android-drm` | MediaDrm/MediaCrypto/MediaCodec |
//! | [`ott`] | `wideleak-ott` | CDN, license/provisioning servers, 10 apps |
//! | [`faults`] | `wideleak-faults` | seeded fault injection + resilience policies |
//! | [`monitor`] | `wideleak-monitor` | the WideLeak study tool (Table I) |
//! | [`attack`] | `wideleak-attack` | the CVE-2021-0639 proof of concept |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wideleak_android_drm as android_drm;
pub use wideleak_attack as attack;
pub use wideleak_bigint as bigint;
pub use wideleak_bmff as bmff;
pub use wideleak_cdm as cdm;
pub use wideleak_cenc as cenc;
pub use wideleak_crypto as crypto;
pub use wideleak_dash as dash;
pub use wideleak_device as device;
pub use wideleak_faults as faults;
pub use wideleak_load as load;
pub use wideleak_monitor as monitor;
pub use wideleak_ott as ott;
pub use wideleak_tee as tee;
pub use wideleak_telemetry as telemetry;

use wideleak_attack::recover::AttackOutcome;
use wideleak_monitor::study::StudyReport;
use wideleak_monitor::MonitorError;
use wideleak_ott::ecosystem::{Ecosystem, EcosystemConfig};

/// Boots a fresh ecosystem and runs the complete Table-I study.
///
/// # Errors
///
/// Propagates instrumentation failures from the monitor.
///
/// # Examples
///
/// ```no_run
/// let report = wideleak::run_full_study(
///     wideleak::ott::ecosystem::EcosystemConfig::default(),
/// )?;
/// println!("{}", wideleak::monitor::report::render_table_1(&report));
/// # Ok::<(), wideleak::monitor::MonitorError>(())
/// ```
pub fn run_full_study(config: EcosystemConfig) -> Result<StudyReport, MonitorError> {
    let eco = Ecosystem::new(config);
    wideleak_monitor::study::run_study(&eco)
}

/// Boots a fresh ecosystem and runs the §IV-D attack sweep over all ten
/// apps on the discontinued device.
pub fn run_full_attack(config: EcosystemConfig) -> Vec<AttackOutcome> {
    let eco = Ecosystem::new(config);
    wideleak_attack::recover::attack_all(&eco)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_study_smoke() {
        let report = run_full_study(EcosystemConfig::fast_for_tests()).unwrap();
        assert_eq!(report.findings.len(), 10);
    }

    #[test]
    fn facade_attack_smoke() {
        let outcomes = run_full_attack(EcosystemConfig::fast_for_tests());
        assert_eq!(outcomes.iter().filter(|o| o.succeeded()).count(), 6);
    }
}
