//! AES-128 block cipher (FIPS 197).
//!
//! The S-box, inverse S-box and round constants are computed at first use
//! from the GF(2⁸) field definition rather than transcribed as literal
//! tables; the FIPS-197 test vectors in this module pin the result.

use std::sync::OnceLock;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const ROUNDS: usize = 10;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

/// Multiplication in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) via a^254 (Fermat in the field group).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for (i, entry) in sbox.iter_mut().enumerate() {
            let x = gf_inv(i as u8);
            // Affine transform: b ^= rotl(b,1..4) ^ 0x63.
            let mut y = x;
            for r in 1..5 {
                y ^= x.rotate_left(r);
            }
            y ^= 0x63;
            *entry = y;
            inv_sbox[y as usize] = i as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// An expanded AES-128 key schedule ready for block operations.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::aes::Aes128;
///
/// let cipher = Aes128::new(&[0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///                            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
/// let mut block = *b"theblockis16byte";
/// let original = block;
/// cipher.encrypt_block(&mut block);
/// cipher.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key schedule material through Debug.
        f.write_str("Aes128(<key schedule redacted>)")
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..w.len() {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for r in 0..=ROUNDS {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let t = tables();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block, &t.sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let t = tables();
        add_round_key(block, &self.round_keys[ROUNDS]);
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        for round in (1..ROUNDS).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            sub_bytes(block, &t.inv_sbox);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

/// The AES state is column-major: byte `state[c*4 + r]` is row `r`, col `c`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[((c + r) % 4) * 4 + r] = s[c * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("column is 4 bytes");
        state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("column is 4 bytes");
        state[c * 4] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[c * 4 + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[c * 4 + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[c * 4 + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_spot_checks() {
        let t = tables();
        // Well-known S-box entries.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        // Inverse really inverts.
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gf_mul_examples() {
        // {57} * {83} = {c1} from FIPS-197 section 4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
        assert_eq!(gf_mul(0x00, 0xab), 0x00);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: AES-128 known-answer test.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let cipher = Aes128::new(&key);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        cipher.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B worked example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn round_trips_random_blocks() {
        let cipher = Aes128::new(&[7u8; 16]);
        for seed in 0u8..32 {
            let mut block = [seed; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_add(i as u8).wrapping_mul(31);
            }
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_differ() {
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        Aes128::new(&[1u8; 16]).encrypt_block(&mut a);
        Aes128::new(&[2u8; 16]).encrypt_block(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_keys() {
        let s = format!("{:?}", Aes128::new(&[9u8; 16]));
        assert!(s.contains("redacted"));
        assert!(!s.contains('9'));
    }
}
