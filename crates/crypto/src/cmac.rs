//! AES-CMAC (RFC 4493) — the MAC at the heart of the Widevine key ladder.
//!
//! The real CDM derives session keys from the keybox device key (and content
//! keys from session keys) with AES-CMAC over structured derivation buffers;
//! `wideleak-cdm::ladder` reproduces that construction on top of this module.

use crate::aes::{Aes128, BLOCK_LEN};

const RB: u8 = 0x87;

/// Doubles a value in GF(2^128) as defined by the CMAC subkey derivation.
fn dbl(block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
    let mut out = [0u8; BLOCK_LEN];
    let mut carry = 0u8;
    for i in (0..BLOCK_LEN).rev() {
        out[i] = block[i] << 1 | carry;
        carry = block[i] >> 7;
    }
    if carry != 0 {
        out[BLOCK_LEN - 1] ^= RB;
    }
    out
}

/// Computes AES-CMAC over `message` with the given cipher.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::aes::Aes128;
/// use wideleak_crypto::cmac::aes_cmac;
///
/// let mac = aes_cmac(&Aes128::new(&[0u8; 16]), b"derivation context");
/// assert_eq!(mac.len(), 16);
/// ```
pub fn aes_cmac(cipher: &Aes128, message: &[u8]) -> [u8; BLOCK_LEN] {
    // Subkeys K1 (complete final block) and K2 (padded final block).
    let mut l = [0u8; BLOCK_LEN];
    cipher.encrypt_block(&mut l);
    let k1 = dbl(&l);
    let k2 = dbl(&k1);

    let n_blocks = message.len().div_ceil(BLOCK_LEN).max(1);
    let complete_last = !message.is_empty() && message.len().is_multiple_of(BLOCK_LEN);

    let mut x = [0u8; BLOCK_LEN];
    for i in 0..n_blocks - 1 {
        let chunk = &message[i * BLOCK_LEN..(i + 1) * BLOCK_LEN];
        for j in 0..BLOCK_LEN {
            x[j] ^= chunk[j];
        }
        cipher.encrypt_block(&mut x);
    }

    let mut last = [0u8; BLOCK_LEN];
    let tail = &message[(n_blocks - 1) * BLOCK_LEN..];
    if complete_last {
        for j in 0..BLOCK_LEN {
            last[j] = tail[j] ^ k1[j];
        }
    } else {
        last[..tail.len()].copy_from_slice(tail);
        last[tail.len()] = 0x80;
        for j in 0..BLOCK_LEN {
            last[j] ^= k2[j];
        }
    }
    for j in 0..BLOCK_LEN {
        x[j] ^= last[j];
    }
    cipher.encrypt_block(&mut x);
    x
}

/// Convenience wrapper taking a raw 16-byte key.
pub fn aes_cmac_with_key(key: &[u8; 16], message: &[u8]) -> [u8; BLOCK_LEN] {
    aes_cmac(&Aes128::new(key), message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn rfc_key() -> [u8; 16] {
        hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap()
    }

    #[test]
    fn rfc4493_example_1_empty_message() {
        let mac = aes_cmac_with_key(&rfc_key(), b"");
        assert_eq!(mac.to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        let mac = aes_cmac_with_key(&rfc_key(), &msg);
        assert_eq!(mac.to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411",
        ));
        let mac = aes_cmac_with_key(&rfc_key(), &msg);
        assert_eq!(mac.to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example_4_four_blocks() {
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        let mac = aes_cmac_with_key(&rfc_key(), &msg);
        assert_eq!(mac.to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn distinct_messages_distinct_macs() {
        let key = [3u8; 16];
        assert_ne!(aes_cmac_with_key(&key, b"context-a"), aes_cmac_with_key(&key, b"context-b"));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(
            aes_cmac_with_key(&[1u8; 16], b"same message"),
            aes_cmac_with_key(&[2u8; 16], b"same message")
        );
    }

    #[test]
    fn deterministic() {
        let key = [5u8; 16];
        assert_eq!(aes_cmac_with_key(&key, b"widevine"), aes_cmac_with_key(&key, b"widevine"));
    }

    #[test]
    fn length_extension_does_not_collide() {
        // A message and its zero-extended sibling must differ (padding rules).
        let key = [7u8; 16];
        let short = aes_cmac_with_key(&key, &[0u8; 15]);
        let long = aes_cmac_with_key(&key, &[0u8; 16]);
        assert_ne!(short, long);
    }
}
