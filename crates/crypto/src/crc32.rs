//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The Widevine keybox carries a CRC-32 over its first 124 bytes; the
//! memory-scanning attack in `wideleak-attack` validates scan candidates
//! against it, exactly as the paper's PoC does.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::crc32::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// An incremental CRC-32 state for streaming input.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Absorbs more input.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Returns the final checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_values() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..300).map(|i| (i * 3 % 256) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(11) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        data[40] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
