//! Constant-time comparison helpers.
//!
//! The simulated CDM verifies MACs and signatures with these rather than
//! `==` so that the simulation's API mirrors what hardened code must do
//! (the paper's §IV-D intercepts derivation buffers precisely because the
//! real CDM cannot be broken through timing here).

/// Compares two byte slices in time independent of where they differ.
///
/// Returns `false` immediately only on length mismatch (length is public).
///
/// # Examples
///
/// ```
/// use wideleak_crypto::ct::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tagg"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[255]));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(&[1], &[1, 0]));
        assert!(!ct_eq(&[1, 2], &[1]));
    }

    #[test]
    fn first_and_last_byte_differences() {
        assert!(!ct_eq(&[9, 0, 0], &[0, 0, 0]));
        assert!(!ct_eq(&[0, 0, 9], &[0, 0, 0]));
    }
}
