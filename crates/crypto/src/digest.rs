//! The [`Digest`] abstraction shared by SHA-1, SHA-256, HMAC and MGF1.

/// An incremental cryptographic hash function.
///
/// Implemented by [`crate::sha1::Sha1`] and [`crate::sha256::Sha256`];
/// [`crate::hmac::Hmac`] and the RSA-OAEP mask generation function are
/// generic over it.
pub trait Digest: Clone {
    /// Internal block length in bytes (HMAC needs this).
    const BLOCK_LEN: usize;
    /// Output length in bytes.
    const OUTPUT_LEN: usize;

    /// Creates a fresh hasher.
    fn new() -> Self;

    /// Absorbs more input.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
