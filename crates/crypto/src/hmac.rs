//! HMAC (RFC 2104) generic over any [`Digest`].

use crate::digest::Digest;

/// An incremental HMAC instance.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::hmac::Hmac;
/// use wideleak_crypto::sha256::Sha256;
///
/// let tag = Hmac::<Sha256>::mac(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct Hmac<D: Digest> {
    inner: D,
    outer_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let digest = D::digest(key);
            block_key[..digest.len()].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let ipad: Vec<u8> = block_key.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = block_key.iter().map(|b| b ^ 0x5c).collect();

        let mut inner = D::new();
        inner.update(&ipad);
        Hmac { inner, outer_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the authentication tag.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot HMAC.
    pub fn mac(key: &[u8], message: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn hexify(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let tag = Hmac::<Sha256>::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hexify(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hexify(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_binary_data() {
        let tag = Hmac::<Sha256>::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hexify(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than the block length must be hashed first.
        let key = vec![0xaa; 131];
        let tag =
            Hmac::<Sha256>::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hexify(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc2202_sha1_case_1() {
        let tag = Hmac::<Sha1>::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(hexify(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_case_2() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hexify(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key = hex("0102030405");
        let data: Vec<u8> = (0..500).map(|i| (i % 256) as u8).collect();
        let mut h = Hmac::<Sha256>::new(&key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(&key, &data));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(Hmac::<Sha256>::mac(b"key-a", b"msg"), Hmac::<Sha256>::mac(b"key-b", b"msg"));
    }
}
