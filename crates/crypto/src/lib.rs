//! From-scratch cryptographic primitives for the WideLeak reproduction.
//!
//! The simulated Widevine CDM (`wideleak-cdm`) needs exactly the primitives
//! that the paper's reverse engineering identified inside the real CDM:
//!
//! - **AES-128** ([`aes`]) with ECB/CBC/CTR modes ([`modes`]) and PKCS#7
//!   padding ([`pad`]) — content keys and the keybox device key are AES-128.
//! - **AES-CMAC** ([`cmac`], RFC 4493) — the key-ladder derivation MAC.
//! - **SHA-1 / SHA-256 / HMAC** ([`sha1`], [`sha256`], [`hmac`]) — request
//!   signing and OAEP.
//! - **RSA-2048** ([`rsa`]) — the provisioned Device RSA Key that protects
//!   session keys (RSA-OAEP) and signs license requests (PKCS#1 v1.5).
//! - **CRC-32** ([`crc32`]) — the keybox integrity field.
//!
//! Everything is implemented on top of [`wideleak_bigint`] with no external
//! cryptography dependency, mirroring the paper's own stand-alone
//! re-implementation of the Widevine key ladder (§IV-D).
//!
//! # Examples
//!
//! ```
//! use wideleak_crypto::aes::Aes128;
//! use wideleak_crypto::modes::ctr_xcrypt;
//!
//! let key = Aes128::new(&[0u8; 16]);
//! let nonce = [1u8; 16];
//! let ciphertext = ctr_xcrypt(&key, &nonce, b"over-the-top media");
//! assert_eq!(ctr_xcrypt(&key, &nonce, &ciphertext), b"over-the-top media");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod crc32;
pub mod ct;
pub mod digest;
pub mod hmac;
pub mod modes;
pub mod pad;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod sha256;

/// Errors produced by the primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Input length is not a whole number of cipher blocks.
    NotBlockAligned {
        /// Offending input length in bytes.
        len: usize,
    },
    /// PKCS#7 (or other) padding failed verification.
    BadPadding,
    /// An RSA message or ciphertext does not fit the modulus.
    MessageTooLong,
    /// An RSA ciphertext/signature failed structural checks on decryption
    /// or verification.
    DecryptionFailed,
    /// A signature did not verify.
    BadSignature,
    /// A key had the wrong length or structure.
    InvalidKey,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::NotBlockAligned { len } => {
                write!(f, "input of {len} bytes is not block aligned")
            }
            CryptoError::BadPadding => f.write_str("padding verification failed"),
            CryptoError::MessageTooLong => f.write_str("message too long for RSA modulus"),
            CryptoError::DecryptionFailed => f.write_str("decryption failed"),
            CryptoError::BadSignature => f.write_str("signature verification failed"),
            CryptoError::InvalidKey => f.write_str("invalid key material"),
        }
    }
}

impl std::error::Error for CryptoError {}
