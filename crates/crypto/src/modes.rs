//! Block-cipher modes of operation over [`Aes128`]: ECB, CBC and CTR.
//!
//! CTR is the mode CENC `cenc` uses for subsample encryption; CBC backs the
//! `cbcs` pattern scheme and the keybox wrapping; ECB only exists as a
//! building block (and to demonstrate why it is never used for content).

use crate::aes::{Aes128, BLOCK_LEN};
use crate::pad::{pkcs7_pad, pkcs7_unpad};
use crate::CryptoError;

/// Encrypts whole blocks in ECB mode (no padding).
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] if `data` is not a multiple of
/// 16 bytes.
pub fn ecb_encrypt(cipher: &Aes128, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::NotBlockAligned { len: data.len() });
    }
    let mut out = data.to_vec();
    for chunk in out.chunks_exact_mut(BLOCK_LEN) {
        let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
    }
    Ok(out)
}

/// Decrypts whole blocks in ECB mode (no padding).
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] if `data` is not a multiple of
/// 16 bytes.
pub fn ecb_decrypt(cipher: &Aes128, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::NotBlockAligned { len: data.len() });
    }
    let mut out = data.to_vec();
    for chunk in out.chunks_exact_mut(BLOCK_LEN) {
        let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("chunk is block sized");
        cipher.decrypt_block(block);
    }
    Ok(out)
}

/// Encrypts with CBC over already-aligned data (no padding applied).
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] for misaligned input.
pub fn cbc_encrypt_raw(
    cipher: &Aes128,
    iv: &[u8; BLOCK_LEN],
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::NotBlockAligned { len: data.len() });
    }
    let mut out = Vec::with_capacity(data.len());
    let mut prev = *iv;
    for chunk in data.chunks_exact(BLOCK_LEN) {
        let mut block = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            block[i] = chunk[i] ^ prev[i];
        }
        cipher.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    Ok(out)
}

/// Decrypts CBC over aligned data (no padding removed).
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] for misaligned input.
pub fn cbc_decrypt_raw(
    cipher: &Aes128,
    iv: &[u8; BLOCK_LEN],
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if !data.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::NotBlockAligned { len: data.len() });
    }
    let mut out = Vec::with_capacity(data.len());
    let mut prev = *iv;
    for chunk in data.chunks_exact(BLOCK_LEN) {
        let mut block: [u8; BLOCK_LEN] = chunk.try_into().expect("chunk is block sized");
        cipher.decrypt_block(&mut block);
        for i in 0..BLOCK_LEN {
            block[i] ^= prev[i];
        }
        prev = chunk.try_into().expect("chunk is block sized");
        out.extend_from_slice(&block);
    }
    Ok(out)
}

/// CBC encryption with PKCS#7 padding — accepts any input length.
pub fn cbc_encrypt_padded(cipher: &Aes128, iv: &[u8; BLOCK_LEN], data: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(data, BLOCK_LEN);
    cbc_encrypt_raw(cipher, iv, &padded).expect("padded data is aligned")
}

/// CBC decryption that strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::NotBlockAligned`] or [`CryptoError::BadPadding`].
pub fn cbc_decrypt_padded(
    cipher: &Aes128,
    iv: &[u8; BLOCK_LEN],
    data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let raw = cbc_decrypt_raw(cipher, iv, data)?;
    pkcs7_unpad(&raw, BLOCK_LEN)
}

/// CTR-mode keystream transform (encryption and decryption are identical).
///
/// The 16-byte `counter_block` is treated as a big-endian counter in its
/// low 8 bytes, matching the CENC `cenc` scheme's IV layout (8-byte IV ||
/// 8-byte block counter).
pub fn ctr_xcrypt(cipher: &Aes128, counter_block: &[u8; BLOCK_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    ctr_xcrypt_in_place(cipher, counter_block, &mut out);
    out
}

/// In-place CTR-mode keystream transform: the hot-path variant of
/// [`ctr_xcrypt`] that XORs the keystream into `data` without allocating.
pub fn ctr_xcrypt_in_place(cipher: &Aes128, counter_block: &[u8; BLOCK_LEN], data: &mut [u8]) {
    let mut counter = *counter_block;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let mut keystream = counter;
        cipher.encrypt_block(&mut keystream);
        for (i, b) in chunk.iter_mut().enumerate() {
            *b ^= keystream[i];
        }
        increment_counter(&mut counter);
    }
}

/// Fills `out` with CTR keystream in whole-block chunks, advancing
/// `counter` in place.
///
/// `out.len()` must be a multiple of the block length; the partial-tail
/// bookkeeping stays with the caller (see `wideleak-cenc`'s stream),
/// which lets it batch full blocks here and buffer only the remainder.
///
/// # Panics
///
/// Panics if `out` is not block-aligned.
pub fn ctr_keystream_into(cipher: &Aes128, counter: &mut [u8; BLOCK_LEN], out: &mut [u8]) {
    assert!(out.len().is_multiple_of(BLOCK_LEN), "keystream buffer must be block aligned");
    for chunk in out.chunks_exact_mut(BLOCK_LEN) {
        chunk.copy_from_slice(counter);
        let block: &mut [u8; BLOCK_LEN] = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
        increment_counter(counter);
    }
}

/// Increments the low 64 bits of a CENC counter block (big-endian),
/// wrapping within those 8 bytes as ISO/IEC 23001-7 specifies.
pub fn increment_counter(counter: &mut [u8; BLOCK_LEN]) {
    for i in (8..BLOCK_LEN).rev() {
        counter[i] = counter[i].wrapping_add(1);
        if counter[i] != 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// NIST SP 800-38A test key.
    fn nist_cipher() -> Aes128 {
        Aes128::new(&hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap())
    }

    /// NIST SP 800-38A four-block plaintext.
    fn nist_plaintext() -> Vec<u8> {
        hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ))
    }

    #[test]
    fn nist_ecb_vectors() {
        let ct = ecb_encrypt(&nist_cipher(), &nist_plaintext()).unwrap();
        assert_eq!(
            ct,
            hex(concat!(
                "3ad77bb40d7a3660a89ecaf32466ef97",
                "f5d3d58503b9699de785895a96fdbaaf",
                "43b1cd7f598ece23881b00e3ed030688",
                "7b0c785e27e8ad3f8223207104725dd4",
            ))
        );
        assert_eq!(ecb_decrypt(&nist_cipher(), &ct).unwrap(), nist_plaintext());
    }

    #[test]
    fn nist_cbc_vectors() {
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let ct = cbc_encrypt_raw(&nist_cipher(), &iv, &nist_plaintext()).unwrap();
        assert_eq!(
            ct,
            hex(concat!(
                "7649abac8119b246cee98e9b12e9197d",
                "5086cb9b507219ee95db113a917678b2",
                "73bed6b8e3c1743b7116e69e22229516",
                "3ff1caa1681fac09120eca307586e1a7",
            ))
        );
        assert_eq!(cbc_decrypt_raw(&nist_cipher(), &iv, &ct).unwrap(), nist_plaintext());
    }

    #[test]
    fn nist_ctr_vectors() {
        let counter: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let ct = ctr_xcrypt(&nist_cipher(), &counter, &nist_plaintext());
        assert_eq!(
            ct,
            hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee",
            ))
        );
        assert_eq!(ctr_xcrypt(&nist_cipher(), &counter, &ct), nist_plaintext());
    }

    #[test]
    fn ecb_rejects_misaligned() {
        assert!(matches!(
            ecb_encrypt(&nist_cipher(), &[0u8; 15]),
            Err(CryptoError::NotBlockAligned { len: 15 })
        ));
        assert!(ecb_decrypt(&nist_cipher(), &[0u8; 17]).is_err());
    }

    #[test]
    fn cbc_padded_round_trip_all_lengths() {
        let cipher = nist_cipher();
        let iv = [0x42u8; 16];
        for len in 0..50 {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = cbc_encrypt_padded(&cipher, &iv, &data);
            assert_eq!(ct.len() % 16, 0);
            assert_eq!(cbc_decrypt_padded(&cipher, &iv, &ct).unwrap(), data);
        }
    }

    #[test]
    fn cbc_padded_detects_tampering() {
        let cipher = nist_cipher();
        let iv = [0u8; 16];
        let mut ct = cbc_encrypt_padded(&cipher, &iv, b"precious content key");
        let last = ct.len() - 1;
        ct[last] ^= 0xff;
        // Either padding fails or the plaintext is garbled — padding check
        // catches the overwhelming majority of corruptions.
        if let Ok(pt) = cbc_decrypt_padded(&cipher, &iv, &ct) {
            assert_ne!(pt, b"precious content key");
        }
    }

    #[test]
    fn ctr_handles_partial_final_block() {
        let cipher = nist_cipher();
        let counter = [9u8; 16];
        let data = b"seventeen bytes!!";
        assert_eq!(data.len(), 17);
        let ct = ctr_xcrypt(&cipher, &counter, data);
        assert_eq!(ct.len(), 17);
        assert_eq!(ctr_xcrypt(&cipher, &counter, &ct), data);
    }

    #[test]
    fn ctr_empty_input() {
        assert!(ctr_xcrypt(&nist_cipher(), &[0u8; 16], &[]).is_empty());
    }

    #[test]
    fn ctr_in_place_matches_allocating_variant() {
        let cipher = nist_cipher();
        let counter: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 64, 100] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            let expected = ctr_xcrypt(&cipher, &counter, &data);
            let mut buf = data.clone();
            ctr_xcrypt_in_place(&cipher, &counter, &mut buf);
            assert_eq!(buf, expected, "len={len}");
            ctr_xcrypt_in_place(&cipher, &counter, &mut buf);
            assert_eq!(buf, data, "len={len} round-trip");
        }
    }

    #[test]
    fn keystream_into_matches_per_block_path() {
        let cipher = nist_cipher();
        let start: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        for blocks in [0usize, 1, 2, 7, 32] {
            let mut counter = start;
            let mut batched = vec![0u8; blocks * BLOCK_LEN];
            ctr_keystream_into(&cipher, &mut counter, &mut batched);
            // Reference: XOR of zeros against the one-block-at-a-time path.
            let expected = ctr_xcrypt(&cipher, &start, &vec![0u8; blocks * BLOCK_LEN]);
            assert_eq!(batched, expected, "blocks={blocks}");
            // The counter must have advanced exactly `blocks` times.
            let mut manual = start;
            for _ in 0..blocks {
                increment_counter(&mut manual);
            }
            assert_eq!(counter, manual, "blocks={blocks}");
        }
    }

    #[test]
    #[should_panic(expected = "block aligned")]
    fn keystream_into_rejects_misaligned_buffer() {
        let mut counter = [0u8; 16];
        ctr_keystream_into(&nist_cipher(), &mut counter, &mut [0u8; 17]);
    }

    #[test]
    fn counter_increment_wraps_low_64_bits_only() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        assert_eq!(&c[..8], &[0xff; 8], "IV half must not change");
        assert_eq!(&c[8..], &[0u8; 8], "counter half wraps");
    }

    #[test]
    fn cbc_iv_sensitivity() {
        let cipher = nist_cipher();
        let a = cbc_encrypt_padded(&cipher, &[0u8; 16], b"same plaintext");
        let b = cbc_encrypt_padded(&cipher, &[1u8; 16], b"same plaintext");
        assert_ne!(a, b);
    }
}
