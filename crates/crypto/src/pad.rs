//! PKCS#7 padding (RFC 5652 §6.3) for block-cipher modes.

use crate::CryptoError;

/// Appends PKCS#7 padding bringing `data` to a multiple of `block_len`.
///
/// A full block of padding is added when the input is already aligned, so
/// padding is always removable unambiguously.
///
/// # Panics
///
/// Panics if `block_len` is zero or greater than 255.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::pad::{pkcs7_pad, pkcs7_unpad};
///
/// let padded = pkcs7_pad(b"abc", 8);
/// assert_eq!(padded, vec![b'a', b'b', b'c', 5, 5, 5, 5, 5]);
/// assert_eq!(pkcs7_unpad(&padded, 8).unwrap(), b"abc");
/// ```
pub fn pkcs7_pad(data: &[u8], block_len: usize) -> Vec<u8> {
    assert!(block_len > 0 && block_len <= 255, "block length must be 1..=255");
    let pad = block_len - data.len() % block_len;
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Strips and verifies PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::BadPadding`] when the input is empty, not block
/// aligned, or the padding bytes are inconsistent.
pub fn pkcs7_unpad(data: &[u8], block_len: usize) -> Result<Vec<u8>, CryptoError> {
    if data.is_empty() || !data.len().is_multiple_of(block_len) {
        return Err(CryptoError::BadPadding);
    }
    let pad = *data.last().expect("non-empty input") as usize;
    if pad == 0 || pad > block_len || pad > data.len() {
        return Err(CryptoError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CryptoError::BadPadding);
    }
    Ok(data[..data.len() - pad].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_unaligned_input() {
        let p = pkcs7_pad(b"hello", 16);
        assert_eq!(p.len(), 16);
        assert_eq!(&p[..5], b"hello");
        assert!(p[5..].iter().all(|&b| b == 11));
    }

    #[test]
    fn pads_aligned_input_with_full_block() {
        let p = pkcs7_pad(&[0u8; 16], 16);
        assert_eq!(p.len(), 32);
        assert!(p[16..].iter().all(|&b| b == 16));
    }

    #[test]
    fn pads_empty_input() {
        let p = pkcs7_pad(&[], 8);
        assert_eq!(p, vec![8u8; 8]);
    }

    #[test]
    fn unpad_round_trip() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let p = pkcs7_pad(&data, 16);
            assert_eq!(pkcs7_unpad(&p, 16).unwrap(), data);
        }
    }

    #[test]
    fn unpad_rejects_empty() {
        assert_eq!(pkcs7_unpad(&[], 16), Err(CryptoError::BadPadding));
    }

    #[test]
    fn unpad_rejects_misaligned() {
        assert_eq!(pkcs7_unpad(&[1u8; 17], 16), Err(CryptoError::BadPadding));
    }

    #[test]
    fn unpad_rejects_zero_pad_byte() {
        let mut p = pkcs7_pad(b"abc", 16);
        *p.last_mut().unwrap() = 0;
        assert_eq!(pkcs7_unpad(&p, 16), Err(CryptoError::BadPadding));
    }

    #[test]
    fn unpad_rejects_oversized_pad_byte() {
        let mut p = pkcs7_pad(b"abc", 16);
        *p.last_mut().unwrap() = 17;
        assert_eq!(pkcs7_unpad(&p, 16), Err(CryptoError::BadPadding));
    }

    #[test]
    fn unpad_rejects_inconsistent_padding() {
        let mut p = pkcs7_pad(b"abc", 16);
        let idx = p.len() - 3;
        p[idx] = 0xAA;
        assert_eq!(pkcs7_unpad(&p, 16), Err(CryptoError::BadPadding));
    }

    #[test]
    #[should_panic(expected = "block length")]
    fn pad_rejects_zero_block() {
        pkcs7_pad(b"x", 0);
    }
}
