//! Deterministic randomness helpers.
//!
//! Everything in the WideLeak simulator is reproducible from explicit
//! seeds: RSA key generation, content packaging, device identifiers.
//! These helpers standardize how the workspace draws random big integers
//! and byte strings from a [`rand`] generator.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use wideleak_bigint::BigUint;

/// Creates the workspace's standard deterministic generator from a seed.
///
/// # Examples
///
/// ```
/// use rand::RngCore;
///
/// let mut a = wideleak_crypto::rng::seeded_rng(7);
/// let mut b = wideleak_crypto::rng::seeded_rng(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws `len` random bytes.
pub fn random_bytes(rng: &mut impl RngCore, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Draws a fixed-size random array.
pub fn random_array<const N: usize>(rng: &mut impl RngCore) -> [u8; N] {
    let mut buf = [0u8; N];
    rng.fill_bytes(&mut buf);
    buf
}

/// Draws a random integer of exactly `bits` bits (top bit forced to 1).
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn random_biguint(rng: &mut impl RngCore, bits: usize) -> BigUint {
    assert!(bits > 0, "cannot draw a zero-bit integer");
    let bytes = bits.div_ceil(8);
    let mut buf = random_bytes(rng, bytes);
    // Clear excess high bits, then force the top bit so the bit length is
    // exactly `bits`.
    let excess = bytes * 8 - bits;
    buf[0] &= 0xffu8 >> excess;
    buf[0] |= 0x80u8 >> excess;
    BigUint::from_bytes_be(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = random_bytes(&mut seeded_rng(42), 32);
        let b = random_bytes(&mut seeded_rng(42), 32);
        assert_eq!(a, b);
        let c = random_bytes(&mut seeded_rng(43), 32);
        assert_ne!(a, c);
    }

    #[test]
    fn random_biguint_has_exact_bit_length() {
        let mut rng = seeded_rng(1);
        for bits in [1usize, 7, 8, 9, 63, 64, 65, 512, 1024] {
            let n = random_biguint(&mut rng, bits);
            assert_eq!(n.bit_len(), bits, "requested {bits} bits");
        }
    }

    #[test]
    fn random_array_fills() {
        let mut rng = seeded_rng(5);
        let a: [u8; 16] = random_array(&mut rng);
        let b: [u8; 16] = random_array(&mut rng);
        assert_ne!(a, b, "subsequent draws differ");
    }

    #[test]
    #[should_panic(expected = "zero-bit")]
    fn zero_bits_panics() {
        random_biguint(&mut seeded_rng(0), 0);
    }
}
