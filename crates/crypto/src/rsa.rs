//! RSA: key generation, OAEP encryption (RFC 8017 §7.1) and PKCS#1 v1.5
//! signatures (RFC 8017 §8.2).
//!
//! The Widevine Device RSA Key identified by the paper's reverse
//! engineering is a 2048-bit private key installed during provisioning; it
//! decrypts the session key that the license server wraps with RSA-OAEP,
//! and signs license requests with PKCS#1 v1.5. Both operations are
//! reproduced here over [`wideleak_bigint`].

use rand::RngCore;
use wideleak_bigint::modular::{gcd, mod_inv};
use wideleak_bigint::montgomery::{CrtContext, ModExpContext};
use wideleak_bigint::prime::{next_prime_from, DEFAULT_ROUNDS};
use wideleak_bigint::BigUint;

use crate::digest::Digest;
use crate::rng::random_biguint;
use crate::sha256::Sha256;
use crate::CryptoError;

/// The public half of an RSA key pair.
///
/// Construction precomputes a Montgomery exponentiation context for `n`,
/// so repeated public operations (signature verification, OAEP
/// encryption) skip the per-call modulus setup.
#[derive(Debug, Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Cached exponentiation context for `n`, built once in `new`.
    ctx: ModExpContext,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The context is derived from `n`; comparing it would be
        // redundant (and it deliberately has no `PartialEq`).
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

/// An RSA private key with CRT parameters.
///
/// Construction runs through [`RsaPrivateKey::precompute`], which builds
/// the per-prime Montgomery contexts once; every private operation then
/// reuses them.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    /// Precomputed CRT exponentiation contexts for `p` and `q`; also
    /// owns the derived exponents `d_p`, `d_q` and `q_inv`.
    crt: CrtContext,
}

impl PartialEq for RsaPrivateKey {
    fn eq(&self, other: &Self) -> bool {
        self.public == other.public && self.d == other.d && self.p == other.p && self.q == other.q
    }
}

impl Eq for RsaPrivateKey {}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaPrivateKey({} bits, <private exponent redacted>)", self.public.n.bit_len())
    }
}

impl RsaPublicKey {
    /// Builds a public key from raw modulus and exponent, precomputing
    /// the exponentiation context for `n`.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        let ctx = ModExpContext::new(&n);
        RsaPublicKey { n, e, ctx }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus length in bytes (the width of ciphertexts and signatures).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Raw RSA public operation `m^e mod n` through the cached context.
    fn raw(&self, m: &BigUint) -> BigUint {
        self.ctx.pow(m, &self.e)
    }

    /// Encrypts `message` with RSAES-OAEP (SHA-256, empty label).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] when the message exceeds the
    /// OAEP capacity (`k - 2*hLen - 2` bytes).
    pub fn encrypt_oaep(
        &self,
        rng: &mut impl RngCore,
        message: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        let h_len = Sha256::OUTPUT_LEN;
        if message.len() + 2 * h_len + 2 > k {
            return Err(CryptoError::MessageTooLong);
        }
        // EM = 0x00 || maskedSeed || maskedDB
        let l_hash = Sha256::digest(&[]);
        let db_len = k - h_len - 1;
        let mut db = vec![0u8; db_len];
        db[..h_len].copy_from_slice(&l_hash);
        db[db_len - message.len() - 1] = 0x01;
        db[db_len - message.len()..].copy_from_slice(message);

        let mut seed = vec![0u8; h_len];
        rng.fill_bytes(&mut seed);

        let db_mask = mgf1::<Sha256>(&seed, db_len);
        for (b, m) in db.iter_mut().zip(&db_mask) {
            *b ^= m;
        }
        let seed_mask = mgf1::<Sha256>(&db, h_len);
        for (b, m) in seed.iter_mut().zip(&seed_mask) {
            *b ^= m;
        }

        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.extend_from_slice(&seed);
        em.extend_from_slice(&db);

        let m_int = BigUint::from_bytes_be(&em);
        Ok(self.raw(&m_int).to_bytes_be_padded(k))
    }

    /// Verifies an RSASSA-PSS (SHA-256, salt length = hash length)
    /// signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] when verification fails.
    pub fn verify_pss_sha256(&self, message: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let em_bits = self.n.bit_len() - 1;
        let em_len = em_bits.div_ceil(8);
        let h_len = Sha256::OUTPUT_LEN;
        let s_len = h_len;
        if em_len < h_len + s_len + 2 {
            return Err(CryptoError::BadSignature);
        }
        let em = self.raw(&s).to_bytes_be_padded(em_len);
        if em[em_len - 1] != 0xbc {
            return Err(CryptoError::BadSignature);
        }
        let (masked_db, rest) = em.split_at(em_len - h_len - 1);
        let h_digest = &rest[..h_len];
        // The leftmost 8*emLen - emBits bits of maskedDB must be zero.
        if masked_db[0] & !(0xff >> (8 * em_len - em_bits)) != 0 {
            return Err(CryptoError::BadSignature);
        }
        let mask = mgf1::<Sha256>(h_digest, masked_db.len());
        let mut db: Vec<u8> = masked_db.iter().zip(&mask).map(|(a, b)| a ^ b).collect();
        db[0] &= 0xff >> (8 * em_len - em_bits);
        // DB = PS(zeros) || 0x01 || salt
        let sep = db.len() - s_len - 1;
        if db[..sep].iter().any(|&b| b != 0) || db[sep] != 0x01 {
            return Err(CryptoError::BadSignature);
        }
        let salt = &db[sep + 1..];
        let m_hash = Sha256::digest(message);
        let mut h = Sha256::new();
        h.update(&[0u8; 8]);
        h.update(&m_hash);
        h.update(salt);
        if crate::ct::ct_eq(&h.finalize(), h_digest) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] when verification fails.
    pub fn verify_pkcs1v15_sha256(
        &self,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let em = self.raw(&s).to_bytes_be_padded(k);
        let expected = pkcs1v15_encode_sha256(message, k)?;
        if crate::ct::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

impl RsaPrivateKey {
    /// Generates a fresh key of `bits` modulus bits with `e = 65537`.
    ///
    /// Generation is deterministic given the generator state, which is how
    /// the simulator provisions reproducible device keys.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` (too small for the prime search to make
    /// sense; real Widevine uses 2048).
    pub fn generate(rng: &mut impl RngCore, bits: usize) -> Self {
        assert!(bits >= 128, "RSA modulus must be at least 128 bits");
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(rng, bits / 2);
            let q = gen_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = &(&p - &one) * &(&q - &one);
            if !gcd(&e, &phi).is_one() {
                continue;
            }
            let d = mod_inv(&e, &phi).expect("e is invertible mod phi");
            return Self::precompute(RsaPublicKey::new(n, e), d, p, q)
                .expect("p, q are distinct primes");
        }
    }

    /// The constructor seam: derives the CRT parameters (`d_p`, `d_q`,
    /// `q_inv`) and builds the per-prime Montgomery contexts exactly
    /// once. Every constructor funnels through here, so a constructed
    /// key always carries its precomputed [`CrtContext`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] when `q` has no inverse
    /// modulo `p` (the factors are not coprime).
    fn precompute(
        public: RsaPublicKey,
        d: BigUint,
        p: BigUint,
        q: BigUint,
    ) -> Result<Self, CryptoError> {
        let one = BigUint::one();
        let d_p = &d % &(&p - &one);
        let d_q = &d % &(&q - &one);
        let q_inv = mod_inv(&q, &p).ok_or(CryptoError::InvalidKey)?;
        let crt = CrtContext::new(&p, &q, &d_p, &d_q, &q_inv);
        Ok(RsaPrivateKey { public, d, p, q, crt })
    }

    /// Reconstructs a private key from its raw components (used when the
    /// attack crate replays a provisioning response it intercepted).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the components are
    /// inconsistent (`n != p*q` or `e*d != 1 mod lcm(p-1, q-1)` spot check).
    pub fn from_components(
        n: BigUint,
        e: BigUint,
        d: BigUint,
        p: BigUint,
        q: BigUint,
    ) -> Result<Self, CryptoError> {
        if &p * &q != n {
            return Err(CryptoError::InvalidKey);
        }
        let one = BigUint::one();
        let p1 = &p - &one;
        let q1 = &q - &one;
        // e*d = 1 (mod p-1) and (mod q-1) is implied by correctness.
        if &(&e * &d) % &p1 != one || &(&e * &d) % &q1 != one {
            return Err(CryptoError::InvalidKey);
        }
        Self::precompute(RsaPublicKey::new(n, e), d, p, q)
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent (exposed for the attack crate, which serializes
    /// recovered keys; a production library would not export this).
    pub fn private_exponent(&self) -> &BigUint {
        &self.d
    }

    /// The prime factors `(p, q)`.
    pub fn factors(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// Raw RSA private operation via the precomputed CRT context.
    fn raw(&self, c: &BigUint) -> BigUint {
        self.crt.exp(c)
    }

    /// Decrypts an RSAES-OAEP (SHA-256) ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DecryptionFailed`] on any structural
    /// mismatch; the error is deliberately unified to avoid oracle
    /// distinctions.
    pub fn decrypt_oaep(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let h_len = Sha256::OUTPUT_LEN;
        if ciphertext.len() != k || k < 2 * h_len + 2 {
            return Err(CryptoError::DecryptionFailed);
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.public.n {
            return Err(CryptoError::DecryptionFailed);
        }
        let em = self.raw(&c).to_bytes_be_padded(k);

        let (first, rest) = em.split_first().expect("em is k bytes");
        let (seed_masked, db_masked) = rest.split_at(h_len);
        let seed_mask = mgf1::<Sha256>(db_masked, h_len);
        let seed: Vec<u8> = seed_masked.iter().zip(&seed_mask).map(|(a, b)| a ^ b).collect();
        let db_mask = mgf1::<Sha256>(&seed, k - h_len - 1);
        let db: Vec<u8> = db_masked.iter().zip(&db_mask).map(|(a, b)| a ^ b).collect();

        let l_hash = Sha256::digest(&[]);
        let mut ok = *first == 0x00;
        ok &= crate::ct::ct_eq(&db[..h_len], &l_hash);

        // Find the 0x01 separator after the zero padding.
        let mut sep_index = None;
        for (i, &b) in db[h_len..].iter().enumerate() {
            match b {
                0x00 => continue,
                0x01 => {
                    sep_index = Some(h_len + i);
                    break;
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        match (ok, sep_index) {
            (true, Some(idx)) => Ok(db[idx + 1..].to_vec()),
            _ => Err(CryptoError::DecryptionFailed),
        }
    }

    /// Signs `message` with RSASSA-PKCS1-v1_5 over SHA-256.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] for absurdly small moduli
    /// that cannot hold the DigestInfo encoding.
    pub fn sign_pkcs1v15_sha256(&self, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = pkcs1v15_encode_sha256(message, k)?;
        let m = BigUint::from_bytes_be(&em);
        Ok(self.raw(&m).to_bytes_be_padded(k))
    }

    /// Signs `message` with RSASSA-PSS over SHA-256 (RFC 8017 §8.1),
    /// salt length = hash length.
    ///
    /// Recent OEMCrypto revisions sign license requests with PSS; the
    /// simulator keeps both schemes available so legacy (v1.5) and current
    /// CDMs can be modelled side by side.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] when the modulus is too
    /// small for the encoding.
    pub fn sign_pss_sha256(
        &self,
        rng: &mut impl RngCore,
        message: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em_bits = self.public.n.bit_len() - 1;
        let em_len = em_bits.div_ceil(8);
        let h_len = Sha256::OUTPUT_LEN;
        let s_len = h_len;
        if em_len < h_len + s_len + 2 {
            return Err(CryptoError::MessageTooLong);
        }
        let m_hash = Sha256::digest(message);
        let mut salt = vec![0u8; s_len];
        rng.fill_bytes(&mut salt);

        // M' = 0x00*8 || mHash || salt ; H = Hash(M')
        let mut h = Sha256::new();
        h.update(&[0u8; 8]);
        h.update(&m_hash);
        h.update(&salt);
        let h_digest = h.finalize();

        // DB = PS || 0x01 || salt, masked with MGF1(H).
        let db_len = em_len - h_len - 1;
        let mut db = vec![0u8; db_len];
        db[db_len - s_len - 1] = 0x01;
        db[db_len - s_len..].copy_from_slice(&salt);
        let mask = mgf1::<Sha256>(&h_digest, db_len);
        for (b, m) in db.iter_mut().zip(&mask) {
            *b ^= m;
        }
        // Clear the leftmost 8*emLen - emBits bits.
        db[0] &= 0xff >> (8 * em_len - em_bits);

        let mut em = Vec::with_capacity(em_len);
        em.extend_from_slice(&db);
        em.extend_from_slice(&h_digest);
        em.push(0xbc);

        let m_int = BigUint::from_bytes_be(&em);
        Ok(self.raw(&m_int).to_bytes_be_padded(k))
    }
}

/// DER DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

fn pkcs1v15_encode_sha256(message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = Sha256::digest(message);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xff, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&digest);
    Ok(em)
}

/// MGF1 mask generation (RFC 8017 Appendix B.2.1).
pub fn mgf1<D: Digest>(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = D::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

fn gen_prime(rng: &mut impl RngCore, bits: usize) -> BigUint {
    let mut candidate = random_biguint(rng, bits);
    if candidate.is_even() {
        candidate = &candidate + &BigUint::one();
    }
    next_prime_from(&candidate, DEFAULT_ROUNDS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use std::sync::OnceLock;

    /// A 768-bit key is plenty for tests and much faster to generate.
    fn test_key() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| RsaPrivateKey::generate(&mut seeded_rng(0x71DE), 768))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RsaPrivateKey::generate(&mut seeded_rng(11), 256);
        let b = RsaPrivateKey::generate(&mut seeded_rng(11), 256);
        assert_eq!(a.public_key(), b.public_key());
        let c = RsaPrivateKey::generate(&mut seeded_rng(12), 256);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn modulus_has_requested_bits() {
        let key = RsaPrivateKey::generate(&mut seeded_rng(3), 512);
        assert_eq!(key.public_key().modulus().bit_len(), 512);
        assert_eq!(key.public_key().modulus_len(), 64);
    }

    #[test]
    fn oaep_round_trip() {
        let key = test_key();
        let mut rng = seeded_rng(1);
        for msg in [&b""[..], b"k", b"sixteen byte key", b"thirty byte session key padded"] {
            let ct = key.public_key().encrypt_oaep(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), key.public_key().modulus_len());
            assert_eq!(key.decrypt_oaep(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn oaep_is_randomized() {
        let key = test_key();
        let mut rng = seeded_rng(2);
        let a = key.public_key().encrypt_oaep(&mut rng, b"same").unwrap();
        let b = key.public_key().encrypt_oaep(&mut rng, b"same").unwrap();
        assert_ne!(a, b);
        assert_eq!(key.decrypt_oaep(&a).unwrap(), b"same");
        assert_eq!(key.decrypt_oaep(&b).unwrap(), b"same");
    }

    #[test]
    fn oaep_rejects_oversized_message() {
        let key = test_key();
        let k = key.public_key().modulus_len();
        let too_long = vec![0u8; k - 2 * 32 - 1];
        assert_eq!(
            key.public_key().encrypt_oaep(&mut seeded_rng(0), &too_long),
            Err(CryptoError::MessageTooLong)
        );
    }

    #[test]
    fn oaep_rejects_tampered_ciphertext() {
        let key = test_key();
        let mut ct = key.public_key().encrypt_oaep(&mut seeded_rng(4), b"content key").unwrap();
        ct[10] ^= 0x40;
        assert_eq!(key.decrypt_oaep(&ct), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn oaep_rejects_wrong_length() {
        let key = test_key();
        assert_eq!(key.decrypt_oaep(&[0u8; 10]), Err(CryptoError::DecryptionFailed));
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = test_key();
        let sig = key.sign_pkcs1v15_sha256(b"license request").unwrap();
        assert_eq!(sig.len(), key.public_key().modulus_len());
        key.public_key().verify_pkcs1v15_sha256(b"license request", &sig).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key();
        let sig = key.sign_pkcs1v15_sha256(b"original").unwrap();
        assert_eq!(
            key.public_key().verify_pkcs1v15_sha256(b"forged", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign_pkcs1v15_sha256(b"msg").unwrap();
        sig[0] ^= 1;
        assert_eq!(
            key.public_key().verify_pkcs1v15_sha256(b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let key = test_key();
        assert_eq!(
            key.public_key().verify_pkcs1v15_sha256(b"msg", &[1, 2, 3]),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn from_components_round_trip() {
        let key = test_key();
        let (p, q) = key.factors();
        let rebuilt = RsaPrivateKey::from_components(
            key.public_key().modulus().clone(),
            key.public_key().exponent().clone(),
            key.private_exponent().clone(),
            p.clone(),
            q.clone(),
        )
        .unwrap();
        let sig = rebuilt.sign_pkcs1v15_sha256(b"rebuilt").unwrap();
        key.public_key().verify_pkcs1v15_sha256(b"rebuilt", &sig).unwrap();
    }

    #[test]
    fn from_components_rejects_mismatched_factors() {
        let key = test_key();
        let (p, _) = key.factors();
        let err = RsaPrivateKey::from_components(
            key.public_key().modulus().clone(),
            key.public_key().exponent().clone(),
            key.private_exponent().clone(),
            p.clone(),
            p.clone(),
        );
        assert_eq!(err.unwrap_err(), CryptoError::InvalidKey);
    }

    #[test]
    fn pss_sign_verify_round_trip() {
        let key = test_key();
        let mut rng = seeded_rng(31);
        for msg in [&b""[..], b"license request", &[0xAB; 500]] {
            let sig = key.sign_pss_sha256(&mut rng, msg).unwrap();
            key.public_key().verify_pss_sha256(msg, &sig).unwrap();
        }
    }

    #[test]
    fn pss_is_randomized_but_both_verify() {
        let key = test_key();
        let mut rng = seeded_rng(32);
        let a = key.sign_pss_sha256(&mut rng, b"same message").unwrap();
        let b = key.sign_pss_sha256(&mut rng, b"same message").unwrap();
        assert_ne!(a, b, "fresh salt per signature");
        key.public_key().verify_pss_sha256(b"same message", &a).unwrap();
        key.public_key().verify_pss_sha256(b"same message", &b).unwrap();
    }

    #[test]
    fn pss_rejects_wrong_message_and_tampering() {
        let key = test_key();
        let mut sig = key.sign_pss_sha256(&mut seeded_rng(33), b"original").unwrap();
        assert_eq!(
            key.public_key().verify_pss_sha256(b"forged", &sig),
            Err(CryptoError::BadSignature)
        );
        sig[5] ^= 1;
        assert_eq!(
            key.public_key().verify_pss_sha256(b"original", &sig),
            Err(CryptoError::BadSignature)
        );
        assert_eq!(
            key.public_key().verify_pss_sha256(b"original", &[0u8; 4]),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn pss_and_pkcs1v15_signatures_are_not_interchangeable() {
        let key = test_key();
        let pss = key.sign_pss_sha256(&mut seeded_rng(34), b"msg").unwrap();
        assert!(key.public_key().verify_pkcs1v15_sha256(b"msg", &pss).is_err());
        let v15 = key.sign_pkcs1v15_sha256(b"msg").unwrap();
        assert!(key.public_key().verify_pss_sha256(b"msg", &v15).is_err());
    }

    #[test]
    fn mgf1_known_properties() {
        let a = mgf1::<Sha256>(b"seed", 10);
        let b = mgf1::<Sha256>(b"seed", 40);
        assert_eq!(a, b[..10], "MGF1 output is a prefix-stable stream");
        assert_eq!(mgf1::<Sha256>(b"seed", 0), Vec::<u8>::new());
        assert_ne!(mgf1::<Sha256>(b"seed-a", 16), mgf1::<Sha256>(b"seed-b", 16));
    }

    #[test]
    fn debug_redacts_private_key() {
        let s = format!("{:?}", test_key());
        assert!(s.contains("redacted"));
    }
}
