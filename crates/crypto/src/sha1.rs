//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is cryptographically broken for collision resistance; it is kept
//! here because legacy Widevine CDM versions (such as the v3.1.0 on the
//! paper's discontinued Nexus 5) still used it in their provisioning
//! request signatures — modelling outdated devices requires outdated
//! primitives.

use crate::digest::Digest;

/// Incremental SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::digest::Digest;
/// use wideleak_crypto::sha1::Sha1;
///
/// assert_eq!(Sha1::digest(b"abc").len(), 20);
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: Vec<u8>,
    total_len: u64,
}

impl std::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sha1(absorbed: {} bytes)", self.total_len)
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Digest for Sha1 {
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: Vec::with_capacity(64),
            total_len: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.buffer.extend_from_slice(data);
        let full = self.buffer.len() / 64 * 64;
        let blocks = self.buffer[..full].to_vec();
        for block in blocks.chunks_exact(64) {
            self.compress(block);
        }
        self.buffer.drain(..full);
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&bit_len.to_be_bytes());
        let blocks = std::mem::take(&mut self.buffer);
        for block in blocks.chunks_exact(64) {
            self.compress(block);
        }
        self.state.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    Sha1::digest(data).try_into().expect("sha1 output is 20 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexify(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn abc() {
        assert_eq!(hexify(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn empty() {
        assert_eq!(hexify(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hexify(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hexify(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..777).map(|i| (i % 256) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }
}
