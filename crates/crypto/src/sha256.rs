//! SHA-256 (FIPS 180-4).
//!
//! The round constants are the first 32 bits of the fractional parts of the
//! cube roots of the first 64 primes, and the initial state comes from the
//! square roots of the first 8 primes — both computed at first use rather
//! than transcribed, then pinned by the standard test vectors below.

use std::sync::OnceLock;

use crate::digest::Digest;

fn frac_root_bits(p: u64, root: f64) -> u32 {
    // First 32 bits of the fractional part of p^(1/root).
    let x = (p as f64).powf(1.0 / root);
    let frac = x - x.floor();
    (frac * 4294967296.0) as u32
}

fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while primes.len() < n {
        if primes.iter().all(|&p| !candidate.is_multiple_of(p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

fn k_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            k[i] = frac_root_bits(p, 3.0);
        }
        k
    })
}

fn h_initial() -> [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    *H.get_or_init(|| {
        let primes = first_primes(8);
        let mut h = [0u32; 8];
        for (i, &p) in primes.iter().enumerate() {
            h[i] = frac_root_bits(p, 2.0);
        }
        h
    })
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use wideleak_crypto::digest::Digest;
/// use wideleak_crypto::sha256::Sha256;
///
/// let d = Sha256::digest(b"abc");
/// assert_eq!(d[0], 0xba);
/// assert_eq!(d.len(), 32);
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: Vec<u8>,
    total_len: u64,
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sha256(absorbed: {} bytes)", self.total_len)
    }
}

impl Sha256 {
    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let k = k_constants();
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(k[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Digest for Sha256 {
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 32;

    fn new() -> Self {
        Sha256 { state: h_initial(), buffer: Vec::with_capacity(64), total_len: 0 }
    }

    fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        self.buffer.extend_from_slice(data);
        let full = self.buffer.len() / 64 * 64;
        let blocks = self.buffer[..full].to_vec();
        for block in blocks.chunks_exact(64) {
            self.compress(block);
        }
        self.buffer.drain(..full);
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.buffer.push(0x80);
        while self.buffer.len() % 64 != 56 {
            self.buffer.push(0);
        }
        self.buffer.extend_from_slice(&bit_len.to_be_bytes());
        let blocks = std::mem::take(&mut self.buffer);
        for block in blocks.chunks_exact(64) {
            self.compress(block);
        }
        self.state.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    Sha256::digest(data).try_into().expect("sha256 output is 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexify(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn constants_match_fips() {
        let k = k_constants();
        assert_eq!(k[0], 0x428a2f98);
        assert_eq!(k[1], 0x71374491);
        assert_eq!(k[63], 0xc67178f2);
        let h = h_initial();
        assert_eq!(h[0], 0x6a09e667);
        assert_eq!(h[7], 0x5be0cd19);
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hexify(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hexify(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hexify(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hexify(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn boundary_lengths() {
        // Lengths straddling the padding boundary (55, 56, 64 bytes).
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn debug_shows_progress() {
        let mut h = Sha256::new();
        h.update(b"xyz");
        assert_eq!(format!("{h:?}"), "Sha256(absorbed: 3 bytes)");
    }
}
