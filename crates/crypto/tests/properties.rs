//! Property-based tests for the cryptographic primitives: round-trips,
//! determinism, and avalanche-style sanity checks.

use proptest::prelude::*;
use wideleak_crypto::aes::Aes128;
use wideleak_crypto::cmac::aes_cmac_with_key;
use wideleak_crypto::crc32::{crc32, Crc32};
use wideleak_crypto::ct::ct_eq;
use wideleak_crypto::digest::Digest;
use wideleak_crypto::hmac::Hmac;
use wideleak_crypto::modes::{
    cbc_decrypt_padded, cbc_encrypt_padded, ctr_xcrypt, ecb_decrypt, ecb_encrypt,
};
use wideleak_crypto::pad::{pkcs7_pad, pkcs7_unpad};
use wideleak_crypto::rng::seeded_rng;
use wideleak_crypto::rsa::{mgf1, RsaPrivateKey};
use wideleak_crypto::sha1::Sha1;
use wideleak_crypto::sha256::Sha256;

fn key16() -> impl Strategy<Value = [u8; 16]> {
    any::<[u8; 16]>()
}

proptest! {
    #[test]
    fn aes_block_round_trip(key in key16(), block in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn ecb_round_trip(key in key16(), data in proptest::collection::vec(any::<u8>(), 0..8).prop_map(|v| {
        // Expand to whole blocks.
        v.into_iter().flat_map(|b| [b; 16]).collect::<Vec<u8>>()
    })) {
        let cipher = Aes128::new(&key);
        let ct = ecb_encrypt(&cipher, &data).unwrap();
        prop_assert_eq!(ecb_decrypt(&cipher, &ct).unwrap(), data);
    }

    #[test]
    fn cbc_padded_round_trip(key in key16(), iv in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let cipher = Aes128::new(&key);
        let ct = cbc_encrypt_padded(&cipher, &iv, &data);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert_eq!(cbc_decrypt_padded(&cipher, &iv, &ct).unwrap(), data);
    }

    #[test]
    fn ctr_is_an_involution(key in key16(), nonce in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let cipher = Aes128::new(&key);
        let once = ctr_xcrypt(&cipher, &nonce, &data);
        prop_assert_eq!(ctr_xcrypt(&cipher, &nonce, &once), data);
    }

    #[test]
    fn pkcs7_round_trip(data in proptest::collection::vec(any::<u8>(), 0..100), block in 1usize..=32) {
        let padded = pkcs7_pad(&data, block);
        prop_assert_eq!(padded.len() % block, 0);
        prop_assert!(padded.len() > data.len());
        prop_assert_eq!(pkcs7_unpad(&padded, block).unwrap(), data);
    }

    #[test]
    fn cmac_deterministic_and_key_separated(key_a in key16(), key_b in key16(), msg in proptest::collection::vec(any::<u8>(), 0..100)) {
        prop_assert_eq!(aes_cmac_with_key(&key_a, &msg), aes_cmac_with_key(&key_a, &msg));
        if key_a != key_b {
            // Not a theorem, but a 2^-128 event; treat as always true.
            prop_assert_ne!(aes_cmac_with_key(&key_a, &msg), aes_cmac_with_key(&key_b, &msg));
        }
    }

    #[test]
    fn sha256_incremental_matches(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_incremental_matches(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn hmac_is_deterministic(key in proptest::collection::vec(any::<u8>(), 0..80), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(Hmac::<Sha256>::mac(&key, &msg), Hmac::<Sha256>::mac(&key, &msg));
    }

    #[test]
    fn crc32_streaming_matches(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        let split = split.min(data.len());
        let mut c = Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..40), b in proptest::collection::vec(any::<u8>(), 0..40)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn mgf1_prefix_stability(seed in proptest::collection::vec(any::<u8>(), 0..40), short in 0usize..50, extra in 0usize..50) {
        let a = mgf1::<Sha256>(&seed, short);
        let b = mgf1::<Sha256>(&seed, short + extra);
        prop_assert_eq!(&a[..], &b[..short]);
    }
}

// RSA proptests use a shared small key: generation dominates runtime.
fn shared_key() -> &'static RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(&mut seeded_rng(99), 768))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rsa_oaep_round_trip(msg in proptest::collection::vec(any::<u8>(), 0..30), seed in any::<u64>()) {
        let key = shared_key();
        let ct = key.public_key().encrypt_oaep(&mut seeded_rng(seed), &msg).unwrap();
        prop_assert_eq!(key.decrypt_oaep(&ct).unwrap(), msg);
    }

    #[test]
    fn rsa_signature_round_trip(msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let key = shared_key();
        let sig = key.sign_pkcs1v15_sha256(&msg).unwrap();
        prop_assert!(key.public_key().verify_pkcs1v15_sha256(&msg, &sig).is_ok());
    }

    #[test]
    fn rsa_signature_rejects_bit_flips(msg in proptest::collection::vec(any::<u8>(), 1..100), flip in 0usize..768) {
        let key = shared_key();
        let mut sig = key.sign_pkcs1v15_sha256(&msg).unwrap();
        let byte = (flip / 8) % sig.len();
        sig[byte] ^= 1 << (flip % 8);
        prop_assert!(key.public_key().verify_pkcs1v15_sha256(&msg, &sig).is_err());
    }
}
