//! MPEG-DASH Media Presentation Description (MPD) model.
//!
//! OTT apps receive an MPD from the CDN describing every asset of a title:
//! video representations at several resolutions, audio tracks per language,
//! and subtitle tracks. Protection signalling lives in
//! `ContentProtection` descriptors carrying `default_KID` attributes —
//! the metadata the WideLeak monitor parses to answer Q3 (key usage per
//! asset).
//!
//! The crate provides a from-scratch minimal XML codec ([`xml`]) and the
//! typed MPD model ([`mpd`]) on top of it.
//!
//! # Examples
//!
//! ```
//! use wideleak_dash::mpd::{AdaptationSet, ContentType, Mpd, Period, Representation};
//!
//! let mpd = Mpd {
//!     title: "demo".into(),
//!     periods: vec![Period {
//!         adaptation_sets: vec![AdaptationSet {
//!             content_type: ContentType::Video,
//!             lang: None,
//!             content_protections: vec![],
//!             representations: vec![Representation::new("v540", 1_200_000)],
//!         }],
//!     }],
//! };
//! let xml = mpd.to_xml_string();
//! let parsed = Mpd::parse(&xml).unwrap();
//! assert_eq!(parsed, mpd);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mpd;
pub mod xml;

pub use mpd::{
    AdaptationSet, ContentProtection, ContentType, Mpd, MpdError, Period, Representation,
};
pub use xml::{XmlElement, XmlError, XmlNode};
