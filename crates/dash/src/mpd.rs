//! The typed MPD model with serialization to and from the minimal XML
//! codec, plus the key-ID analysis helpers the monitor relies on.

use std::fmt;

use crate::xml::{XmlElement, XmlError};

/// Scheme URI of the generic MP4 protection descriptor.
pub const MP4_PROTECTION_SCHEME: &str = "urn:mpeg:dash:mp4protection:2011";

/// Scheme URI of the Widevine content-protection descriptor (the
/// registered Widevine system UUID).
pub const WIDEVINE_SCHEME: &str = "urn:uuid:edef8ba9-79d6-4ace-a3c8-27dcd51d21ed";

/// Errors from parsing an MPD document.
///
/// Splits the XML-layer failures ([`XmlError`]) from MPD-level schema
/// violations, so a rate controller can never be handed a
/// representation whose declared `bandwidth` silently parsed to 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpdError {
    /// The underlying XML was malformed.
    Xml(XmlError),
    /// An attribute was present but its value did not parse.
    BadAttribute {
        /// Element carrying the attribute.
        element: &'static str,
        /// Attribute name.
        attribute: &'static str,
        /// The rejected raw value.
        value: String,
    },
    /// A required attribute was missing.
    MissingAttribute {
        /// Element that should carry the attribute.
        element: &'static str,
        /// Attribute name.
        attribute: &'static str,
    },
}

impl From<XmlError> for MpdError {
    fn from(e: XmlError) -> Self {
        MpdError::Xml(e)
    }
}

impl fmt::Display for MpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpdError::Xml(e) => write!(f, "malformed XML: {e}"),
            MpdError::BadAttribute { element, attribute, value } => {
                write!(f, "<{element}> attribute {attribute}={value:?} does not parse")
            }
            MpdError::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing required attribute {attribute}")
            }
        }
    }
}

impl std::error::Error for MpdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpdError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

/// Content type of an adaptation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// Video representations (per-resolution).
    Video,
    /// Audio representations (per-language).
    Audio,
    /// Subtitle/text representations (per-language).
    Text,
}

impl ContentType {
    /// The `contentType` attribute value.
    pub fn as_str(self) -> &'static str {
        match self {
            ContentType::Video => "video",
            ContentType::Audio => "audio",
            ContentType::Text => "text",
        }
    }

    /// Parses a `contentType` attribute value.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "video" => Some(ContentType::Video),
            "audio" => Some(ContentType::Audio),
            "text" => Some(ContentType::Text),
            _ => None,
        }
    }
}

impl fmt::Display for ContentType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `ContentProtection` descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentProtection {
    /// The `schemeIdUri` attribute.
    pub scheme_id_uri: String,
    /// The `value` attribute (e.g. `cenc`).
    pub value: Option<String>,
    /// The `cenc:default_KID` attribute, lowercase hex without dashes.
    pub default_kid: Option<String>,
}

impl ContentProtection {
    /// The generic mp4protection descriptor for a scheme and key ID.
    pub fn mp4_protection(scheme: &str, default_kid: &str) -> Self {
        ContentProtection {
            scheme_id_uri: MP4_PROTECTION_SCHEME.to_owned(),
            value: Some(scheme.to_owned()),
            default_kid: Some(default_kid.to_owned()),
        }
    }

    /// The Widevine descriptor.
    pub fn widevine() -> Self {
        ContentProtection {
            scheme_id_uri: WIDEVINE_SCHEME.to_owned(),
            value: None,
            default_kid: None,
        }
    }

    fn to_xml(&self) -> XmlElement {
        let mut e = XmlElement::new("ContentProtection").attr("schemeIdUri", &self.scheme_id_uri);
        if let Some(v) = &self.value {
            e = e.attr("value", v);
        }
        if let Some(kid) = &self.default_kid {
            e = e.attr("cenc:default_KID", kid);
        }
        e
    }

    fn from_xml(e: &XmlElement) -> Self {
        ContentProtection {
            scheme_id_uri: e.attribute("schemeIdUri").unwrap_or_default().to_owned(),
            value: e.attribute("value").map(str::to_owned),
            default_kid: e.attribute("cenc:default_KID").map(str::to_owned),
        }
    }
}

/// One representation (a single quality/bitrate variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Representation {
    /// Representation id, e.g. `video-540p`.
    pub id: String,
    /// Bandwidth in bits per second.
    pub bandwidth: u32,
    /// Frame size for video (`None` for audio/text).
    pub resolution: Option<(u32, u32)>,
    /// Per-representation protection descriptors (used for per-resolution
    /// keys; may be empty when protection is declared at the adaptation
    /// set).
    pub content_protections: Vec<ContentProtection>,
    /// URL of the initialization segment.
    pub init_url: String,
    /// URLs of the media segments in order.
    pub segment_urls: Vec<String>,
}

impl Representation {
    /// Creates a minimal representation with no segments.
    pub fn new(id: impl Into<String>, bandwidth: u32) -> Self {
        Representation {
            id: id.into(),
            bandwidth,
            resolution: None,
            content_protections: Vec::new(),
            init_url: String::new(),
            segment_urls: Vec::new(),
        }
    }

    /// The `default_KID` declared on this representation, if any.
    pub fn default_kid(&self) -> Option<&str> {
        self.content_protections.iter().find_map(|cp| cp.default_kid.as_deref())
    }

    fn to_xml(&self) -> XmlElement {
        let mut e = XmlElement::new("Representation")
            .attr("id", &self.id)
            .attr("bandwidth", self.bandwidth.to_string());
        if let Some((w, h)) = self.resolution {
            e = e.attr("width", w.to_string()).attr("height", h.to_string());
        }
        for cp in &self.content_protections {
            e = e.child(cp.to_xml());
        }
        let mut seg_list = XmlElement::new("SegmentList");
        if !self.init_url.is_empty() {
            seg_list =
                seg_list.child(XmlElement::new("Initialization").attr("sourceURL", &self.init_url));
        }
        for url in &self.segment_urls {
            seg_list = seg_list.child(XmlElement::new("SegmentURL").attr("media", url));
        }
        e.child(seg_list)
    }

    fn from_xml(e: &XmlElement) -> Result<Self, MpdError> {
        let id = e.attribute("id").unwrap_or_default().to_owned();
        // A representation with no parseable bandwidth would look
        // infinitely cheap to a rate controller — reject it outright.
        let bandwidth = match e.attribute("bandwidth") {
            Some(raw) => raw.parse().map_err(|_| MpdError::BadAttribute {
                element: "Representation",
                attribute: "bandwidth",
                value: raw.to_owned(),
            })?,
            None => {
                return Err(MpdError::MissingAttribute {
                    element: "Representation",
                    attribute: "bandwidth",
                })
            }
        };
        let resolution = match (e.attribute("width"), e.attribute("height")) {
            (Some(w), Some(h)) => match (w.parse(), h.parse()) {
                (Ok(w), Ok(h)) => Some((w, h)),
                _ => None,
            },
            _ => None,
        };
        let content_protections =
            e.elements("ContentProtection").map(ContentProtection::from_xml).collect();
        let (init_url, segment_urls) = match e.element("SegmentList") {
            Some(list) => {
                let init = list
                    .element("Initialization")
                    .and_then(|i| i.attribute("sourceURL"))
                    .unwrap_or_default()
                    .to_owned();
                let segs = list
                    .elements("SegmentURL")
                    .filter_map(|s| s.attribute("media"))
                    .map(str::to_owned)
                    .collect();
                (init, segs)
            }
            None => (String::new(), Vec::new()),
        };
        Ok(Representation {
            id,
            bandwidth,
            resolution,
            content_protections,
            init_url,
            segment_urls,
        })
    }
}

/// A group of interchangeable representations of one asset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptationSet {
    /// What kind of content this set carries.
    pub content_type: ContentType,
    /// Language tag for audio/text sets.
    pub lang: Option<String>,
    /// Set-level protection descriptors.
    pub content_protections: Vec<ContentProtection>,
    /// The representations.
    pub representations: Vec<Representation>,
}

impl AdaptationSet {
    /// Whether any protection descriptor is declared at set or
    /// representation level.
    pub fn is_protected(&self) -> bool {
        !self.content_protections.is_empty()
            || self.representations.iter().any(|r| !r.content_protections.is_empty())
    }

    /// All distinct `default_KID`s declared in this set (set level first,
    /// then per representation, deduplicated, order preserved).
    pub fn key_ids(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let set_kids = self.content_protections.iter().filter_map(|cp| cp.default_kid.clone());
        let rep_kids = self
            .representations
            .iter()
            .flat_map(|r| r.content_protections.iter().filter_map(|cp| cp.default_kid.clone()));
        for kid in set_kids.chain(rep_kids) {
            if !out.contains(&kid) {
                out.push(kid);
            }
        }
        out
    }

    fn to_xml(&self) -> XmlElement {
        let mut e =
            XmlElement::new("AdaptationSet").attr("contentType", self.content_type.as_str());
        if let Some(lang) = &self.lang {
            e = e.attr("lang", lang);
        }
        for cp in &self.content_protections {
            e = e.child(cp.to_xml());
        }
        for r in &self.representations {
            e = e.child(r.to_xml());
        }
        e
    }

    fn from_xml(e: &XmlElement) -> Result<Self, MpdError> {
        let content_type = e
            .attribute("contentType")
            .and_then(ContentType::from_str_opt)
            .unwrap_or(ContentType::Video);
        let lang = e.attribute("lang").map(str::to_owned);
        let content_protections =
            e.elements("ContentProtection").map(ContentProtection::from_xml).collect();
        let representations =
            e.elements("Representation").map(Representation::from_xml).collect::<Result<_, _>>()?;
        Ok(AdaptationSet { content_type, lang, content_protections, representations })
    }
}

/// One period of the presentation (always exactly one in this workspace).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Period {
    /// The adaptation sets of the period.
    pub adaptation_sets: Vec<AdaptationSet>,
}

/// A complete Media Presentation Description.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mpd {
    /// Presentation title (carried in a `Title` element).
    pub title: String,
    /// The periods.
    pub periods: Vec<Period>,
}

impl Mpd {
    /// Serializes to an XML document string (with declaration).
    pub fn to_xml_string(&self) -> String {
        let mut root = XmlElement::new("MPD")
            .attr("xmlns", "urn:mpeg:dash:schema:mpd:2011")
            .attr("xmlns:cenc", "urn:mpeg:cenc:2013")
            .attr("type", "static")
            .child(
                XmlElement::new("ProgramInformation")
                    .child(XmlElement::new("Title").text(&self.title)),
            );
        for period in &self.periods {
            let mut p = XmlElement::new("Period");
            for set in &period.adaptation_sets {
                p = p.child(set.to_xml());
            }
            root = root.child(p);
        }
        format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}", root.to_xml_string())
    }

    /// Parses an MPD document.
    ///
    /// # Errors
    ///
    /// Returns [`MpdError::Xml`] on malformed XML and the other
    /// [`MpdError`] variants on MPD-level schema violations (e.g. a
    /// missing or garbled `bandwidth` attribute).
    pub fn parse(input: &str) -> Result<Mpd, MpdError> {
        let root = XmlElement::parse(input)?;
        let title = root
            .element("ProgramInformation")
            .and_then(|pi| pi.element("Title"))
            .map(|t| t.text_content())
            .unwrap_or_default();
        let periods = root
            .elements("Period")
            .map(|p| {
                Ok(Period {
                    adaptation_sets: p
                        .elements("AdaptationSet")
                        .map(AdaptationSet::from_xml)
                        .collect::<Result<_, MpdError>>()?,
                })
            })
            .collect::<Result<_, MpdError>>()?;
        Ok(Mpd { title, periods })
    }

    /// Iterates over all adaptation sets across periods.
    pub fn adaptation_sets(&self) -> impl Iterator<Item = &AdaptationSet> {
        self.periods.iter().flat_map(|p| p.adaptation_sets.iter())
    }

    /// All distinct key IDs declared anywhere in the presentation.
    pub fn all_key_ids(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for set in self.adaptation_sets() {
            for kid in set.key_ids() {
                if !out.contains(&kid) {
                    out.push(kid);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_mpd() -> Mpd {
        let video_reps: Vec<Representation> = [(960u32, 540u32, "kid-540"), (1280, 720, "kid-720")]
            .iter()
            .map(|&(w, h, kid)| {
                let mut r = Representation::new(format!("video-{h}p"), h * 2000);
                r.resolution = Some((w, h));
                r.content_protections = vec![
                    ContentProtection::mp4_protection("cenc", kid),
                    ContentProtection::widevine(),
                ];
                r.init_url = format!("video/{h}/init.mp4");
                r.segment_urls = vec![format!("video/{h}/seg1.m4s"), format!("video/{h}/seg2.m4s")];
                r
            })
            .collect();

        let mut audio_rep = Representation::new("audio-en", 128_000);
        audio_rep.init_url = "audio/en/init.mp4".into();
        audio_rep.segment_urls = vec!["audio/en/seg1.m4s".into()];

        Mpd {
            title: "Demo Title".into(),
            periods: vec![Period {
                adaptation_sets: vec![
                    AdaptationSet {
                        content_type: ContentType::Video,
                        lang: None,
                        content_protections: vec![],
                        representations: video_reps,
                    },
                    AdaptationSet {
                        content_type: ContentType::Audio,
                        lang: Some("en".into()),
                        content_protections: vec![ContentProtection::mp4_protection(
                            "cenc",
                            "kid-audio",
                        )],
                        representations: vec![audio_rep],
                    },
                    AdaptationSet {
                        content_type: ContentType::Text,
                        lang: Some("en".into()),
                        content_protections: vec![],
                        representations: vec![Representation::new("sub-en", 1_000)],
                    },
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let mpd = demo_mpd();
        let xml = mpd.to_xml_string();
        let parsed = Mpd::parse(&xml).unwrap();
        assert_eq!(parsed, mpd);
    }

    #[test]
    fn content_type_round_trip() {
        for ct in [ContentType::Video, ContentType::Audio, ContentType::Text] {
            assert_eq!(ContentType::from_str_opt(ct.as_str()), Some(ct));
        }
        assert_eq!(ContentType::from_str_opt("image"), None);
    }

    #[test]
    fn protection_flags() {
        let mpd = demo_mpd();
        let sets: Vec<_> = mpd.adaptation_sets().collect();
        assert!(sets[0].is_protected(), "video protected at representation level");
        assert!(sets[1].is_protected(), "audio protected at set level");
        assert!(!sets[2].is_protected(), "subtitles in clear");
    }

    #[test]
    fn key_id_census() {
        let mpd = demo_mpd();
        assert_eq!(mpd.all_key_ids(), vec!["kid-540", "kid-720", "kid-audio"]);
        let video = &mpd.periods[0].adaptation_sets[0];
        assert_eq!(video.key_ids(), vec!["kid-540", "kid-720"]);
    }

    #[test]
    fn representation_default_kid() {
        let mpd = demo_mpd();
        let rep = &mpd.periods[0].adaptation_sets[0].representations[0];
        assert_eq!(rep.default_kid(), Some("kid-540"));
        let sub = &mpd.periods[0].adaptation_sets[2].representations[0];
        assert_eq!(sub.default_kid(), None);
    }

    #[test]
    fn shared_kid_deduplicated() {
        // Audio sharing the video key (the "minimal" practice from Table I)
        // yields a single distinct key id.
        let mut set = AdaptationSet {
            content_type: ContentType::Audio,
            lang: None,
            content_protections: vec![ContentProtection::mp4_protection("cenc", "shared")],
            representations: vec![],
        };
        let mut rep = Representation::new("a", 1);
        rep.content_protections = vec![ContentProtection::mp4_protection("cenc", "shared")];
        set.representations.push(rep);
        assert_eq!(set.key_ids(), vec!["shared"]);
    }

    #[test]
    fn segment_urls_survive() {
        let mpd = demo_mpd();
        let xml = mpd.to_xml_string();
        let parsed = Mpd::parse(&xml).unwrap();
        let rep = &parsed.periods[0].adaptation_sets[0].representations[1];
        assert_eq!(rep.init_url, "video/720/init.mp4");
        assert_eq!(rep.segment_urls.len(), 2);
        assert_eq!(rep.resolution, Some((1280, 720)));
    }

    #[test]
    fn widevine_descriptor_recognizable() {
        let mpd = demo_mpd();
        let xml = mpd.to_xml_string();
        assert!(xml.contains(WIDEVINE_SCHEME));
        let parsed = Mpd::parse(&xml).unwrap();
        let rep = &parsed.periods[0].adaptation_sets[0].representations[0];
        assert!(rep.content_protections.iter().any(|cp| cp.scheme_id_uri == WIDEVINE_SCHEME));
    }

    #[test]
    fn empty_mpd_round_trip() {
        let mpd = Mpd { title: String::new(), periods: vec![] };
        assert_eq!(Mpd::parse(&mpd.to_xml_string()).unwrap(), mpd);
    }

    #[test]
    fn title_with_specials_round_trip() {
        let mpd = Mpd { title: "A & B <Pilot> \"S1\"".into(), periods: vec![] };
        assert_eq!(Mpd::parse(&mpd.to_xml_string()).unwrap().title, "A & B <Pilot> \"S1\"");
    }

    #[test]
    fn garbled_bandwidth_is_a_typed_error() {
        // Regression: a malformed bandwidth attribute used to parse to 0
        // via unwrap_or, making the representation look infinitely cheap.
        let xml =
            demo_mpd().to_xml_string().replacen("bandwidth=\"1080000\"", "bandwidth=\"cheap\"", 1);
        assert!(xml.contains("bandwidth=\"cheap\""), "fixture must contain the garbled attribute");
        assert_eq!(
            Mpd::parse(&xml),
            Err(MpdError::BadAttribute {
                element: "Representation",
                attribute: "bandwidth",
                value: "cheap".into(),
            })
        );
    }

    #[test]
    fn missing_bandwidth_is_a_typed_error() {
        let xml = demo_mpd().to_xml_string().replacen(" bandwidth=\"1080000\"", "", 1);
        assert_eq!(
            Mpd::parse(&xml),
            Err(MpdError::MissingAttribute { element: "Representation", attribute: "bandwidth" })
        );
    }

    #[test]
    fn mpd_error_wraps_xml_error() {
        let err = Mpd::parse("<MPD><Period>").unwrap_err();
        assert!(matches!(err, MpdError::Xml(_)), "truncated XML surfaces as MpdError::Xml: {err}");
        assert!(err.to_string().starts_with("malformed XML"));
    }
}
