//! A minimal XML codec, sufficient for MPD documents.
//!
//! Supports elements, attributes, text nodes, the five predefined entity
//! escapes, comments, and an optional XML declaration. No namespaces
//! processing (prefixes are kept verbatim in names), no DTDs, no CDATA —
//! none of which MPDs produced by this workspace use.

use std::fmt;

/// A node in the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// A text run (unescaped form).
    Text(String),
}

/// An XML element with attributes and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name (may contain a namespace prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

/// Errors from the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended unexpectedly.
    UnexpectedEof,
    /// A structural token was malformed at the given byte offset.
    Malformed {
        /// Byte offset of the problem.
        at: usize,
        /// Short description.
        what: &'static str,
    },
    /// A closing tag did not match its opening tag.
    MismatchedTag {
        /// The tag that was open.
        open: String,
        /// The closing tag encountered.
        close: String,
    },
    /// An unknown entity reference.
    UnknownEntity {
        /// The entity text between `&` and `;`.
        entity: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => f.write_str("unexpected end of XML input"),
            XmlError::Malformed { at, what } => write!(f, "malformed XML at byte {at}: {what}"),
            XmlError::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")
            }
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
        }
    }
}

impl std::error::Error for XmlError {}

impl XmlElement {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement { name: name.into(), ..Default::default() }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks up an attribute value.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Iterates over child elements with the given name.
    pub fn elements<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children.iter().filter_map(move |c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// First child element with the given name.
    pub fn element<'a>(&'a self, name: &str) -> Option<&'a XmlElement> {
        self.children.iter().find_map(|c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of direct text children.
    pub fn text_content(&self) -> String {
        self.children
            .iter()
            .filter_map(|c| match c {
                XmlNode::Text(t) => Some(t.as_str()),
                XmlNode::Element(_) => None,
            })
            .collect()
    }

    /// Serializes the element (without an XML declaration).
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        // Text-only elements inline their content; mixed/element content
        // gets indentation.
        let only_text = self.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
        out.push('>');
        if only_text {
            for c in &self.children {
                if let XmlNode::Text(t) = c {
                    out.push_str(&escape(t));
                }
            }
        } else {
            out.push('\n');
            for c in &self.children {
                match c {
                    XmlNode::Element(e) => e.write(out, depth + 1),
                    XmlNode::Text(t) => {
                        let trimmed = t.trim();
                        if !trimmed.is_empty() {
                            out.push_str(&"  ".repeat(depth + 1));
                            out.push_str(&escape(trimmed));
                            out.push('\n');
                        }
                    }
                }
            }
            out.push_str(&indent);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }

    /// Parses a document (optionally starting with an XML declaration)
    /// into its root element.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input.
    pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
        let mut p = Parser { input: input.as_bytes(), pos: 0 };
        p.skip_prolog()?;
        let root = p.parse_element()?;
        p.skip_whitespace_and_comments()?;
        if p.pos != p.input.len() {
            return Err(XmlError::Malformed { at: p.pos, what: "trailing content after root" });
        }
        Ok(root)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, XmlError> {
        let b = self.peek().ok_or(XmlError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.pos >= self.input.len() {
            Err(XmlError::UnexpectedEof)
        } else {
            Err(XmlError::Malformed { at: self.pos, what: "unexpected token" })
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                let end =
                    find_from(self.input, self.pos + 4, b"-->").ok_or(XmlError::UnexpectedEof)?;
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            let end = find_from(self.input, self.pos, b"?>").ok_or(XmlError::UnexpectedEof)?;
            self.pos = end + 2;
        }
        self.skip_whitespace_and_comments()
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Malformed { at: start, what: "expected a name" });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = self.bump()?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::Malformed { at: self.pos - 1, what: "expected a quote" });
        }
        let start = self.pos;
        while self.peek() != Some(quote) {
            if self.peek().is_none() {
                return Err(XmlError::UnexpectedEof);
            }
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.pos += 1; // consume closing quote
        unescape(&raw)
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    element.attrs.push((key, value));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }

        // Children until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                self.skip_whitespace();
                self.expect(">")?;
                if close != element.name {
                    return Err(XmlError::MismatchedTag { open: element.name, close });
                }
                return Ok(element);
            }
            if self.starts_with("<!--") {
                self.skip_whitespace_and_comments()?;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(XmlNode::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(&raw)?;
                    if !text.trim().is_empty() {
                        element.children.push(XmlNode::Text(text.trim().to_owned()));
                    }
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

fn unescape(s: &str) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let entity: String = chars.by_ref().take_while(|&c| c != ';').collect();
        match entity.as_str() {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => return Err(XmlError::UnknownEntity { entity }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = XmlElement::new("MPD")
            .attr("profiles", "urn:mpeg:dash")
            .child(XmlElement::new("Period"))
            .text("note");
        assert_eq!(e.attribute("profiles"), Some("urn:mpeg:dash"));
        assert_eq!(e.attribute("missing"), None);
        assert!(e.element("Period").is_some());
        assert_eq!(e.elements("Period").count(), 1);
        assert_eq!(e.text_content(), "note");
    }

    #[test]
    fn simple_round_trip() {
        let e = XmlElement::new("Root")
            .attr("a", "1")
            .child(XmlElement::new("Leaf").attr("b", "x&y"))
            .child(XmlElement::new("Txt").text("hello <world>"));
        let s = e.to_xml_string();
        let parsed = XmlElement::parse(&s).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn self_closing_and_nested() {
        let doc = r#"<A><B x="1"/><C><D/></C></A>"#;
        let e = XmlElement::parse(doc).unwrap();
        assert_eq!(e.name, "A");
        assert_eq!(e.element("B").unwrap().attribute("x"), Some("1"));
        assert!(e.element("C").unwrap().element("D").is_some());
    }

    #[test]
    fn xml_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- generated -->\n<R><!-- inner --><S/></R>\n";
        let e = XmlElement::parse(doc).unwrap();
        assert_eq!(e.name, "R");
        assert!(e.element("S").is_some());
    }

    #[test]
    fn entity_escapes_round_trip() {
        let e = XmlElement::new("T").attr("v", "a\"b'c<d>e&f").text("x < y & z");
        let parsed = XmlElement::parse(&e.to_xml_string()).unwrap();
        assert_eq!(parsed.attribute("v"), Some("a\"b'c<d>e&f"));
        assert_eq!(parsed.text_content(), "x < y & z");
    }

    #[test]
    fn unknown_entity_rejected() {
        assert_eq!(
            XmlElement::parse("<A>&bogus;</A>"),
            Err(XmlError::UnknownEntity { entity: "bogus".into() })
        );
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = XmlElement::parse("<A><B></C></A>").unwrap_err();
        assert_eq!(err, XmlError::MismatchedTag { open: "B".into(), close: "C".into() });
    }

    #[test]
    fn truncation_rejected() {
        assert_eq!(XmlElement::parse("<A><B>"), Err(XmlError::UnexpectedEof));
        assert_eq!(XmlElement::parse("<A attr=\"x"), Err(XmlError::UnexpectedEof));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(matches!(XmlElement::parse("<A/><B/>"), Err(XmlError::Malformed { .. })));
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let doc = r#"<cenc:pssh xmlns:cenc="urn:mpeg:cenc:2013">data</cenc:pssh>"#;
        let e = XmlElement::parse(doc).unwrap();
        assert_eq!(e.name, "cenc:pssh");
        assert_eq!(e.attribute("xmlns:cenc"), Some("urn:mpeg:cenc:2013"));
        assert_eq!(e.text_content(), "data");
    }

    #[test]
    fn single_quoted_attributes() {
        let e = XmlElement::parse("<A x='1'/>").unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
    }

    #[test]
    fn deep_nesting_round_trip() {
        let mut e = XmlElement::new("L0");
        for i in 1..20 {
            e = XmlElement::new(format!("L{i}")).child(e);
        }
        let parsed = XmlElement::parse(&e.to_xml_string()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn error_display() {
        assert!(XmlError::UnexpectedEof.to_string().contains("end"));
        assert!(XmlError::MismatchedTag { open: "a".into(), close: "b".into() }
            .to_string()
            .contains("</b>"));
    }
}
