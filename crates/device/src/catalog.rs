//! Device models: the handsets the study runs on.

use std::fmt;

/// Widevine security level (L1 is TEE-backed; L3 is software-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityLevel {
    /// All CDM operations in the TEE; HD playback allowed.
    L1,
    /// Media path in the TEE, crypto outside (rare; not simulated further).
    L2,
    /// Fully software CDM; sub-HD playback only.
    L3,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::L1 => f.write_str("L1"),
            SecurityLevel::L2 => f.write_str("L2"),
            SecurityLevel::L3 => f.write_str("L3"),
        }
    }
}

/// A CDM release version (`major.minor.patch`), orderable so revocation
/// policies can express "versions below X are revoked".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CdmVersion {
    /// Major version.
    pub major: u16,
    /// Minor version.
    pub minor: u16,
    /// Patch version.
    pub patch: u16,
}

impl CdmVersion {
    /// Creates a version triple.
    pub const fn new(major: u16, minor: u16, patch: u16) -> Self {
        CdmVersion { major, minor, patch }
    }
}

impl fmt::Display for CdmVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// A concrete handset configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    /// Marketing name.
    pub name: String,
    /// Android major version (6 for the discontinued handset, 12 modern).
    pub android_version: u8,
    /// The Widevine CDM version shipped on the device.
    pub cdm_version: CdmVersion,
    /// The best security level the hardware supports.
    pub security_level: SecurityLevel,
    /// Whether the device no longer receives security updates.
    pub discontinued: bool,
}

impl DeviceModel {
    /// The paper's discontinued handset: a 2013-class device stuck on
    /// Android 6.0.1 with Widevine L3 CDM v3.1.0 and no security updates.
    pub fn nexus_5() -> Self {
        DeviceModel {
            name: "Nexus 5".into(),
            android_version: 6,
            cdm_version: CdmVersion::new(3, 1, 0),
            security_level: SecurityLevel::L3,
            discontinued: true,
        }
    }

    /// A modern TEE-backed handset with a current CDM (the study's L1
    /// reference device).
    pub fn pixel_6() -> Self {
        DeviceModel {
            name: "Pixel 6".into(),
            android_version: 12,
            cdm_version: CdmVersion::new(16, 0, 0),
            security_level: SecurityLevel::L1,
            discontinued: false,
        }
    }

    /// A mid-range modern handset without a usable TEE, running the
    /// *current* L3 CDM — distinguishes "L3 because old" from "L3 by
    /// hardware" in the ablations.
    pub fn midrange_l3() -> Self {
        DeviceModel {
            name: "Midrange L3".into(),
            android_version: 12,
            cdm_version: CdmVersion::new(16, 0, 0),
            security_level: SecurityLevel::L3,
            discontinued: false,
        }
    }

    /// The process hosting the CDM: `mediadrmserver` from Android 7,
    /// `mediaserver` before (exactly the distinction the paper's Frida
    /// script makes).
    pub fn drm_process_name(&self) -> &'static str {
        if self.android_version >= 7 {
            "mediadrmserver"
        } else {
            "mediaserver"
        }
    }

    /// The Widevine HAL library name on this device.
    pub fn widevine_library(&self) -> &'static str {
        if self.android_version >= 9 {
            "libwvhidl.so"
        } else {
            "libwvdrmengine.so"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_level_ordering_and_display() {
        assert!(SecurityLevel::L1 < SecurityLevel::L3);
        assert_eq!(SecurityLevel::L1.to_string(), "L1");
        assert_eq!(SecurityLevel::L3.to_string(), "L3");
    }

    #[test]
    fn cdm_version_ordering() {
        let old = CdmVersion::new(3, 1, 0);
        let new = CdmVersion::new(16, 0, 0);
        assert!(old < new);
        assert!(CdmVersion::new(3, 1, 0) < CdmVersion::new(3, 2, 0));
        assert!(CdmVersion::new(3, 1, 0) < CdmVersion::new(3, 1, 1));
        assert_eq!(old.to_string(), "3.1.0");
    }

    #[test]
    fn nexus_5_matches_paper_configuration() {
        let n5 = DeviceModel::nexus_5();
        assert_eq!(n5.android_version, 6);
        assert_eq!(n5.cdm_version, CdmVersion::new(3, 1, 0));
        assert_eq!(n5.security_level, SecurityLevel::L3);
        assert!(n5.discontinued);
        assert_eq!(n5.drm_process_name(), "mediaserver");
        assert_eq!(n5.widevine_library(), "libwvdrmengine.so");
    }

    #[test]
    fn pixel_6_is_modern_l1() {
        let p6 = DeviceModel::pixel_6();
        assert_eq!(p6.security_level, SecurityLevel::L1);
        assert!(!p6.discontinued);
        assert_eq!(p6.drm_process_name(), "mediadrmserver");
        assert_eq!(p6.widevine_library(), "libwvhidl.so");
    }

    #[test]
    fn midrange_is_current_but_l3() {
        let m = DeviceModel::midrange_l3();
        assert_eq!(m.security_level, SecurityLevel::L3);
        assert!(!m.discontinued);
        assert_eq!(m.cdm_version, DeviceModel::pixel_6().cdm_version);
    }
}
