//! Device models: the handsets the study runs on.

use std::fmt;

/// Widevine security level (L1 is TEE-backed; L3 is software-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SecurityLevel {
    /// All CDM operations in the TEE; HD playback allowed.
    L1,
    /// Media path in the TEE, crypto outside (rare; not simulated further).
    L2,
    /// Fully software CDM; sub-HD playback only.
    L3,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::L1 => f.write_str("L1"),
            SecurityLevel::L2 => f.write_str("L2"),
            SecurityLevel::L3 => f.write_str("L3"),
        }
    }
}

/// A CDM release version (`major.minor.patch`), orderable so revocation
/// policies can express "versions below X are revoked".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CdmVersion {
    /// Major version.
    pub major: u16,
    /// Minor version.
    pub minor: u16,
    /// Patch version.
    pub patch: u16,
}

impl CdmVersion {
    /// Creates a version triple.
    pub const fn new(major: u16, minor: u16, patch: u16) -> Self {
        CdmVersion { major, minor, patch }
    }
}

impl fmt::Display for CdmVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// A concrete handset configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    /// Marketing name.
    pub name: String,
    /// Android major version (6 for the discontinued handset, 12 modern).
    pub android_version: u8,
    /// The Widevine CDM version shipped on the device.
    pub cdm_version: CdmVersion,
    /// The best security level the hardware supports.
    pub security_level: SecurityLevel,
    /// Whether the device no longer receives security updates.
    pub discontinued: bool,
}

impl DeviceModel {
    /// The paper's discontinued handset: a 2013-class device stuck on
    /// Android 6.0.1 with Widevine L3 CDM v3.1.0 and no security updates.
    pub fn nexus_5() -> Self {
        DeviceModel {
            name: "Nexus 5".into(),
            android_version: 6,
            cdm_version: CdmVersion::new(3, 1, 0),
            security_level: SecurityLevel::L3,
            discontinued: true,
        }
    }

    /// A modern TEE-backed handset with a current CDM (the study's L1
    /// reference device).
    pub fn pixel_6() -> Self {
        DeviceModel {
            name: "Pixel 6".into(),
            android_version: 12,
            cdm_version: CdmVersion::new(16, 0, 0),
            security_level: SecurityLevel::L1,
            discontinued: false,
        }
    }

    /// A mid-range modern handset without a usable TEE, running the
    /// *current* L3 CDM — distinguishes "L3 because old" from "L3 by
    /// hardware" in the ablations.
    pub fn midrange_l3() -> Self {
        DeviceModel {
            name: "Midrange L3".into(),
            android_version: 12,
            cdm_version: CdmVersion::new(16, 0, 0),
            security_level: SecurityLevel::L3,
            discontinued: false,
        }
    }

    /// One entry of the *generated* wide catalog: a pure function of
    /// `device_id`, so any process holding an id range can materialise
    /// exactly its shard of the fleet without coordination. The
    /// generator sweeps model × Android × CDM-version combinations
    /// across [`CATALOG_VENDORS`] and Android 6–14, with CDM versions
    /// tied to the Android era ([`cdm_for_android`]), handsets on
    /// Android ≤ 7 software-only and discontinued (the Nexus-5 class),
    /// and every fourth modern handset a midrange L3 (L3 by hardware,
    /// not by age). Deliberately seedless: the catalog is part of the
    /// campaign's *identity*, so two campaigns over the same id range
    /// measure the same fleet regardless of seeds or sharding.
    #[must_use]
    pub fn catalog(device_id: u64) -> Self {
        let vendor = CATALOG_VENDORS[usize::try_from(device_id % CATALOG_VENDORS.len() as u64)
            .expect("vendor index fits usize")];
        // Stride the Android sweep by a constant coprime to the vendor
        // count so adjacent ids vary both axes.
        let android_version = CATALOG_ANDROID_VERSIONS[usize::try_from(
            (device_id / 3) % CATALOG_ANDROID_VERSIONS.len() as u64,
        )
        .expect("android index fits usize")];
        let legacy = android_version <= 7;
        let security_level =
            if legacy || device_id % 4 == 3 { SecurityLevel::L3 } else { SecurityLevel::L1 };
        let cdm = cdm_for_android(android_version);
        let cdm_version = CdmVersion::new(
            cdm.major,
            cdm.minor + u16::try_from(device_id % 3).expect("minor delta fits u16"),
            u16::try_from(device_id % 5).expect("patch fits u16"),
        );
        DeviceModel {
            name: format!("{vendor} {}{}", 100 + device_id / 24, security_level),
            android_version,
            cdm_version,
            security_level,
            discontinued: legacy,
        }
    }

    /// The process hosting the CDM: `mediadrmserver` from Android 7,
    /// `mediaserver` before (exactly the distinction the paper's Frida
    /// script makes).
    pub fn drm_process_name(&self) -> &'static str {
        if self.android_version >= 7 {
            "mediadrmserver"
        } else {
            "mediaserver"
        }
    }

    /// The Widevine HAL library name on this device.
    pub fn widevine_library(&self) -> &'static str {
        if self.android_version >= 9 {
            "libwvhidl.so"
        } else {
            "libwvdrmengine.so"
        }
    }
}

/// The vendor names the generated catalog cycles through.
pub const CATALOG_VENDORS: [&str; 8] =
    ["Pixel", "Galaxy", "Xperia", "Redmi", "Moto", "Nord", "Reno", "Axon"];

/// The Android major versions the generated catalog sweeps.
pub const CATALOG_ANDROID_VERSIONS: [u8; 9] = [6, 7, 8, 9, 10, 11, 12, 13, 14];

/// The baseline Widevine CDM release for an Android era — the version a
/// handset of that generation shipped with (the paper's Nexus 5 pins
/// Android 6 at CDM 3.1.x; the Pixel 6 pins Android 12 at 16.x). The
/// generated catalog varies minor/patch per device around these.
#[must_use]
pub const fn cdm_for_android(android_version: u8) -> CdmVersion {
    let major: u16 = match android_version {
        0..=6 => 3,
        7 => 4,
        8 => 11,
        9 => 13,
        10 => 14,
        11 => 15,
        12 => 16,
        13 => 17,
        _ => 18,
    };
    CdmVersion::new(major, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_level_ordering_and_display() {
        assert!(SecurityLevel::L1 < SecurityLevel::L3);
        assert_eq!(SecurityLevel::L1.to_string(), "L1");
        assert_eq!(SecurityLevel::L3.to_string(), "L3");
    }

    #[test]
    fn cdm_version_ordering() {
        let old = CdmVersion::new(3, 1, 0);
        let new = CdmVersion::new(16, 0, 0);
        assert!(old < new);
        assert!(CdmVersion::new(3, 1, 0) < CdmVersion::new(3, 2, 0));
        assert!(CdmVersion::new(3, 1, 0) < CdmVersion::new(3, 1, 1));
        assert_eq!(old.to_string(), "3.1.0");
    }

    #[test]
    fn nexus_5_matches_paper_configuration() {
        let n5 = DeviceModel::nexus_5();
        assert_eq!(n5.android_version, 6);
        assert_eq!(n5.cdm_version, CdmVersion::new(3, 1, 0));
        assert_eq!(n5.security_level, SecurityLevel::L3);
        assert!(n5.discontinued);
        assert_eq!(n5.drm_process_name(), "mediaserver");
        assert_eq!(n5.widevine_library(), "libwvdrmengine.so");
    }

    #[test]
    fn pixel_6_is_modern_l1() {
        let p6 = DeviceModel::pixel_6();
        assert_eq!(p6.security_level, SecurityLevel::L1);
        assert!(!p6.discontinued);
        assert_eq!(p6.drm_process_name(), "mediadrmserver");
        assert_eq!(p6.widevine_library(), "libwvhidl.so");
    }

    #[test]
    fn generated_catalog_is_a_pure_function_of_id() {
        for id in [0u64, 1, 17, 4095, 1 << 40] {
            assert_eq!(DeviceModel::catalog(id), DeviceModel::catalog(id));
        }
        assert_ne!(DeviceModel::catalog(0), DeviceModel::catalog(1));
    }

    #[test]
    fn generated_catalog_spans_thousands_of_combinations() {
        use std::collections::BTreeSet;
        let combos: BTreeSet<_> = (0..4096u64)
            .map(|id| {
                let m = DeviceModel::catalog(id);
                (m.name.clone(), m.android_version, m.cdm_version, m.security_level)
            })
            .collect();
        assert!(combos.len() > 2000, "only {} distinct combinations", combos.len());
    }

    #[test]
    fn generated_catalog_respects_era_invariants() {
        for id in 0..4096u64 {
            let m = DeviceModel::catalog(id);
            // Legacy handsets are software-only and out of support.
            assert_eq!(m.discontinued, m.android_version <= 7, "{m:?}");
            if m.android_version <= 7 {
                assert_eq!(m.security_level, SecurityLevel::L3, "{m:?}");
            }
            // CDM majors track the Android era.
            assert_eq!(m.cdm_version.major, cdm_for_android(m.android_version).major, "{m:?}");
            // The generator never emits the unsimulated L2 tier.
            assert_ne!(m.security_level, SecurityLevel::L2, "{m:?}");
        }
    }

    #[test]
    fn generated_catalog_mixes_revocation_eras() {
        // The default revocation floor is CDM 14.0.0: the sweep must
        // produce devices on both sides of it for the compliance matrix
        // to be interesting.
        let below = (0..1024u64)
            .filter(|&id| DeviceModel::catalog(id).cdm_version < CdmVersion::new(14, 0, 0))
            .count();
        assert!(below > 100, "only {below} revoked-era devices");
        assert!(below < 924, "almost everything revoked: {below}");
    }

    #[test]
    fn midrange_is_current_but_l3() {
        let m = DeviceModel::midrange_l3();
        assert_eq!(m.security_level, SecurityLevel::L3);
        assert!(!m.discontinued);
        assert_eq!(m.cdm_version, DeviceModel::pixel_6().cdm_version);
    }
}
