//! The function-interposition engine — the simulator's Frida.
//!
//! Instrumented libraries (the simulated Widevine CDM) report every entry
//! point invocation through [`HookEngine::trace`]. When no listener is
//! attached, tracing is free; when the monitor attaches, it receives a
//! [`CallEvent`] per call with dumped argument and result buffers, which
//! is precisely the paper's `_oeccXX` interception methodology.

use std::fmt;

use parking_lot::{Mutex, RwLock};

/// One intercepted call with dumped buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEvent {
    /// Library the function belongs to (e.g. `libwvdrmengine.so`,
    /// `liboemcrypto.so`).
    pub library: String,
    /// Function name (e.g. `_oecc07_GenerateDerivedKeys`).
    pub function: String,
    /// Dumped input buffers.
    pub args: Vec<Vec<u8>>,
    /// Dumped output buffer, when the call produced one.
    pub result: Option<Vec<u8>>,
}

impl CallEvent {
    /// Creates an event with no buffers (calls that carry only handles).
    pub fn simple(library: impl Into<String>, function: impl Into<String>) -> Self {
        CallEvent {
            library: library.into(),
            function: function.into(),
            args: Vec::new(),
            result: None,
        }
    }
}

/// A hook listener callback.
pub type CallListener = Box<dyn Fn(&CallEvent) + Send + Sync>;

/// The interposition engine attached to one device.
pub struct HookEngine {
    listeners: RwLock<Vec<CallListener>>,
    /// A built-in recording sink, convenient for tests and the monitor.
    log: Mutex<Vec<CallEvent>>,
    recording: RwLock<bool>,
}

impl fmt::Debug for HookEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HookEngine(listeners: {}, recording: {}, events: {})",
            self.listeners.read().len(),
            *self.recording.read(),
            self.log.lock().len()
        )
    }
}

impl Default for HookEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl HookEngine {
    /// Creates an engine with no listeners and recording off.
    pub fn new() -> Self {
        HookEngine {
            listeners: RwLock::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            recording: RwLock::new(false),
        }
    }

    /// Whether any instrumentation is active (fast path check for the
    /// instrumented library).
    pub fn is_active(&self) -> bool {
        *self.recording.read() || !self.listeners.read().is_empty()
    }

    /// Attaches a listener.
    pub fn attach(&self, listener: CallListener) {
        self.listeners.write().push(listener);
    }

    /// Starts recording events into the built-in log.
    pub fn start_recording(&self) {
        *self.recording.write() = true;
    }

    /// Stops recording and returns everything captured.
    pub fn stop_recording(&self) -> Vec<CallEvent> {
        *self.recording.write() = false;
        std::mem::take(&mut *self.log.lock())
    }

    /// Snapshots the recorded events without clearing them.
    pub fn recorded(&self) -> Vec<CallEvent> {
        self.log.lock().clone()
    }

    /// Reports a call. Instrumented code calls this unconditionally; the
    /// engine drops the event when nothing is attached.
    pub fn trace(&self, event: CallEvent) {
        if !self.is_active() {
            return;
        }
        for l in self.listeners.read().iter() {
            l(&event);
        }
        if *self.recording.read() {
            self.log.lock().push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn event(f: &str) -> CallEvent {
        CallEvent::simple("libwvdrmengine.so", f)
    }

    #[test]
    fn inactive_engine_drops_events() {
        let e = HookEngine::new();
        assert!(!e.is_active());
        e.trace(event("_oecc01_Initialize"));
        assert!(e.recorded().is_empty());
    }

    #[test]
    fn recording_captures_in_order() {
        let e = HookEngine::new();
        e.start_recording();
        assert!(e.is_active());
        e.trace(event("_oecc01_Initialize"));
        e.trace(event("_oecc04_OpenSession"));
        let log = e.stop_recording();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].function, "_oecc01_Initialize");
        assert_eq!(log[1].function, "_oecc04_OpenSession");
        // Log is drained and recording stopped.
        assert!(e.recorded().is_empty());
        e.trace(event("_oecc05_CloseSession"));
        assert!(e.recorded().is_empty());
    }

    #[test]
    fn listeners_see_every_event() {
        let e = HookEngine::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        e.attach(Box::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        e.trace(event("a"));
        e.trace(event("b"));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn listeners_receive_buffers() {
        let e = HookEngine::new();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        e.attach(Box::new(move |ev| {
            s2.lock().push(ev.clone());
        }));
        let ev = CallEvent {
            library: "liboemcrypto.so".into(),
            function: "_oecc21_DecryptCTR".into(),
            args: vec![vec![1, 2, 3], vec![4]],
            result: Some(vec![9]),
        };
        e.trace(ev.clone());
        assert_eq!(seen.lock().as_slice(), &[ev]);
    }

    #[test]
    fn recorded_snapshot_does_not_drain() {
        let e = HookEngine::new();
        e.start_recording();
        e.trace(event("x"));
        assert_eq!(e.recorded().len(), 1);
        assert_eq!(e.recorded().len(), 1);
        assert_eq!(e.stop_recording().len(), 1);
    }

    #[test]
    fn debug_summarizes() {
        let e = HookEngine::new();
        e.start_recording();
        e.trace(event("x"));
        let s = format!("{e:?}");
        assert!(s.contains("events: 1"));
    }
}
