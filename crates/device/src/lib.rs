//! An Android device simulator for the WideLeak study.
//!
//! The paper's methodology instruments a real handset: Frida hooks the
//! Widevine CDM process, Burp intercepts TLS after an SSL-repinning
//! bypass, and (for the practical attack) the researcher scans the L3
//! CDM's process memory for the keybox. This crate models the handset-side
//! machinery that makes those techniques expressible:
//!
//! - [`memory`] — per-process memory maps with named regions, readable by
//!   an attacker with root (CWE-922 is "sensitive data in a readable
//!   region");
//! - [`hooks`] — a function-interposition engine (the Frida stand-in) that
//!   libraries report their calls through when instrumented;
//! - [`net`] — a TLS transport with certificate pinning and an optional
//!   interception proxy whose success depends on a repinning bypass;
//! - [`catalog`] — concrete device models (a modern L1 handset, the
//!   discontinued Nexus-5-class L3 handset) with Android and CDM versions.
//!
//! # Examples
//!
//! ```
//! use wideleak_device::catalog::DeviceModel;
//! use wideleak_device::Device;
//!
//! let device = Device::new(DeviceModel::nexus_5());
//! assert!(device.model().discontinued);
//! assert_eq!(device.model().security_level, wideleak_device::catalog::SecurityLevel::L3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod hooks;
pub mod memory;
pub mod net;

use std::fmt;
use std::sync::Arc;

use catalog::DeviceModel;
use hooks::HookEngine;
use memory::ProcessMemory;
use net::NetworkStack;

/// Errors from device-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The operation requires a rooted device.
    RootRequired {
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// No process with the given name is running.
    NoSuchProcess {
        /// The requested process name.
        process: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::RootRequired { operation } => {
                write!(f, "{operation} requires a rooted device")
            }
            DeviceError::NoSuchProcess { process } => write!(f, "no such process: {process}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A simulated handset.
///
/// The device owns the process memory maps, the hook engine and the
/// network stack; the DRM stack (`wideleak-cdm`, `wideleak-android-drm`)
/// is wired onto a device when the stack boots.
pub struct Device {
    model: DeviceModel,
    rooted: bool,
    mediadrm_memory: Arc<ProcessMemory>,
    hooks: Arc<HookEngine>,
    network: Arc<NetworkStack>,
    /// Whether a (naive, detectable) debugger is attached to app
    /// processes. SafetyNet-style checks key on this; the WideLeak
    /// methodology never sets it because it instruments the *CDM*
    /// process instead (§V-B).
    app_debugger_attached: std::sync::atomic::AtomicBool,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Device({}, rooted: {})", self.model.name, self.rooted)
    }
}

impl Device {
    /// Powers on a device of the given model (not rooted).
    pub fn new(model: DeviceModel) -> Self {
        let process_name = model.drm_process_name().to_owned();
        Device {
            model,
            rooted: false,
            mediadrm_memory: Arc::new(ProcessMemory::new(process_name)),
            hooks: Arc::new(HookEngine::new()),
            network: Arc::new(NetworkStack::new()),
            app_debugger_attached: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Powers on a rooted device — the attacker's configuration.
    pub fn rooted(model: DeviceModel) -> Self {
        let mut d = Self::new(model);
        d.rooted = true;
        d
    }

    /// The device model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// Whether the device is rooted.
    pub fn is_rooted(&self) -> bool {
        self.rooted
    }

    /// The memory map of the process hosting the CDM
    /// (`mediadrmserver` from Android 7, `mediaserver` before).
    ///
    /// Writing into it needs no privilege (the CDM itself does that);
    /// *scanning* it from another process is gated by
    /// [`Device::scan_drm_process_memory`].
    pub fn drm_process_memory(&self) -> &Arc<ProcessMemory> {
        &self.mediadrm_memory
    }

    /// Attaches to the CDM process for memory scanning, as the attack PoC
    /// does with root privileges.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::RootRequired`] on a non-rooted device.
    pub fn scan_drm_process_memory(&self) -> Result<&ProcessMemory, DeviceError> {
        if !self.rooted {
            return Err(DeviceError::RootRequired { operation: "process memory scan" });
        }
        Ok(&self.mediadrm_memory)
    }

    /// The hook engine. Instrumented libraries report calls through it;
    /// installing hooks (attaching listeners) requires root.
    pub fn hook_engine(&self) -> &Arc<HookEngine> {
        &self.hooks
    }

    /// Attaches a hook listener (the Frida workflow).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::RootRequired`] on a non-rooted device.
    pub fn attach_hooks(&self, listener: hooks::CallListener) -> Result<(), DeviceError> {
        if !self.rooted {
            return Err(DeviceError::RootRequired { operation: "hook attachment" });
        }
        self.hooks.attach(listener);
        Ok(())
    }

    /// The device network stack.
    pub fn network(&self) -> &Arc<NetworkStack> {
        &self.network
    }

    /// Attaches a naive debugger to app processes — the detectable kind
    /// of dynamic analysis that SafetyNet-style attestation catches.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::RootRequired`] on a non-rooted device.
    pub fn attach_app_debugger(&self) -> Result<(), DeviceError> {
        if !self.rooted {
            return Err(DeviceError::RootRequired { operation: "app debugger attachment" });
        }
        self.app_debugger_attached.store(true, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }

    /// Whether a detectable debugger is attached to app processes.
    pub fn is_app_debugger_attached(&self) -> bool {
        self.app_debugger_attached.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Applies the SSL-repinning bypass (a Frida script in the paper;
    /// root-gated here like any instrumentation).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::RootRequired`] on a non-rooted device.
    pub fn apply_ssl_repinning_bypass(&self) -> Result<(), DeviceError> {
        if !self.rooted {
            return Err(DeviceError::RootRequired { operation: "SSL repinning bypass" });
        }
        self.network.apply_repinning_bypass();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_device_is_not_rooted() {
        let d = Device::new(DeviceModel::pixel_6());
        assert!(!d.is_rooted());
        assert!(matches!(d.scan_drm_process_memory(), Err(DeviceError::RootRequired { .. })));
        assert!(matches!(d.apply_ssl_repinning_bypass(), Err(DeviceError::RootRequired { .. })));
    }

    #[test]
    fn rooted_device_allows_instrumentation() {
        let d = Device::rooted(DeviceModel::nexus_5());
        assert!(d.is_rooted());
        assert!(d.scan_drm_process_memory().is_ok());
        assert!(d.apply_ssl_repinning_bypass().is_ok());
        assert!(d.attach_hooks(Box::new(|_| {})).is_ok());
    }

    #[test]
    fn drm_process_name_tracks_android_version() {
        let old = Device::new(DeviceModel::nexus_5());
        assert_eq!(old.drm_process_memory().process_name(), "mediaserver");
        let new = Device::new(DeviceModel::pixel_6());
        assert_eq!(new.drm_process_memory().process_name(), "mediadrmserver");
    }

    #[test]
    fn debug_output() {
        let d = Device::new(DeviceModel::nexus_5());
        assert!(format!("{d:?}").contains("Nexus 5"));
    }
}
