//! Simulated process memory maps.
//!
//! A [`ProcessMemory`] is a set of named regions, like `/proc/<pid>/maps`
//! entries. The L3 CDM allocates a region for its working buffers and —
//! this is CWE-922, the root cause behind CVE-2021-0639 — writes its
//! keybox there in cleartext during key-ladder initialization. The attack
//! PoC walks these regions exactly as the paper's tooling walked real
//! process memory.

use std::fmt;

use parking_lot::RwLock;

/// One mapped region of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region label (the backing library or heap name).
    pub name: String,
    /// The bytes of the region.
    pub bytes: Vec<u8>,
}

/// The memory map of one process.
pub struct ProcessMemory {
    process_name: String,
    regions: RwLock<Vec<Region>>,
}

impl fmt::Debug for ProcessMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let regions = self.regions.read();
        write!(
            f,
            "ProcessMemory({}, {} regions, {} bytes)",
            self.process_name,
            regions.len(),
            regions.iter().map(|r| r.bytes.len()).sum::<usize>()
        )
    }
}

impl ProcessMemory {
    /// Creates an empty memory map for a named process.
    pub fn new(process_name: impl Into<String>) -> Self {
        ProcessMemory { process_name: process_name.into(), regions: RwLock::new(Vec::new()) }
    }

    /// The owning process name.
    pub fn process_name(&self) -> &str {
        &self.process_name
    }

    /// Maps a new region, returning its index.
    pub fn map_region(&self, name: impl Into<String>, bytes: Vec<u8>) -> usize {
        let mut regions = self.regions.write();
        regions.push(Region { name: name.into(), bytes });
        regions.len() - 1
    }

    /// Overwrites part of a region.
    ///
    /// # Panics
    ///
    /// Panics if the region index or the byte range is out of bounds —
    /// the simulated equivalent of a segfault.
    pub fn write(&self, region: usize, offset: usize, data: &[u8]) {
        let mut regions = self.regions.write();
        let r = &mut regions[region];
        r.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Appends data to a region (heap-style growth), returning the offset
    /// the data landed at.
    ///
    /// # Panics
    ///
    /// Panics if the region index is out of bounds.
    pub fn append(&self, region: usize, data: &[u8]) -> usize {
        let mut regions = self.regions.write();
        let r = &mut regions[region];
        let offset = r.bytes.len();
        r.bytes.extend_from_slice(data);
        offset
    }

    /// Zeroizes a byte range (what a careful CDM would do after use).
    ///
    /// # Panics
    ///
    /// Panics if the region index or range is out of bounds.
    pub fn zeroize(&self, region: usize, offset: usize, len: usize) {
        let mut regions = self.regions.write();
        let r = &mut regions[region];
        r.bytes[offset..offset + len].fill(0);
    }

    /// Snapshots all regions (the attacker's memory dump).
    pub fn snapshot(&self) -> Vec<Region> {
        self.regions.read().clone()
    }

    /// Number of mapped regions.
    pub fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> usize {
        self.regions.read().iter().map(|r| r.bytes.len()).sum()
    }

    /// Scans all regions for a byte pattern; returns `(region index,
    /// offset)` pairs of every match.
    pub fn scan(&self, pattern: &[u8]) -> Vec<(usize, usize)> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let regions = self.regions.read();
        let mut hits = Vec::new();
        for (ri, region) in regions.iter().enumerate() {
            let mut start = 0usize;
            while start + pattern.len() <= region.bytes.len() {
                match region.bytes[start..].windows(pattern.len()).position(|w| w == pattern) {
                    Some(p) => {
                        hits.push((ri, start + p));
                        start += p + 1;
                    }
                    None => break,
                }
            }
        }
        hits
    }

    /// Reads a byte range out of a region, if in bounds.
    pub fn read(&self, region: usize, offset: usize, len: usize) -> Option<Vec<u8>> {
        let regions = self.regions.read();
        regions.get(region).and_then(|r| r.bytes.get(offset..offset + len)).map(<[u8]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_write_read() {
        let mem = ProcessMemory::new("mediaserver");
        let r = mem.map_region("heap", vec![0u8; 64]);
        mem.write(r, 8, &[1, 2, 3]);
        assert_eq!(mem.read(r, 8, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(mem.read(r, 62, 4), None, "out of bounds read returns None");
        assert_eq!(mem.region_count(), 1);
        assert_eq!(mem.total_bytes(), 64);
    }

    #[test]
    fn append_returns_offset() {
        let mem = ProcessMemory::new("p");
        let r = mem.map_region("heap", vec![9u8; 4]);
        let off = mem.append(r, &[7, 7]);
        assert_eq!(off, 4);
        assert_eq!(mem.read(r, 4, 2).unwrap(), vec![7, 7]);
        assert_eq!(mem.total_bytes(), 6);
    }

    #[test]
    fn scan_finds_all_matches() {
        let mem = ProcessMemory::new("p");
        mem.map_region("a", b"xxkboxyy-kbox".to_vec());
        mem.map_region("b", b"kbox".to_vec());
        let hits = mem.scan(b"kbox");
        assert_eq!(hits, vec![(0, 2), (0, 9), (1, 0)]);
    }

    #[test]
    fn scan_overlapping_matches() {
        let mem = ProcessMemory::new("p");
        mem.map_region("a", b"aaaa".to_vec());
        assert_eq!(mem.scan(b"aa"), vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn scan_empty_pattern_is_empty() {
        let mem = ProcessMemory::new("p");
        mem.map_region("a", vec![1, 2, 3]);
        assert!(mem.scan(&[]).is_empty());
    }

    #[test]
    fn zeroize_erases() {
        let mem = ProcessMemory::new("p");
        let r = mem.map_region("a", vec![0xFF; 16]);
        mem.zeroize(r, 4, 8);
        assert_eq!(mem.read(r, 4, 8).unwrap(), vec![0; 8]);
        assert_eq!(mem.read(r, 0, 4).unwrap(), vec![0xFF; 4]);
        // The secret no longer scans.
        assert!(mem.scan(&[0xFF; 8]).is_empty());
    }

    #[test]
    fn snapshot_is_a_copy() {
        let mem = ProcessMemory::new("p");
        let r = mem.map_region("a", vec![1, 2, 3]);
        let snap = mem.snapshot();
        mem.write(r, 0, &[9]);
        assert_eq!(snap[0].bytes, vec![1, 2, 3], "snapshot unaffected by later writes");
        assert_eq!(snap[0].name, "a");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mem = ProcessMemory::new("p");
        let r = mem.map_region("a", vec![0; 4]);
        mem.write(r, 3, &[1, 2, 3]);
    }

    #[test]
    fn debug_summary() {
        let mem = ProcessMemory::new("mediadrmserver");
        mem.map_region("libwvhidl.so", vec![0; 10]);
        let s = format!("{mem:?}");
        assert!(s.contains("mediadrmserver") && s.contains("1 regions") && s.contains("10 bytes"));
    }
}
