//! A TLS transport with certificate pinning and an interception proxy.
//!
//! OTT apps pin their backend certificates, so a plain man-in-the-middle
//! proxy breaks the handshake. The paper defeats this with a Frida-based
//! *SSL repinning* bypass, after which Burp sees every plaintext request.
//! This module models the three states that matter:
//!
//! 1. no proxy — traffic flows, nobody observes it;
//! 2. proxy attached, pinning intact — the connection **fails** (apps
//!    detect the foreign certificate);
//! 3. proxy attached, repinning bypass applied — traffic flows *and* the
//!    proxy records every request/response in plaintext.

use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// Errors surfaced by the network stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Certificate pinning rejected the proxy's certificate.
    PinningViolation,
    /// The remote endpoint rejected the request.
    EndpointError {
        /// The endpoint's error message.
        message: String,
    },
    /// The connection dropped mid-request (injected or real resets).
    ConnectionReset,
    /// The request exceeded the caller's per-call budget.
    TimedOut,
}

impl NetError {
    /// A stable lowercase label for telemetry error-class counters.
    pub fn class(&self) -> &'static str {
        match self {
            NetError::PinningViolation => "pinning_violation",
            NetError::EndpointError { .. } => "endpoint_error",
            NetError::ConnectionReset => "connection_reset",
            NetError::TimedOut => "timed_out",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PinningViolation => {
                f.write_str("TLS handshake failed: pinned certificate mismatch")
            }
            NetError::EndpointError { message } => write!(f, "endpoint error: {message}"),
            NetError::ConnectionReset => f.write_str("connection reset by peer"),
            NetError::TimedOut => f.write_str("request timed out"),
        }
    }
}

impl std::error::Error for NetError {}

impl wideleak_faults::ErrorClass for NetError {
    fn class(&self) -> &'static str {
        Self::class(self)
    }
}

/// A remote HTTP-like endpoint (implemented by the OTT backend servers).
pub trait RemoteEndpoint: Send + Sync {
    /// Handles one request, returning the response body.
    ///
    /// # Errors
    ///
    /// Implementations return an error message describing the rejection.
    fn handle(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, String>;
}

/// One plaintext exchange captured by the interception proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedExchange {
    /// Request path.
    pub path: String,
    /// Request body.
    pub request: Vec<u8>,
    /// Response body (empty when the endpoint failed).
    pub response: Vec<u8>,
}

/// The interception proxy (the simulator's Burp).
#[derive(Debug, Default)]
pub struct Interceptor {
    captured: Mutex<Vec<CapturedExchange>>,
}

impl Interceptor {
    /// Creates an empty proxy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything captured so far.
    pub fn captured(&self) -> Vec<CapturedExchange> {
        self.captured.lock().clone()
    }

    /// Clears the capture buffer.
    pub fn clear(&self) {
        self.captured.lock().clear();
    }

    fn record(&self, exchange: CapturedExchange) {
        self.captured.lock().push(exchange);
    }
}

/// The device's TLS stack.
pub struct NetworkStack {
    interceptor: RwLock<Option<Arc<Interceptor>>>,
    repinning_bypassed: RwLock<bool>,
}

impl fmt::Debug for NetworkStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NetworkStack(proxy: {}, repinning bypassed: {})",
            self.interceptor.read().is_some(),
            *self.repinning_bypassed.read()
        )
    }
}

impl Default for NetworkStack {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkStack {
    /// Creates a clean stack: no proxy, pinning intact.
    pub fn new() -> Self {
        NetworkStack { interceptor: RwLock::new(None), repinning_bypassed: RwLock::new(false) }
    }

    /// Routes the device's traffic through an interception proxy.
    pub fn attach_interceptor(&self, proxy: Arc<Interceptor>) {
        *self.interceptor.write() = Some(proxy);
    }

    /// Removes the proxy.
    pub fn detach_interceptor(&self) {
        *self.interceptor.write() = None;
    }

    /// Applies the SSL repinning bypass (called via
    /// [`crate::Device::apply_ssl_repinning_bypass`], which gates on root).
    pub(crate) fn apply_repinning_bypass(&self) {
        *self.repinning_bypassed.write() = true;
    }

    /// Whether the bypass is in place.
    pub fn is_repinning_bypassed(&self) -> bool {
        *self.repinning_bypassed.read()
    }

    /// Sends a pinned-TLS request from an app to an endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PinningViolation`] when a proxy is attached
    /// without the repinning bypass, or [`NetError::EndpointError`] when
    /// the endpoint rejects the request.
    pub fn send(
        &self,
        endpoint: &dyn RemoteEndpoint,
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        let proxy = self.interceptor.read().clone();
        if proxy.is_some() && !self.is_repinning_bypassed() {
            return Err(NetError::PinningViolation);
        }
        let result =
            endpoint.handle(path, body).map_err(|message| NetError::EndpointError { message });
        if let Some(proxy) = proxy {
            proxy.record(CapturedExchange {
                path: path.to_owned(),
                request: body.to_vec(),
                response: result.clone().unwrap_or_default(),
            });
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl RemoteEndpoint for Echo {
        fn handle(&self, path: &str, body: &[u8]) -> Result<Vec<u8>, String> {
            if path == "/fail" {
                return Err("nope".into());
            }
            Ok(body.to_vec())
        }
    }

    #[test]
    fn clean_stack_passes_traffic() {
        let net = NetworkStack::new();
        assert_eq!(net.send(&Echo, "/license", b"req").unwrap(), b"req");
    }

    #[test]
    fn proxy_without_bypass_breaks_handshake() {
        let net = NetworkStack::new();
        let proxy = Arc::new(Interceptor::new());
        net.attach_interceptor(proxy.clone());
        assert_eq!(net.send(&Echo, "/license", b"req"), Err(NetError::PinningViolation));
        assert!(proxy.captured().is_empty(), "nothing observable without the bypass");
    }

    #[test]
    fn proxy_with_bypass_captures_plaintext() {
        let net = NetworkStack::new();
        let proxy = Arc::new(Interceptor::new());
        net.attach_interceptor(proxy.clone());
        net.apply_repinning_bypass();
        assert!(net.is_repinning_bypassed());
        let resp = net.send(&Echo, "/manifest", b"GET title").unwrap();
        assert_eq!(resp, b"GET title");
        let captured = proxy.captured();
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].path, "/manifest");
        assert_eq!(captured[0].request, b"GET title");
        assert_eq!(captured[0].response, b"GET title");
    }

    #[test]
    fn endpoint_errors_propagate_and_are_captured() {
        let net = NetworkStack::new();
        let proxy = Arc::new(Interceptor::new());
        net.attach_interceptor(proxy.clone());
        net.apply_repinning_bypass();
        let err = net.send(&Echo, "/fail", b"x").unwrap_err();
        assert_eq!(err, NetError::EndpointError { message: "nope".into() });
        assert_eq!(proxy.captured()[0].response, Vec::<u8>::new());
    }

    #[test]
    fn detaching_proxy_restores_privacy() {
        let net = NetworkStack::new();
        let proxy = Arc::new(Interceptor::new());
        net.attach_interceptor(proxy.clone());
        net.apply_repinning_bypass();
        net.send(&Echo, "/a", b"1").unwrap();
        net.detach_interceptor();
        net.send(&Echo, "/b", b"2").unwrap();
        assert_eq!(proxy.captured().len(), 1);
    }

    #[test]
    fn interceptor_clear() {
        let proxy = Interceptor::new();
        proxy.record(CapturedExchange { path: "/x".into(), request: vec![], response: vec![] });
        assert_eq!(proxy.captured().len(), 1);
        proxy.clear();
        assert!(proxy.captured().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(NetError::PinningViolation.to_string().contains("pinned"));
    }
}
