//! The seeded fault injector and the shared virtual clock.
//!
//! One [`FaultInjector`] serves a whole ecosystem: the backend router
//! consults it per request path, the binder transports per transaction.
//! Decisions are pure functions of `(seed, rule index, per-rule call
//! sequence)` — no wall clock, no OS randomness — so the same plan and
//! seed replay the identical injection sequence, which the determinism
//! property test pins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::plan::{FaultKind, FaultPlan, FaultRule, Plane};

/// SplitMix64: the deterministic hash behind probabilistic schedules and
/// backoff jitter. Small, seedable, and identical on every platform.
#[must_use]
pub fn det_hash(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies a body-corruption fault to a response payload. Non-corruption
/// kinds return the body unchanged.
#[must_use]
pub fn corrupt_body(kind: &FaultKind, mut body: Vec<u8>) -> Vec<u8> {
    match kind {
        FaultKind::TruncateBody { keep } => {
            body.truncate(*keep);
            body
        }
        FaultKind::GarbleBody => {
            // Length-preserving scramble: every parser downstream sees a
            // plausible-sized but unusable payload.
            for b in &mut body {
                *b ^= 0xA5;
            }
            body
        }
        _ => body,
    }
}

/// The simulation's shared logical clock, in milliseconds. Injected
/// latency and client backoff advance it; per-call timeouts read it.
/// Never tied to wall time, so runs replay exactly.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ms: AtomicU64,
}

impl VirtualClock {
    /// A clock at zero.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Acquire)
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::AcqRel);
    }
}

/// One injected fault, as recorded in the injector's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionEvent {
    /// The plane the fault fired on.
    pub plane: Plane,
    /// The operation label that triggered it.
    pub op: String,
    /// The fault kind's stable label.
    pub kind: &'static str,
    /// Index of the firing rule in the plan.
    pub rule: usize,
    /// The rule's matching-call sequence number when it fired.
    pub seq: u64,
}

struct RuleState {
    rule: FaultRule,
    /// Matching calls seen so far (drives the schedule).
    seq: AtomicU64,
}

/// Evaluates a [`FaultPlan`] deterministically against live traffic.
pub struct FaultInjector {
    seed: u64,
    rules: Vec<RuleState>,
    clock: Arc<VirtualClock>,
    log: Mutex<Vec<InjectionEvent>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultInjector({} rules, seed {})", self.rules.len(), self.seed)
    }
}

impl FaultInjector {
    /// Builds an injector for a plan. An empty plan yields an inert
    /// injector (every [`decide`](Self::decide) returns `None`).
    #[must_use]
    pub fn new(plan: &FaultPlan, seed: u64) -> Self {
        FaultInjector {
            seed,
            rules: plan
                .rules()
                .iter()
                .map(|rule| RuleState { rule: rule.clone(), seq: AtomicU64::new(0) })
                .collect(),
            clock: Arc::new(VirtualClock::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// An inert injector (the empty plan).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(&FaultPlan::empty(), 0)
    }

    /// Whether any rule exists at all. Callers on hot paths skip the
    /// decision entirely when inactive.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.rules.is_empty()
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Decides whether traffic labelled `op` on `plane` faults. The
    /// first firing rule wins; its fault kind is returned, the event is
    /// logged, and the `fault.injected.<kind>` counter bumps.
    pub fn decide(&self, plane: Plane, op: &str) -> Option<FaultKind> {
        if self.rules.is_empty() {
            return None;
        }
        for (index, state) in self.rules.iter().enumerate() {
            if !state.rule.matches(plane, op) {
                continue;
            }
            let seq = state.seq.fetch_add(1, Ordering::AcqRel);
            let roll = det_hash(self.seed, ((index as u64) << 40) ^ seq) % 1000;
            if !state.rule.schedule.fires(seq, roll) {
                continue;
            }
            let kind = state.rule.kind.clone();
            self.log.lock().push(InjectionEvent {
                plane,
                op: op.to_owned(),
                kind: kind.label(),
                rule: index,
                seq,
            });
            if wideleak_telemetry::is_enabled() {
                wideleak_telemetry::incr(&format!("fault.injected.{}", kind.label()));
            }
            return Some(kind);
        }
        None
    }

    /// Everything injected so far, in firing order — the determinism
    /// property test compares this across replays.
    #[must_use]
    pub fn injection_log(&self) -> Vec<InjectionEvent> {
        self.log.lock().clone()
    }

    /// Total faults injected so far.
    #[must_use]
    pub fn injected_count(&self) -> u64 {
        self.log.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Schedule;

    fn burst_plan() -> FaultPlan {
        FaultPlan::builder()
            .server_fault("license/", FaultKind::ErrorCode, Schedule::FirstN { n: 2 })
            .binder_fault("decrypt_sample", FaultKind::Drop, Schedule::Once { at: 1 })
            .build()
    }

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_active());
        for _ in 0..100 {
            assert_eq!(inj.decide(Plane::Server, "license/x"), None);
        }
        assert!(inj.injection_log().is_empty());
    }

    #[test]
    fn schedules_count_matching_calls_per_rule() {
        let inj = FaultInjector::new(&burst_plan(), 7);
        // license rule: first two matching calls fault, the rest pass.
        assert_eq!(inj.decide(Plane::Server, "license/netflix/t"), Some(FaultKind::ErrorCode));
        // Non-matching traffic does not consume the rule's sequence.
        assert_eq!(inj.decide(Plane::Server, "manifest/netflix/t"), None);
        assert_eq!(inj.decide(Plane::Server, "license/netflix/t"), Some(FaultKind::ErrorCode));
        assert_eq!(inj.decide(Plane::Server, "license/netflix/t"), None);
        // Binder rule fires only on its second matching call.
        assert_eq!(inj.decide(Plane::Binder, "decrypt_sample"), None);
        assert_eq!(inj.decide(Plane::Binder, "decrypt_sample"), Some(FaultKind::Drop));
        assert_eq!(inj.decide(Plane::Binder, "decrypt_sample"), None);
        assert_eq!(inj.injected_count(), 3);
    }

    #[test]
    fn same_seed_replays_identically() {
        let drive = |seed: u64| {
            let plan = FaultPlan::builder()
                .any_fault(FaultKind::Drop, Schedule::PerMille { p: 300 })
                .build();
            let inj = FaultInjector::new(&plan, seed);
            for i in 0..200u64 {
                let _ = inj.decide(Plane::Binder, if i % 2 == 0 { "open" } else { "close" });
            }
            inj.injection_log()
        };
        assert_eq!(drive(42), drive(42));
        assert_ne!(drive(42), drive(43), "different seeds draw differently");
    }

    #[test]
    fn corrupt_body_truncates_and_garbles() {
        let body = vec![1u8, 2, 3, 4];
        assert_eq!(corrupt_body(&FaultKind::TruncateBody { keep: 2 }, body.clone()), vec![1, 2]);
        let garbled = corrupt_body(&FaultKind::GarbleBody, body.clone());
        assert_eq!(garbled.len(), body.len());
        assert_ne!(garbled, body);
        assert_eq!(corrupt_body(&FaultKind::Drop, body.clone()), body);
    }

    #[test]
    fn virtual_clock_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance_ms(250);
        clock.advance_ms(50);
        assert_eq!(clock.now_ms(), 300);
    }

    #[test]
    fn injection_bumps_telemetry_counter() {
        wideleak_telemetry::enable();
        let plan = FaultPlan::builder()
            .server_fault("probe", FaultKind::GarbleBody, Schedule::Always)
            .build();
        let inj = FaultInjector::new(&plan, 1);
        assert!(inj.decide(Plane::Server, "probe/x").is_some());
        let snapshot = wideleak_telemetry::snapshot();
        assert!(snapshot.counters.iter().any(|(name, _)| name == "fault.injected.garble_body"));
    }
}
