//! The fault-injection and resilience plane.
//!
//! WideLeak's Q1–Q4 hinge on how apps *react to failure*: refused
//! provisioning, rejected licenses, expired keys, broken transports. This
//! crate makes those failures first-class and reproducible:
//!
//! - [`plan`] — a declarative [`FaultPlan`]: which faults fire, where
//!   (server paths or binder transactions), and on what schedule;
//! - [`inject`] — the seeded [`FaultInjector`] that evaluates the plan
//!   deterministically and keeps an injection log, plus the shared
//!   [`VirtualClock`] faults and policies advance instead of wall time;
//! - [`policy`] — the client side: [`ResiliencePolicy`] with bounded
//!   retries, exponential backoff with deterministic jitter, per-call
//!   timeouts and graceful-degradation switches.
//!
//! Everything is keyed on seeds and per-rule counters — no wall clocks,
//! no OS randomness — so replaying a seeded plan yields the identical
//! injection sequence and telemetry stream every time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod policy;

pub use inject::{corrupt_body, det_hash, FaultInjector, InjectionEvent, VirtualClock};
pub use plan::{FaultKind, FaultPlan, FaultPlanBuilder, FaultRule, Plane, Schedule};
pub use policy::ResiliencePolicy;

/// Uniform error-class labelling across the workspace's error enums.
///
/// Every crate's error type already exposes an inherent
/// `class() -> &'static str`; this trait lifts those into one interface
/// so telemetry and the fault layer can label any error without
/// per-crate match arms.
pub trait ErrorClass {
    /// A stable lowercase label for telemetry error-class counters.
    fn class(&self) -> &'static str;
}

/// Bumps the `<prefix>.<class>` telemetry counter for an error — the one
/// shared error-recording path all layers use.
pub fn record_error(prefix: &str, error: &dyn ErrorClass) {
    if wideleak_telemetry::is_enabled() {
        wideleak_telemetry::incr(&format!("{prefix}.{}", error.class()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Boom;
    impl ErrorClass for Boom {
        fn class(&self) -> &'static str {
            "boom"
        }
    }

    #[test]
    fn record_error_labels_by_class() {
        wideleak_telemetry::enable();
        record_error("faults.test.error", &Boom);
        let snapshot = wideleak_telemetry::snapshot();
        assert!(snapshot.counters.iter().any(|(name, _)| name == "faults.test.error.boom"));
    }
}
