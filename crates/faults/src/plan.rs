//! Declarative fault plans: what breaks, where, and on what schedule.
//!
//! A [`FaultPlan`] is a list of [`FaultRule`]s evaluated in order by the
//! [`FaultInjector`](crate::FaultInjector). Rules scope to a *plane*
//! (server request paths or binder transactions), optionally narrow to
//! operations whose label contains a substring, and carry a
//! [`Schedule`] deciding which matching calls actually fault.
//!
//! The plan is pure data (`Clone + PartialEq + Eq`), so it can live in
//! ecosystem configs and be compared across runs; probabilities are
//! expressed per-mille as integers to keep equality exact.

/// What kind of failure a rule injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The server rejects the request with a synthetic 5xx-style error
    /// (binder plane: the transaction panics server-side).
    ErrorCode,
    /// The response body is truncated to its first `keep` bytes.
    TruncateBody {
        /// Bytes to keep from the front of the body.
        keep: usize,
    },
    /// The response body is bit-garbled (length preserved, contents
    /// XOR-scrambled) — models mid-stream corruption.
    GarbleBody,
    /// The call completes but the shared virtual clock advances by `ms`
    /// first — models network or scheduler latency.
    Latency {
        /// Injected delay in virtual milliseconds.
        ms: u64,
    },
    /// The connection (or binder channel) drops: the caller sees a
    /// transport-level failure and no response.
    Drop,
    /// The handler panics mid-transaction (binder plane) — exercises the
    /// transports' panic isolation.
    Panic,
    /// The CDM's logical clock jumps forward by `secs` — models device
    /// clock skew, which expires loaded licenses early.
    ClockSkew {
        /// Seconds of forward skew.
        secs: u64,
    },
}

impl FaultKind {
    /// Stable label for telemetry counters (`fault.injected.<label>`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ErrorCode => "error_code",
            FaultKind::TruncateBody { .. } => "truncate_body",
            FaultKind::GarbleBody => "garble_body",
            FaultKind::Latency { .. } => "latency",
            FaultKind::Drop => "drop",
            FaultKind::Panic => "panic",
            FaultKind::ClockSkew { .. } => "clock_skew",
        }
    }
}

/// Which request plane a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plane {
    /// OTT backend requests (provisioning, license, CDN). The op label is
    /// the request path, e.g. `license/netflix/title-001`.
    Server,
    /// Binder transactions to the media DRM server. The op label is the
    /// [`DrmCall`] kind, e.g. `decrypt_sample`.
    Binder,
    /// Both planes.
    Any,
}

impl Plane {
    /// Whether a rule scoped to `self` applies to traffic on `at`.
    #[must_use]
    pub fn covers(self, at: Plane) -> bool {
        self == Plane::Any || self == at
    }
}

/// When a matching call actually faults. Schedules count *matching*
/// calls per rule, starting at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Every matching call.
    Always,
    /// Only the `at`-th matching call (0-based).
    Once {
        /// Index of the single faulted call.
        at: u64,
    },
    /// The first `n` matching calls.
    FirstN {
        /// How many calls fault before the rule goes quiet.
        n: u64,
    },
    /// Every `n`-th matching call (0, n, 2n, ...).
    EveryNth {
        /// The stride (clamped to ≥ 1).
        n: u64,
    },
    /// Each matching call faults with probability `p`/1000, decided by
    /// the injector's seeded hash — deterministic for a given seed.
    PerMille {
        /// Probability numerator out of 1000.
        p: u32,
    },
}

impl Schedule {
    /// Whether the `seq`-th matching call fires. `roll` is a seeded
    /// uniform draw in `0..1000` supplied by the injector.
    #[must_use]
    pub fn fires(&self, seq: u64, roll: u64) -> bool {
        match self {
            Schedule::Always => true,
            Schedule::Once { at } => seq == *at,
            Schedule::FirstN { n } => seq < *n,
            Schedule::EveryNth { n } => seq.is_multiple_of((*n).max(1)),
            Schedule::PerMille { p } => roll < u64::from(*p),
        }
    }
}

/// One fault rule: plane + operation scope + kind + schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The plane this rule watches.
    pub plane: Plane,
    /// Substring the operation label must contain (`None` = all ops).
    pub op_contains: Option<String>,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Which matching calls fault.
    pub schedule: Schedule,
}

impl FaultRule {
    /// Whether this rule matches traffic labelled `op` on plane `at`.
    #[must_use]
    pub fn matches(&self, at: Plane, op: &str) -> bool {
        self.plane.covers(at)
            && self.op_contains.as_deref().is_none_or(|needle| op.contains(needle))
    }
}

/// A full fault plan: an ordered rule list. The first firing rule wins
/// per call. The default plan is empty (no faults — production
/// behaviour, byte-identical study output).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan (injects nothing).
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Starts building a plan.
    #[must_use]
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder { rules: Vec::new() }
    }

    /// Whether the plan has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, in evaluation order.
    #[must_use]
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// Builder for [`FaultPlan`] — the one place fault schedules are
/// composed.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    rules: Vec<FaultRule>,
}

impl FaultPlanBuilder {
    /// Adds a fully specified rule.
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a server-plane rule scoped to paths containing `op`.
    #[must_use]
    pub fn server_fault(self, op: &str, kind: FaultKind, schedule: Schedule) -> Self {
        self.rule(FaultRule {
            plane: Plane::Server,
            op_contains: Some(op.to_owned()),
            kind,
            schedule,
        })
    }

    /// Adds a binder-plane rule scoped to transaction kinds containing
    /// `op`.
    #[must_use]
    pub fn binder_fault(self, op: &str, kind: FaultKind, schedule: Schedule) -> Self {
        self.rule(FaultRule {
            plane: Plane::Binder,
            op_contains: Some(op.to_owned()),
            kind,
            schedule,
        })
    }

    /// Adds an unscoped rule covering both planes.
    #[must_use]
    pub fn any_fault(self, kind: FaultKind, schedule: Schedule) -> Self {
        self.rule(FaultRule { plane: Plane::Any, op_contains: None, kind, schedule })
    }

    /// Finishes the plan.
    #[must_use]
    pub fn build(self) -> FaultPlan {
        FaultPlan { rules: self.rules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::empty().is_empty());
        assert_eq!(FaultPlan::empty(), FaultPlan::default());
    }

    #[test]
    fn builder_orders_rules() {
        let plan = FaultPlan::builder()
            .server_fault("license/", FaultKind::ErrorCode, Schedule::FirstN { n: 2 })
            .binder_fault("decrypt_sample", FaultKind::Drop, Schedule::Always)
            .build();
        assert_eq!(plan.rules().len(), 2);
        assert_eq!(plan.rules()[0].plane, Plane::Server);
        assert_eq!(plan.rules()[1].kind, FaultKind::Drop);
    }

    #[test]
    fn rule_matching_scopes_by_plane_and_substring() {
        let rule = FaultRule {
            plane: Plane::Server,
            op_contains: Some("license/".into()),
            kind: FaultKind::Drop,
            schedule: Schedule::Always,
        };
        assert!(rule.matches(Plane::Server, "license/netflix/title-001"));
        assert!(!rule.matches(Plane::Server, "manifest/netflix/title-001"));
        assert!(!rule.matches(Plane::Binder, "license/netflix/title-001"));
        let any = FaultRule {
            plane: Plane::Any,
            op_contains: None,
            kind: FaultKind::Drop,
            schedule: Schedule::Always,
        };
        assert!(any.matches(Plane::Binder, "anything"));
    }

    #[test]
    fn schedules_fire_as_documented() {
        assert!(Schedule::Always.fires(99, 0));
        assert!(Schedule::Once { at: 3 }.fires(3, 0));
        assert!(!Schedule::Once { at: 3 }.fires(4, 0));
        assert!(Schedule::FirstN { n: 2 }.fires(1, 0));
        assert!(!Schedule::FirstN { n: 2 }.fires(2, 0));
        assert!(Schedule::EveryNth { n: 3 }.fires(0, 0));
        assert!(Schedule::EveryNth { n: 3 }.fires(6, 0));
        assert!(!Schedule::EveryNth { n: 3 }.fires(4, 0));
        // Zero stride clamps instead of dividing by zero.
        assert!(Schedule::EveryNth { n: 0 }.fires(7, 0));
        assert!(Schedule::PerMille { p: 500 }.fires(0, 499));
        assert!(!Schedule::PerMille { p: 500 }.fires(0, 500));
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(FaultKind::ErrorCode.label(), "error_code");
        assert_eq!(FaultKind::TruncateBody { keep: 4 }.label(), "truncate_body");
        assert_eq!(FaultKind::ClockSkew { secs: 1 }.label(), "clock_skew");
    }
}
