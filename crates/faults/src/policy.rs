//! Client-side resilience: bounded retries, deterministic backoff,
//! per-call timeouts, graceful degradation.
//!
//! The policy is pure configuration (`Clone + PartialEq + Eq` — all
//! integer knobs, no floats) and the backoff schedule is a pure function
//! of `(policy, attempt, salt)`, so replays are exact.

use crate::inject::det_hash;

/// How an app client reacts to failures. Carried in the ecosystem config
/// and applied by every installed [`OttApp`].
///
/// [`OttApp`]: https://docs.rs/wideleak-ott
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Bounded retry budget per logical operation (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay in virtual milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Ceiling for the exponential backoff.
    pub backoff_cap_ms: u64,
    /// Deterministic jitter added to each delay, drawn in
    /// `0..jitter_ms` from the seeded hash (0 disables jitter).
    pub jitter_ms: u64,
    /// Per-call budget on the virtual clock; calls that consume more are
    /// treated as timed out (and retried like transport failures).
    pub timeout_ms: u64,
    /// Whether an L1 device falls back to L3-class (SD) playback when HD
    /// paths persistently fail — graceful degradation.
    pub l3_fallback: bool,
    /// Whether an expired license is renewed once (fresh session +
    /// license) instead of aborting playback.
    pub renew_on_expiry: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            jitter_ms: 50,
            timeout_ms: 10_000,
            l3_fallback: true,
            renew_on_expiry: true,
        }
    }
}

impl ResiliencePolicy {
    /// A fail-fast policy: no retries, no degradation. Useful as the
    /// control arm of resilience sweeps.
    #[must_use]
    pub fn none() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            jitter_ms: 0,
            timeout_ms: u64::MAX,
            l3_fallback: false,
            renew_on_expiry: false,
        }
    }

    /// The delay before retry `attempt` (1-based): capped exponential
    /// backoff plus deterministic jitter keyed on `salt` (callers derive
    /// the salt from a seed and the operation identity).
    #[must_use]
    pub fn backoff_delay_ms(&self, attempt: u32, salt: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self.backoff_base_ms.saturating_mul(1u64 << shift);
        let base = exp.min(self.backoff_cap_ms);
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            det_hash(salt, u64::from(attempt)) % self.jitter_ms
        };
        base.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let policy = ResiliencePolicy { jitter_ms: 0, ..ResiliencePolicy::default() };
        assert_eq!(policy.backoff_delay_ms(1, 0), 100);
        assert_eq!(policy.backoff_delay_ms(2, 0), 200);
        assert_eq!(policy.backoff_delay_ms(3, 0), 400);
        assert_eq!(policy.backoff_delay_ms(10, 0), 2_000, "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = ResiliencePolicy::default();
        let a = policy.backoff_delay_ms(2, 99);
        let b = policy.backoff_delay_ms(2, 99);
        assert_eq!(a, b, "same salt, same delay");
        assert!(a >= 200 && a < 200 + policy.jitter_ms);
        // A different salt draws a different jitter for at least one of a
        // few salts (not all — jitter space is small).
        assert!((0..8).any(|s| policy.backoff_delay_ms(2, s) != a));
    }

    #[test]
    fn none_policy_fails_fast() {
        let policy = ResiliencePolicy::none();
        assert_eq!(policy.max_retries, 0);
        assert!(!policy.l3_fallback);
        assert!(!policy.renew_on_expiry);
        assert_eq!(policy.backoff_delay_ms(1, 0), 0);
    }

    #[test]
    fn max_cap_does_not_overflow_when_jitter_is_added() {
        // Regression: with the cap at u64::MAX the capped exponential term
        // saturates to u64::MAX and any non-zero jitter used to overflow
        // the final `base + jitter` add (panic in debug, wrap in release).
        let policy = ResiliencePolicy {
            backoff_base_ms: u64::MAX,
            backoff_cap_ms: u64::MAX,
            jitter_ms: 50,
            ..ResiliencePolicy::default()
        };
        for attempt in [1, 2, 7, 64, u32::MAX] {
            assert_eq!(policy.backoff_delay_ms(attempt, 0xDEAD), u64::MAX);
        }
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let policy = ResiliencePolicy::default();
        assert_eq!(policy.backoff_delay_ms(u32::MAX, 0) - policy.backoff_delay_ms(u32::MAX, 0), 0);
        assert!(policy.backoff_delay_ms(u32::MAX, 0) <= policy.backoff_cap_ms + policy.jitter_ms);
    }
}
